//! Amortized VF2: a query-side [`MatchPlan`] built **once per query** plus
//! a reusable [`MatchScratch`] workspace, so the steady-state verification
//! loop — one query against a whole batch of candidates — performs **zero
//! heap allocations** per candidate.
//!
//! The legacy engine ([`crate::vf2`]) plans per *(pattern, target)* pair:
//! every candidate pays an `O(|pattern|²)` ordering pass with
//! `vertices_with_label` rarity scans against the target, a fresh
//! `mapping`/`used` allocation, and a `Vec` clone of the candidate slice at
//! every search depth. This module splits that work:
//!
//! * [`MatchPlan::build`] orders the pattern once, using any label-rarity
//!   statistic the caller supplies — typically the *store-level* label
//!   frequency table ([`igq_graph::GraphStore::label_frequency`]), making
//!   the plan target-independent and shareable across every candidate of a
//!   batch. The ordering heuristic is byte-for-byte the legacy one
//!   (rarest-label seed, connectivity-first growth), so
//!   [`MatchPlan::for_target`] with the target's own label index
//!   reproduces the legacy search exactly — state count, abort behavior
//!   and all — which the property suite pins.
//! * Per-entry pattern facts (label, degree, backward edges *as plan
//!   positions* with their pattern edge labels, induced non-neighbors) are
//!   flattened into the plan, so the inner search loop never touches the
//!   pattern graph again.
//! * [`MatchScratch`] holds the mapping array and a stamped `used` array
//!   with a generation counter: starting the next candidate is one
//!   generation bump, not an `O(|target|)` clear, and buffers only ever
//!   grow ([`MatchScratch::alloc_events`] counts those growths — flat in
//!   steady state).
//! * Candidate sets are borrowed directly from the target's neighbor /
//!   label-class slices; nothing is cloned during the search.
//!
//! [`matches_with_plan`] returns the verdict without materializing an
//! embedding (the batch-verification hot path needs only containment);
//! [`find_with_plan`] additionally reconstructs the mapping.
//!
//! The legacy per-pair [`crate::vf2::find_one`] remains the fallback for
//! one-off tests and is the oracle the property tests compare against.

use crate::budget::Budget;
use crate::semantics::{MatchConfig, MatchResult, MatchSemantics, Outcome};
use igq_graph::{Graph, LabelId, VertexId};
use std::cell::RefCell;

/// The three-way result of a containment-only match (an [`Outcome`]
/// without the embedding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// An embedding exists.
    Found,
    /// The search space was exhausted: no embedding.
    NotFound,
    /// The state budget ran out first; the answer is unknown.
    Aborted,
}

impl Verdict {
    /// True only for [`Verdict::Found`].
    #[inline]
    pub fn is_found(self) -> bool {
        matches!(self, Verdict::Found)
    }

    /// True only for [`Verdict::Aborted`].
    #[inline]
    pub fn is_aborted(self) -> bool {
        matches!(self, Verdict::Aborted)
    }
}

/// One matching step: the pattern vertex matched at this depth plus every
/// pattern-side fact the feasibility rules need, flattened so the search
/// never consults the pattern graph.
#[derive(Debug, Clone)]
struct PlanEntry {
    /// Pattern vertex id (for label-class seeding and mapping output).
    vertex: VertexId,
    /// The vertex's label.
    label: LabelId,
    /// The vertex's pattern degree.
    degree: u32,
    /// Number of pattern neighbors ordered *after* this depth (lookahead).
    forward_degree: u32,
    /// Range into [`MatchPlan::backward`].
    back_start: u32,
    back_len: u32,
    /// Range into [`MatchPlan::nonadj`] (induced semantics only).
    nonadj_start: u32,
    nonadj_len: u32,
}

/// A backward constraint: an already-ordered pattern neighbor, addressed
/// by its *plan position*, with the connecting pattern edge's label.
#[derive(Debug, Clone, Copy)]
struct BackRef {
    pos: u32,
    edge_label: LabelId,
}

/// A query-side matching plan, target-independent and immutable: build it
/// once per query, share it (`&MatchPlan` is `Send + Sync`) across every
/// candidate — and across verification worker threads.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    entries: Vec<PlanEntry>,
    backward: Vec<BackRef>,
    /// Earlier plan positions non-adjacent to each entry's vertex
    /// (feasibility material for induced semantics; empty otherwise).
    nonadj: Vec<u32>,
    pattern_vertices: u32,
    pattern_edges: u32,
    pattern_has_edge_labels: bool,
    config: MatchConfig,
}

impl MatchPlan {
    /// Builds the plan for `pattern` under `config`, ordering vertices by
    /// the caller-supplied label `rarity` statistic (smaller = rarer =
    /// earlier). The heuristic is the legacy one: per connected component,
    /// seed at the (rarest label, max degree) vertex, then grow
    /// connectivity-first preferring (most ordered neighbors, rarest
    /// label, max degree).
    pub fn build(
        pattern: &Graph,
        config: &MatchConfig,
        rarity: &mut dyn FnMut(LabelId) -> u64,
    ) -> MatchPlan {
        let n = pattern.vertex_count();
        // Rarity per pattern vertex, memoized per vertex so the statistic
        // is consulted exactly |V(pattern)| times.
        let vertex_rarity: Vec<u64> = pattern
            .vertices()
            .map(|v| rarity(pattern.label(v)))
            .collect();
        let mut ordered = vec![false; n];
        let mut order: Vec<VertexId> = Vec::with_capacity(n);

        while order.len() < n {
            // Seed: unordered vertex with rarest label, tie-break max
            // degree (`min_by_key` keeps the first minimum, as legacy).
            let seed = pattern
                .vertices()
                .filter(|&v| !ordered[v.index()])
                .min_by_key(|&v| {
                    (
                        vertex_rarity[v.index()],
                        u64::MAX - pattern.degree(v) as u64,
                    )
                })
                .expect("unordered vertex must exist");
            ordered[seed.index()] = true;
            order.push(seed);

            // Grow the component: most already-ordered neighbors first,
            // then rarest label, then max degree (`max_by_key` keeps the
            // last maximum, as legacy).
            loop {
                let next = pattern
                    .vertices()
                    .filter(|&v| !ordered[v.index()])
                    .filter(|&v| pattern.neighbors(v).iter().any(|&w| ordered[w.index()]))
                    .max_by_key(|&v| {
                        let back = pattern
                            .neighbors(v)
                            .iter()
                            .filter(|&&w| ordered[w.index()])
                            .count();
                        (
                            back as u64,
                            u64::MAX - vertex_rarity[v.index()],
                            pattern.degree(v) as u64,
                        )
                    });
                match next {
                    Some(v) => {
                        ordered[v.index()] = true;
                        order.push(v);
                    }
                    None => break, // component exhausted; outer loop reseeds
                }
            }
        }

        let mut position = vec![0u32; n];
        for (pos, &v) in order.iter().enumerate() {
            position[v.index()] = pos as u32;
        }

        let mut entries = Vec::with_capacity(n);
        let mut backward: Vec<BackRef> = Vec::new();
        let mut nonadj: Vec<u32> = Vec::new();
        for (pos, &v) in order.iter().enumerate() {
            let back_start = backward.len() as u32;
            // Backward neighbors in ascending pattern-vertex order (the
            // sorted neighbor slice), exactly as the legacy plan stores
            // them — candidate-source selection tie-breaks identically.
            for &w in pattern.neighbors(v) {
                if (position[w.index()] as usize) < pos {
                    backward.push(BackRef {
                        pos: position[w.index()],
                        edge_label: pattern.edge_label_unchecked(w, v),
                    });
                }
            }
            let back_len = backward.len() as u32 - back_start;
            let nonadj_start = nonadj.len() as u32;
            if config.semantics == MatchSemantics::Induced {
                // Earlier positions not adjacent to `v` in the pattern, in
                // plan order (the legacy loop's `0..depth` scan order).
                for (d, &q) in order.iter().enumerate().take(pos) {
                    if !pattern.has_edge(q, v) {
                        nonadj.push(d as u32);
                    }
                }
            }
            let nonadj_len = nonadj.len() as u32 - nonadj_start;
            entries.push(PlanEntry {
                vertex: v,
                label: pattern.label(v),
                degree: pattern.degree(v) as u32,
                forward_degree: pattern.degree(v) as u32 - back_len,
                back_start,
                back_len,
                nonadj_start,
                nonadj_len,
            });
        }

        MatchPlan {
            entries,
            backward,
            nonadj,
            pattern_vertices: n as u32,
            pattern_edges: pattern.edge_count() as u32,
            pattern_has_edge_labels: pattern.has_edge_labels(),
            config: *config,
        }
    }

    /// Builds a plan with the *target's* label index as the rarity
    /// statistic — the legacy per-pair ordering. Used where the target is
    /// fixed and known (supergraph verification, one-off calls) and by the
    /// parity property tests.
    pub fn for_target(pattern: &Graph, target: &Graph, config: &MatchConfig) -> MatchPlan {
        MatchPlan::build(pattern, config, &mut |l| {
            target.vertices_with_label(l).len() as u64
        })
    }

    /// Number of pattern vertices.
    #[inline]
    pub fn pattern_vertex_count(&self) -> usize {
        self.pattern_vertices as usize
    }

    /// The configuration the plan was built under.
    #[inline]
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// Approximate heap footprint of the plan's buffers, in bytes.
    pub fn heap_size_bytes(&self) -> u64 {
        (self.entries.capacity() * std::mem::size_of::<PlanEntry>()
            + self.backward.capacity() * std::mem::size_of::<BackRef>()
            + self.nonadj.capacity() * std::mem::size_of::<u32>()) as u64
    }

    #[inline]
    fn back_refs(&self, e: &PlanEntry) -> &[BackRef] {
        &self.backward[e.back_start as usize..(e.back_start + e.back_len) as usize]
    }

    #[inline]
    fn nonadj_of(&self, e: &PlanEntry) -> &[u32] {
        &self.nonadj[e.nonadj_start as usize..(e.nonadj_start + e.nonadj_len) as usize]
    }
}

/// The reusable per-thread search workspace: the position-indexed mapping
/// array and the generation-stamped `used` array. Buffers grow to the
/// largest pattern/target seen and are then reused allocation-free;
/// [`MatchScratch::alloc_events`] counts the growths.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// `mapping[plan position] = raw target vertex id` for mapped depths.
    mapping: Vec<u32>,
    /// `used_stamp[target vertex] == generation` iff the vertex is
    /// currently used by the mapping.
    used_stamp: Vec<u32>,
    generation: u32,
    alloc_events: u64,
}

impl MatchScratch {
    /// A fresh, empty workspace (no allocation until first use).
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }

    /// Number of buffer allocations/growths since construction. Flat in
    /// steady state: after the workspace has seen the largest query and
    /// target of a workload, every further match is allocation-free.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Prepares for one match: ensures capacity (counting growths) and
    /// opens a fresh `used` generation (O(1) — no clearing).
    fn begin(&mut self, pattern_vertices: usize, target_vertices: usize) {
        if self.mapping.len() < pattern_vertices {
            self.mapping.resize(pattern_vertices, 0);
            self.alloc_events += 1;
        }
        if self.used_stamp.len() < target_vertices {
            self.used_stamp.resize(target_vertices, 0);
            self.alloc_events += 1;
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped after ~4B matches: old stamps could collide with the
            // restarted counter, so pay one full clear.
            self.used_stamp.fill(0);
            self.generation = 1;
        }
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
}

/// Runs `f` with this thread's shared [`MatchScratch`]. The workspace
/// persists for the thread's lifetime, so steady-state callers (batch
/// verification loops, worker threads) reuse warm buffers across queries
/// without threading a scratch through every call site.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut MatchScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The recursive search, generic over whether an embedding is materialized.
struct Run<'a> {
    plan: &'a MatchPlan,
    target: &'a Graph,
    budget: Budget,
    check_edge_labels: bool,
    states: u64,
    budget_hit: bool,
    found: bool,
}

impl<'a> Run<'a> {
    /// Number of `t`'s neighbors not yet used by the mapping.
    #[inline]
    fn free_degree(&self, scratch: &MatchScratch, t: VertexId) -> u32 {
        let gen = scratch.generation;
        self.target
            .neighbors(t)
            .iter()
            .filter(|&&w| scratch.used_stamp[w.index()] != gen)
            .count() as u32
    }

    /// VF2 feasibility of extending the mapping with `entry.vertex -> t`.
    fn feasible(&self, scratch: &MatchScratch, depth: usize, t: VertexId) -> bool {
        let entry = &self.plan.entries[depth];
        if scratch.used_stamp[t.index()] == scratch.generation
            || entry.label != self.target.label(t)
        {
            return false;
        }
        if (self.target.degree(t) as u32) < entry.degree {
            return false;
        }
        // Consistency over already-mapped neighbors (edge labels must
        // agree when present; unlabeled sides report the default label 0).
        for br in self.plan.back_refs(entry) {
            let bt = VertexId::new(scratch.mapping[br.pos as usize]);
            if !self.target.has_edge(bt, t) {
                return false;
            }
            if self.check_edge_labels && br.edge_label != self.target.edge_label_unchecked(bt, t) {
                return false;
            }
        }
        if self.plan.config.semantics == MatchSemantics::Induced {
            // Mapped pattern *non*-neighbors must land on non-neighbors.
            for &d in self.plan.nonadj_of(entry) {
                let qt = VertexId::new(scratch.mapping[d as usize]);
                if self.target.has_edge(qt, t) {
                    return false;
                }
            }
        }
        // 1-lookahead: enough free target neighbors for the pattern's
        // still-unordered neighbors.
        if self.free_degree(scratch, t) < entry.forward_degree {
            return false;
        }
        true
    }

    /// Recursive extension. Returns `true` to stop the search (embedding
    /// found or budget exhausted).
    fn extend(&mut self, scratch: &mut MatchScratch, depth: usize) -> bool {
        if depth == self.plan.entries.len() {
            self.found = true;
            return true;
        }
        let entry = &self.plan.entries[depth];

        // Candidate generation: prefer the neighbor slice of an
        // already-mapped pattern neighbor (smallest image neighborhood);
        // fall back to the label class for component seeds. The slices are
        // borrowed straight from the target — nothing is cloned.
        let target = self.target;
        let candidates: &[VertexId] = if let Some(br) = self
            .plan
            .back_refs(entry)
            .iter()
            .min_by_key(|br| target.degree(VertexId::new(scratch.mapping[br.pos as usize])))
        {
            target.neighbors(VertexId::new(scratch.mapping[br.pos as usize]))
        } else {
            target.vertices_with_label(entry.label)
        };

        for &t in candidates {
            if self.budget.exhausted(self.states) {
                self.budget_hit = true;
                return true;
            }
            self.states += 1;
            if !self.feasible(scratch, depth, t) {
                continue;
            }
            scratch.mapping[depth] = t.raw();
            scratch.used_stamp[t.index()] = scratch.generation;
            if self.extend(scratch, depth + 1) {
                return true;
            }
            scratch.used_stamp[t.index()] = 0;
        }
        false
    }
}

/// Shared driver behind [`matches_with_plan`] and [`find_with_plan`].
fn run_search(plan: &MatchPlan, target: &Graph, scratch: &mut MatchScratch) -> (Verdict, u64) {
    if plan.pattern_vertices == 0 {
        return (Verdict::Found, 0);
    }
    if plan.pattern_vertices as usize > target.vertex_count()
        || plan.pattern_edges as usize > target.edge_count()
    {
        return (Verdict::NotFound, 0);
    }
    scratch.begin(plan.pattern_vertices as usize, target.vertex_count());
    let mut run = Run {
        plan,
        target,
        budget: plan.config.budget,
        check_edge_labels: plan.pattern_has_edge_labels || target.has_edge_labels(),
        states: 0,
        budget_hit: false,
        found: false,
    };
    run.extend(scratch, 0);
    let verdict = if run.budget_hit {
        Verdict::Aborted
    } else if run.found {
        Verdict::Found
    } else {
        Verdict::NotFound
    };
    (verdict, run.states)
}

/// Decides containment of the plan's pattern in `target` without
/// materializing an embedding — the zero-allocation batch-verification
/// entry point. Returns the verdict and the number of explored states.
pub fn matches_with_plan(
    plan: &MatchPlan,
    target: &Graph,
    scratch: &mut MatchScratch,
) -> (Verdict, u64) {
    run_search(plan, target, scratch)
}

/// Like [`matches_with_plan`], but reconstructs the embedding on success —
/// observationally identical to [`crate::vf2::find_one`] when the plan was
/// built with [`MatchPlan::for_target`].
pub fn find_with_plan(plan: &MatchPlan, target: &Graph, scratch: &mut MatchScratch) -> MatchResult {
    let (verdict, states) = run_search(plan, target, scratch);
    let outcome = match verdict {
        Verdict::Aborted => Outcome::Aborted,
        Verdict::NotFound => Outcome::NotFound,
        Verdict::Found => {
            // `scratch.mapping` is plan-position-indexed; re-key by
            // pattern vertex, as the legacy engine reports it.
            let mut mapping = vec![VertexId::new(u32::MAX); plan.pattern_vertex_count()];
            for (pos, e) in plan.entries.iter().enumerate() {
                mapping[e.vertex.index()] = VertexId::new(scratch.mapping[pos]);
            }
            Outcome::Found(mapping)
        }
    };
    MatchResult { outcome, states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::verify_embedding;
    use crate::vf2;
    use igq_graph::{graph_from, graph_from_el};

    fn assert_parity(p: &Graph, t: &Graph, config: &MatchConfig) {
        let legacy = vf2::find_one(p, t, config);
        let plan = MatchPlan::for_target(p, t, config);
        let mut scratch = MatchScratch::new();
        let amortized = find_with_plan(&plan, t, &mut scratch);
        assert_eq!(legacy, amortized, "pattern {p:?} target {t:?}");
        let (verdict, states) = matches_with_plan(&plan, t, &mut scratch);
        assert_eq!(states, legacy.states);
        assert_eq!(verdict.is_found(), legacy.outcome.is_found());
    }

    #[test]
    fn parity_with_legacy_on_fixed_cases() {
        let tri = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p3 = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let labeled_t = graph_from(
            &[3, 1, 2, 1, 2, 3],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        );
        let labeled_p = graph_from(&[1, 2, 1], &[(0, 1), (1, 2)]);
        let disconnected = graph_from(&[0, 1, 0, 1], &[(0, 1), (2, 3)]);
        for config in [MatchConfig::default(), MatchConfig::induced()] {
            assert_parity(&p3, &tri, &config);
            assert_parity(&tri, &p3, &config);
            assert_parity(&labeled_p, &labeled_t, &config);
            assert_parity(&disconnected, &labeled_t, &config);
            assert_parity(&graph_from(&[], &[]), &tri, &config);
            assert_parity(&graph_from(&[9], &[]), &tri, &config);
        }
    }

    #[test]
    fn parity_includes_budget_aborts() {
        // The clique-in-ring instance from the legacy budget test.
        let clique = |n: u32| {
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    edges.push((i, j));
                }
            }
            graph_from(&vec![0; n as usize], &edges)
        };
        let p = clique(6);
        let mut edges = Vec::new();
        for i in 0..12u32 {
            for d in 1..=4u32 {
                let (a, b) = (i, (i + d) % 12);
                edges.push(if a < b { (a, b) } else { (b, a) });
            }
        }
        let t = graph_from(&[0; 12], &edges);
        assert_parity(&p, &t, &MatchConfig::with_budget(10));
        assert_parity(&p, &t, &MatchConfig::with_budget(1000));
    }

    #[test]
    fn parity_with_edge_labels() {
        let t = graph_from_el(&[0, 0, 0], &[(0, 1, 1), (1, 2, 2)]);
        for p in [
            graph_from_el(&[0, 0], &[(0, 1, 1)]),
            graph_from_el(&[0, 0], &[(0, 1, 2)]),
            graph_from_el(&[0, 0], &[(0, 1, 3)]),
            graph_from(&[0, 0], &[(0, 1)]),
        ] {
            assert_parity(&p, &t, &MatchConfig::default());
        }
    }

    #[test]
    fn store_level_rarity_still_decides_correctly() {
        // A deliberately misleading rarity statistic must not change the
        // verdict — only the exploration order.
        let p = graph_from(&[1, 2], &[(0, 1)]);
        let t = graph_from(&[2, 1, 0], &[(0, 1), (1, 2)]);
        for misleading in [0u64, 7, 1_000_000] {
            let plan = MatchPlan::build(&p, &MatchConfig::default(), &mut |_| misleading);
            let mut scratch = MatchScratch::new();
            let r = find_with_plan(&plan, &t, &mut scratch);
            let m = r.outcome.mapping().expect("1-2 edge exists").to_vec();
            assert!(verify_embedding(&p, &t, &m, MatchSemantics::Monomorphism));
        }
    }

    #[test]
    fn scratch_reuse_across_many_targets_is_clean() {
        // Alternating targets of different sizes through one scratch must
        // agree with fresh-scratch runs, and stop allocating once warm.
        let p = graph_from(&[0, 1], &[(0, 1)]);
        let targets = [
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[1, 0], &[(0, 1)]),
            graph_from(&[0; 6], &(0..5).map(|i| (i, i + 1)).collect::<Vec<_>>()),
            graph_from(&[2, 2], &[(0, 1)]),
        ];
        let mut shared = MatchScratch::new();
        for _ in 0..3 {
            for t in &targets {
                let plan = MatchPlan::for_target(&p, t, &MatchConfig::default());
                let mut fresh = MatchScratch::new();
                assert_eq!(
                    find_with_plan(&plan, t, &mut shared),
                    find_with_plan(&plan, t, &mut fresh)
                );
            }
        }
        let warm = shared.alloc_events();
        for t in &targets {
            let plan = MatchPlan::for_target(&p, t, &MatchConfig::default());
            let _ = matches_with_plan(&plan, t, &mut shared);
        }
        assert_eq!(
            shared.alloc_events(),
            warm,
            "warm scratch never reallocates"
        );
    }

    #[test]
    fn thread_scratch_is_shared_within_a_thread() {
        let p = graph_from(&[0], &[]);
        let t = graph_from(&[0, 0], &[(0, 1)]);
        let plan = MatchPlan::for_target(&p, &t, &MatchConfig::default());
        let first = with_thread_scratch(|s| {
            let _ = matches_with_plan(&plan, &t, s);
            s.alloc_events()
        });
        let second = with_thread_scratch(|s| {
            let _ = matches_with_plan(&plan, &t, s);
            s.alloc_events()
        });
        assert_eq!(first, second, "second call reuses the warm buffers");
    }

    #[test]
    fn generation_wrap_clears_stamps() {
        let p = graph_from(&[0, 0], &[(0, 1)]);
        let t = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let plan = MatchPlan::for_target(&p, &t, &MatchConfig::default());
        let mut scratch = MatchScratch::new();
        let baseline = matches_with_plan(&plan, &t, &mut scratch);
        // Force the wrap: the next begin() sees generation 0 and clears.
        scratch.generation = u32::MAX;
        assert_eq!(matches_with_plan(&plan, &t, &mut scratch), baseline);
        assert_eq!(matches_with_plan(&plan, &t, &mut scratch), baseline);
    }
}
