//! VF2 subgraph-isomorphism engine (Cordella, Foggia, Sansone, Vento,
//! IEEE TPAMI 2004), specialized for undirected vertex-labeled graphs.
//!
//! The search interleaves a *static matching order* over pattern vertices
//! (rarest-label, highest-degree seed; then connectivity-first expansion,
//! which keeps the partial mapping connected and candidate sets small) with
//! the classic VF2 feasibility rules:
//!
//! * label equality;
//! * consistency — every already-mapped pattern neighbor must map to a
//!   target neighbor of the candidate (and, under induced semantics,
//!   non-adjacency must be preserved too);
//! * degree and 1-lookahead pruning — a candidate target vertex must have
//!   at least as many unmapped neighbors as the pattern vertex has
//!   not-yet-ordered neighbors.
//!
//! The engine finds the *first* embedding and stops (the experiments, like
//! the altered Grapes build the paper used, only need a containment
//! verdict), but [`count_embeddings`] is provided for tests and analysis.

use crate::semantics::{MatchConfig, MatchResult, MatchSemantics, Outcome};
use igq_graph::{Graph, VertexId};

const UNMAPPED: u32 = u32::MAX;

/// Static per-pattern-vertex matching plan.
struct PlanEntry {
    /// Pattern vertex matched at this depth.
    vertex: VertexId,
    /// Already-ordered pattern neighbors (checked for edge consistency).
    backward: Vec<VertexId>,
    /// Number of pattern neighbors ordered *after* this depth (lookahead).
    forward_degree: u32,
}

/// Builds the matching order. Seeds each connected component at its
/// (rarest target label, then max degree) vertex and grows
/// connectivity-first, preferring vertices with many already-ordered
/// neighbors (most constrained first).
fn build_plan(pattern: &Graph, target: &Graph) -> Vec<PlanEntry> {
    let n = pattern.vertex_count();
    let mut ordered = vec![false; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);

    // Rarity of each pattern vertex's label in the *target*.
    let rarity = |v: VertexId| target.vertices_with_label(pattern.label(v)).len();

    while order.len() < n {
        // Seed: unordered vertex with rarest label, tie-break max degree.
        let seed = pattern
            .vertices()
            .filter(|&v| !ordered[v.index()])
            .min_by_key(|&v| (rarity(v), usize::MAX - pattern.degree(v)))
            .expect("unordered vertex must exist");
        ordered[seed.index()] = true;
        order.push(seed);

        // Grow the component: most already-ordered neighbors first, then
        // rarest label, then max degree.
        loop {
            let next = pattern
                .vertices()
                .filter(|&v| !ordered[v.index()])
                .filter(|&v| pattern.neighbors(v).iter().any(|&w| ordered[w.index()]))
                .max_by_key(|&v| {
                    let back = pattern
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| ordered[w.index()])
                        .count();
                    (back, usize::MAX - rarity(v), pattern.degree(v))
                });
            match next {
                Some(v) => {
                    ordered[v.index()] = true;
                    order.push(v);
                }
                None => break, // component exhausted; outer loop reseeds
            }
        }
    }

    let mut position = vec![0usize; n];
    for (pos, &v) in order.iter().enumerate() {
        position[v.index()] = pos;
    }
    order
        .iter()
        .enumerate()
        .map(|(pos, &v)| {
            let backward: Vec<VertexId> = pattern
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| position[w.index()] < pos)
                .collect();
            let forward_degree = (pattern.degree(v) - backward.len()) as u32;
            PlanEntry {
                vertex: v,
                backward,
                forward_degree,
            }
        })
        .collect()
}

struct Searcher<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    plan: Vec<PlanEntry>,
    config: MatchConfig,
    /// pattern vertex index -> target vertex raw id (UNMAPPED sentinel).
    mapping: Vec<u32>,
    used: Vec<bool>,
    states: u64,
    budget_hit: bool,
    /// When counting, the number of embeddings found so far and the cap.
    found_count: u64,
    count_limit: u64,
    /// Edge labels participate in feasibility only when either side carries
    /// them (unlabeled graphs stay on the cheap adjacency-only path).
    check_edge_labels: bool,
}

impl<'a> Searcher<'a> {
    fn new(pattern: &'a Graph, target: &'a Graph, config: MatchConfig) -> Self {
        Searcher {
            plan: build_plan(pattern, target),
            mapping: vec![UNMAPPED; pattern.vertex_count()],
            used: vec![false; target.vertex_count()],
            states: 0,
            budget_hit: false,
            found_count: 0,
            count_limit: 1,
            check_edge_labels: pattern.has_edge_labels() || target.has_edge_labels(),
            pattern,
            target,
            config,
        }
    }

    /// Number of `t`'s neighbors not yet used by the mapping.
    #[inline]
    fn free_degree(&self, t: VertexId) -> u32 {
        self.target
            .neighbors(t)
            .iter()
            .filter(|&&w| !self.used[w.index()])
            .count() as u32
    }

    /// VF2 feasibility of extending the mapping with `p -> t`.
    fn feasible(&self, depth: usize, t: VertexId) -> bool {
        let entry = &self.plan[depth];
        let p = entry.vertex;
        if self.used[t.index()] || self.pattern.label(p) != self.target.label(t) {
            return false;
        }
        if self.target.degree(t) < self.pattern.degree(p) {
            return false;
        }
        // Consistency over already-mapped neighbors (edge labels must agree
        // when present; unlabeled sides report the default label 0).
        for &bp in &entry.backward {
            let bt = VertexId::new(self.mapping[bp.index()]);
            if !self.target.has_edge(bt, t) {
                return false;
            }
            if self.check_edge_labels
                && self.pattern.edge_label_unchecked(bp, p)
                    != self.target.edge_label_unchecked(bt, t)
            {
                return false;
            }
        }
        if self.config.semantics == MatchSemantics::Induced {
            // Mapped pattern *non*-neighbors must land on non-neighbors.
            for d in 0..depth {
                let q = self.plan[d].vertex;
                if self.pattern.has_edge(q, p) {
                    continue; // covered by backward check
                }
                let qt = VertexId::new(self.mapping[q.index()]);
                if self.target.has_edge(qt, t) {
                    return false;
                }
            }
        }
        // 1-lookahead: enough free target neighbors for the pattern's
        // still-unordered neighbors.
        if self.free_degree(t) < entry.forward_degree {
            return false;
        }
        true
    }

    /// Recursive extension. Returns `true` to stop the search (embedding
    /// found and limit reached, or budget exhausted).
    fn extend(&mut self, depth: usize) -> bool {
        if depth == self.plan.len() {
            self.found_count += 1;
            return self.found_count >= self.count_limit;
        }
        let entry = &self.plan[depth];
        let p = entry.vertex;

        // Candidate generation: prefer the neighbor slice of an
        // already-mapped pattern neighbor (smallest image neighborhood);
        // fall back to the label class for component seeds.
        let candidates: Vec<VertexId> = if let Some(&bp) = entry
            .backward
            .iter()
            .min_by_key(|&&bp| self.target.degree(VertexId::new(self.mapping[bp.index()])))
        {
            let bt = VertexId::new(self.mapping[bp.index()]);
            self.target.neighbors(bt).to_vec()
        } else {
            self.target
                .vertices_with_label(self.pattern.label(p))
                .to_vec()
        };

        for t in candidates {
            if self.config.budget.exhausted(self.states) {
                self.budget_hit = true;
                return true;
            }
            self.states += 1;
            if !self.feasible(depth, t) {
                continue;
            }
            self.mapping[p.index()] = t.raw();
            self.used[t.index()] = true;
            if self.extend(depth + 1) {
                return true;
            }
            self.mapping[p.index()] = UNMAPPED;
            self.used[t.index()] = false;
        }
        false
    }

    fn into_result(self) -> MatchResult {
        if self.budget_hit {
            return MatchResult::new(Outcome::Aborted, self.states);
        }
        if self.found_count > 0 {
            let mapping = self.mapping.iter().map(|&r| VertexId::new(r)).collect();
            MatchResult::new(Outcome::Found(mapping), self.states)
        } else {
            MatchResult::new(Outcome::NotFound, self.states)
        }
    }
}

/// Finds one embedding of `pattern` in `target` (or proves none exists, or
/// aborts on budget exhaustion).
pub fn find_one(pattern: &Graph, target: &Graph, config: &MatchConfig) -> MatchResult {
    if pattern.is_empty() {
        return MatchResult::new(Outcome::Found(Vec::new()), 0);
    }
    if pattern.vertex_count() > target.vertex_count() || pattern.edge_count() > target.edge_count()
    {
        return MatchResult::new(Outcome::NotFound, 0);
    }
    let mut s = Searcher::new(pattern, target, *config);
    s.extend(0);
    s.into_result()
}

/// Counts embeddings up to `limit` (each distinct injective mapping counts
/// once). Returns `(count, states, aborted)`.
pub fn count_embeddings(
    pattern: &Graph,
    target: &Graph,
    limit: u64,
    config: &MatchConfig,
) -> (u64, u64, bool) {
    if pattern.is_empty() {
        return (1, 0, false);
    }
    if pattern.vertex_count() > target.vertex_count() {
        return (0, 0, false);
    }
    let mut s = Searcher::new(pattern, target, *config);
    s.count_limit = limit;
    s.extend(0);
    // The final embedding leaves the mapping populated but we only need the
    // count here; budget status still matters.
    let aborted = s.budget_hit;
    (s.found_count, s.states, aborted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::verify_embedding;
    use igq_graph::graph_from;

    fn cfg() -> MatchConfig {
        MatchConfig::default()
    }

    #[test]
    fn empty_pattern_matches_anything() {
        let t = graph_from(&[0, 1], &[(0, 1)]);
        let r = find_one(&graph_from(&[], &[]), &t, &cfg());
        assert!(r.outcome.is_found());
    }

    #[test]
    fn single_vertex_label_match() {
        let t = graph_from(&[3, 5], &[(0, 1)]);
        assert!(find_one(&graph_from(&[5], &[]), &t, &cfg())
            .outcome
            .is_found());
        assert!(find_one(&graph_from(&[9], &[]), &t, &cfg())
            .outcome
            .is_not_found());
    }

    #[test]
    fn path_in_triangle_mono() {
        let p = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let tri = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let r = find_one(&p, &tri, &cfg());
        let m = r
            .outcome
            .mapping()
            .expect("path embeds in triangle")
            .to_vec();
        assert!(verify_embedding(&p, &tri, &m, MatchSemantics::Monomorphism));
    }

    #[test]
    fn path_in_triangle_induced_fails() {
        // Induced P3 needs the endpoints non-adjacent: impossible in K3.
        let p = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let tri = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        assert!(find_one(&p, &tri, &MatchConfig::induced())
            .outcome
            .is_not_found());
    }

    #[test]
    fn labels_constrain_matching() {
        let p = graph_from(&[1, 2], &[(0, 1)]);
        let yes = graph_from(&[2, 1, 0], &[(0, 1), (1, 2)]);
        let no = graph_from(&[1, 1, 2], &[(0, 1)]); // 2 is isolated
        assert!(find_one(&p, &yes, &cfg()).outcome.is_found());
        assert!(find_one(&p, &no, &cfg()).outcome.is_not_found());
    }

    #[test]
    fn pattern_larger_than_target_short_circuits() {
        let p = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let t = graph_from(&[0, 0], &[(0, 1)]);
        let r = find_one(&p, &t, &cfg());
        assert!(r.outcome.is_not_found());
        assert_eq!(r.states, 0);
    }

    #[test]
    fn disconnected_pattern() {
        // Two independent labeled edges; target must host both disjointly.
        let p = graph_from(&[0, 1, 0, 1], &[(0, 1), (2, 3)]);
        let yes = graph_from(&[0, 1, 0, 1, 9], &[(0, 1), (2, 3)]);
        let no = graph_from(&[0, 1, 9], &[(0, 1)]); // only one 0-1 edge
        let r = find_one(&p, &yes, &cfg());
        let m = r
            .outcome
            .mapping()
            .expect("two disjoint edges exist")
            .to_vec();
        assert!(verify_embedding(&p, &yes, &m, MatchSemantics::Monomorphism));
        assert!(find_one(&p, &no, &cfg()).outcome.is_not_found());
    }

    #[test]
    fn cycle_needs_cycle() {
        let c4 = graph_from(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p4 = graph_from(&[0; 4], &[(0, 1), (1, 2), (2, 3)]);
        assert!(find_one(&p4, &c4, &cfg()).outcome.is_found());
        assert!(find_one(&c4, &p4, &cfg()).outcome.is_not_found());
    }

    #[test]
    fn budget_aborts_and_reports() {
        // A moderately hard unlabeled instance with a tiny budget.
        let clique = |n: u32| {
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    edges.push((i, j));
                }
            }
            graph_from(&vec![0; n as usize], &edges)
        };
        let p = clique(6);
        // Target: 12-vertex graph that is *not* a 6-clique superset: ring of
        // overlapping 5-cliques forces deep search before failure.
        let mut edges = Vec::new();
        for i in 0..12u32 {
            for d in 1..=4u32 {
                edges.push((i, (i + d) % 12));
            }
        }
        let t = graph_from(
            &[0; 12],
            &edges
                .into_iter()
                .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect::<Vec<_>>(),
        );
        let r = find_one(&p, &t, &MatchConfig::with_budget(10));
        assert_eq!(r.outcome, Outcome::Aborted);
        assert!(r.states <= 11);
    }

    #[test]
    fn count_embeddings_on_triangle() {
        // Labeled edge 0-0 in a triangle of zeros: 3 edges x 2 orientations.
        let p = graph_from(&[0, 0], &[(0, 1)]);
        let tri = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let (count, _, aborted) = count_embeddings(&p, &tri, u64::MAX, &cfg());
        assert_eq!(count, 6);
        assert!(!aborted);
    }

    #[test]
    fn count_respects_limit() {
        let p = graph_from(&[0], &[]);
        let t = graph_from(&[0; 10], &[]);
        let (count, _, _) = count_embeddings(&p, &t, 4, &cfg());
        assert_eq!(count, 4);
    }

    #[test]
    fn edge_labels_constrain_matching() {
        use igq_graph::graph_from_el;
        // Target: path with a single(1) and a double(2) bond.
        let t = graph_from_el(&[0, 0, 0], &[(0, 1, 1), (1, 2, 2)]);
        let single = graph_from_el(&[0, 0], &[(0, 1, 1)]);
        let double = graph_from_el(&[0, 0], &[(0, 1, 2)]);
        let triple = graph_from_el(&[0, 0], &[(0, 1, 3)]);
        assert!(find_one(&single, &t, &cfg()).outcome.is_found());
        assert!(find_one(&double, &t, &cfg()).outcome.is_found());
        assert!(find_one(&triple, &t, &cfg()).outcome.is_not_found());
        // A double-double path needs two label-2 edges; the target has one.
        let dd = graph_from_el(&[0, 0, 0], &[(0, 1, 2), (1, 2, 2)]);
        assert!(find_one(&dd, &t, &cfg()).outcome.is_not_found());
    }

    #[test]
    fn unlabeled_pattern_defaults_to_label_zero() {
        use igq_graph::graph_from_el;
        // An unlabeled pattern edge means "label 0": it must not match a
        // target edge labeled 5, but matches a target edge labeled 0.
        let p = graph_from(&[0, 0], &[(0, 1)]);
        let t5 = graph_from_el(&[0, 0], &[(0, 1, 5)]);
        let t0 = graph_from(&[0, 0], &[(0, 1)]);
        assert!(find_one(&p, &t5, &cfg()).outcome.is_not_found());
        assert!(find_one(&p, &t0, &cfg()).outcome.is_found());
    }

    #[test]
    fn edge_labeled_mapping_is_verified() {
        use crate::semantics::verify_embedding;
        use igq_graph::graph_from_el;
        let p = graph_from_el(&[1, 2], &[(0, 1, 4)]);
        let t = graph_from_el(&[2, 1, 2], &[(0, 1, 3), (1, 2, 4)]);
        let r = find_one(&p, &t, &cfg());
        let m = r.outcome.mapping().expect("label-4 edge exists").to_vec();
        assert!(verify_embedding(&p, &t, &m, MatchSemantics::Monomorphism));
        assert_eq!(
            m[1].index(),
            2,
            "pattern's 2 must map to the 4-labeled edge's end"
        );
    }

    #[test]
    fn found_mapping_is_always_valid() {
        // Query-sized random-ish fixed case with mixed labels.
        let p = graph_from(&[1, 2, 1, 3], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let t = graph_from(
            &[3, 1, 2, 1, 2, 3],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (1, 4),
                (0, 3),
            ],
        );
        let r = find_one(&p, &t, &cfg());
        if let Some(m) = r.outcome.mapping() {
            assert!(verify_embedding(&p, &t, m, MatchSemantics::Monomorphism));
        }
    }
}
