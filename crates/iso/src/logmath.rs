//! Log-space arithmetic for astronomically large cost values.
//!
//! The paper's iso-cost estimate involves `Ni!` for target graphs with up to
//! ~16k vertices; `f64` overflows past `170!`. All cost bookkeeping therefore
//! lives in natural-log space: a [`LogValue`] stores `ln x` and sums are
//! combined with log-sum-exp.

use std::cmp::Ordering;

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |relative error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, as published by Godfrey/Pugh and used by
    // numerous numeric libraries.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` for integer `n ≥ 0`.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact table for small n avoids approximation error where it is
    // cheapest to be exact.
    const TABLE: [f64; 10] = [
        0.0,                    // 0!
        0.0,                    // 1!
        std::f64::consts::LN_2, // 2!
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// A non-negative quantity stored as its natural log.
///
/// `LogValue::ZERO` represents exact 0 (`ln 0 = -inf`). Addition is
/// log-sum-exp; comparison is plain `f64` ordering of the exponents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogValue(f64);

impl LogValue {
    /// Exact zero.
    pub const ZERO: LogValue = LogValue(f64::NEG_INFINITY);

    /// Exact one (`ln 1 = 0`).
    pub const ONE: LogValue = LogValue(0.0);

    /// From a natural-log exponent.
    #[inline]
    pub fn from_ln(ln: f64) -> LogValue {
        LogValue(ln)
    }

    /// From a linear value (`x ≥ 0`).
    #[inline]
    pub fn from_linear(x: f64) -> LogValue {
        debug_assert!(x >= 0.0);
        LogValue(x.ln())
    }

    /// The stored exponent `ln x`.
    #[inline]
    pub fn ln(self) -> f64 {
        self.0
    }

    /// Back to linear space (may overflow to `inf` — callers beware).
    #[inline]
    pub fn linear(self) -> f64 {
        self.0.exp()
    }

    /// True for the exact-zero value.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == f64::NEG_INFINITY
    }

    /// log-sum-exp addition: `ln(e^a + e^b)` computed stably.
    #[inline]
    #[allow(clippy::should_implement_trait)] // log-space sum, not ops::Add
    pub fn add(self, other: LogValue) -> LogValue {
        let (hi, lo) = if self.0 >= other.0 {
            (self.0, other.0)
        } else {
            (other.0, self.0)
        };
        if hi == f64::NEG_INFINITY {
            return LogValue::ZERO;
        }
        LogValue(hi + (lo - hi).exp().ln_1p())
    }

    /// Multiplication is exponent addition.
    #[inline]
    #[allow(clippy::should_implement_trait)] // log-space product, not ops::Mul
    pub fn mul(self, other: LogValue) -> LogValue {
        LogValue(self.0 + other.0)
    }

    /// Division by a positive linear scalar.
    #[inline]
    pub fn div_linear(self, x: f64) -> LogValue {
        debug_assert!(x > 0.0);
        LogValue(self.0 - x.ln())
    }
}

impl Default for LogValue {
    fn default() -> Self {
        LogValue::ZERO
    }
}

impl PartialOrd for LogValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl std::iter::Sum for LogValue {
    fn sum<I: Iterator<Item = LogValue>>(iter: I) -> LogValue {
        iter.fold(LogValue::ZERO, LogValue::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        // Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_small_and_large() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-10);
        assert!((ln_factorial(20) - 2_432_902_008_176_640_000f64.ln()).abs() < 1e-8);
        // Stirling sanity at n = 10_000: ln(n!) ≈ n ln n − n + O(ln n)
        let n = 10_000f64;
        let approx = n * n.ln() - n;
        assert!((ln_factorial(10_000) - approx).abs() / approx < 1e-3);
    }

    #[test]
    fn log_sum_exp_addition() {
        let a = LogValue::from_linear(3.0);
        let b = LogValue::from_linear(4.0);
        assert!((a.add(b).linear() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_behaves_as_identity() {
        let a = LogValue::from_linear(5.0);
        assert!((a.add(LogValue::ZERO).linear() - 5.0).abs() < 1e-12);
        assert!(LogValue::ZERO.add(LogValue::ZERO).is_zero());
    }

    #[test]
    fn addition_is_stable_for_huge_exponents() {
        let a = LogValue::from_ln(50_000.0);
        let b = LogValue::from_ln(50_001.0);
        let s = a.add(b);
        assert!(s.ln() > 50_001.0 && s.ln() < 50_002.0);
    }

    #[test]
    fn comparisons() {
        assert!(LogValue::from_linear(2.0) < LogValue::from_linear(3.0));
        assert!(LogValue::ZERO < LogValue::ONE);
    }

    #[test]
    fn mul_and_div() {
        let a = LogValue::from_linear(6.0);
        assert!((a.mul(LogValue::from_linear(2.0)).linear() - 12.0).abs() < 1e-9);
        assert!((a.div_linear(3.0).linear() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sum_iterator() {
        let total: LogValue = (1..=4).map(|x| LogValue::from_linear(x as f64)).sum();
        assert!((total.linear() - 10.0).abs() < 1e-9);
    }
}
