//! A bounded, sharded cache of [`MatchPlan`]s keyed by canonical code.
//!
//! iGQ's premise is that query streams have locality: the same and
//! near-same queries recur. PR 5 made each verification cheap by building
//! one plan per query; this module makes *repeated* queries cheaper still
//! by not rebuilding the plan at all. The key is the query's
//! [`CanonicalCode`] — equal codes mean isomorphic graphs, and the plan
//! of an isomorphic pattern is interchangeable (the plan orders pattern
//! vertices; any isomorph has the same label/degree structure) — which
//! the engine already computes once per query for the exact-repeat fast
//! path, so a cache probe costs one hash lookup.
//!
//! Each cached plan carries the **rarity snapshot** it was ordered by:
//! the label-frequency values, restricted to the pattern's own labels,
//! that seeded the exploration order. Rarity only steers exploration —
//! it never changes a verdict — so a stale plan is still *sound*; it is
//! merely possibly slower. A lookup therefore re-plans only when the
//! current statistic has drifted past [`RARITY_DRIFT_FACTOR`] on some
//! pattern label, keeping plans pinned while the dataset's label mix is
//! stable and refreshing them when it shifts.
//!
//! The cache is internally synchronized (shard mutexes plus atomic
//! counters): probes and verification threads share one `&PlanCache`.
//! Capacity is bounded per shard with FIFO replacement, and the engine
//! additionally evicts a query's plans when the query cache evicts the
//! entry with that code — cached plans die with their windows.

use crate::plan::MatchPlan;
use crate::semantics::MatchConfig;
use igq_graph::canon::CanonicalCode;
use igq_graph::fxhash::FxHashMap;
use igq_graph::{Graph, LabelId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Staleness threshold: a cached plan is rebuilt when, for some pattern
/// label, the current rarity statistic and the snapshot differ by more
/// than this factor (with +1 smoothing so zeros compare sanely).
pub const RARITY_DRIFT_FACTOR: u64 = 4;

/// Shards the cache is split into. Lookups hash the code to a shard, so
/// concurrent probe/verify threads rarely contend on one mutex.
const SHARDS: usize = 16;

/// A plan plus the configuration and rarity snapshot it was built
/// against. One code maps to a small set of these (at most
/// [`PLANS_PER_CODE`]): the index probes plan under the default
/// configuration while verification uses the method's, and the two must
/// not thrash each other.
struct CachedPlan {
    plan: Arc<MatchPlan>,
    /// `(label, rarity-at-build)` over the pattern's distinct labels,
    /// sorted by label.
    snapshot: Box<[(LabelId, u64)]>,
}

/// Distinct configurations cached per canonical code.
const PLANS_PER_CODE: usize = 4;

#[derive(Default)]
struct Shard {
    plans: FxHashMap<CanonicalCode, Vec<CachedPlan>>,
    /// Insertion order of codes, for FIFO replacement.
    order: VecDeque<CanonicalCode>,
    /// Cached plans in this shard (entries across all code vectors).
    len: usize,
}

/// Aggregate cache counters (relaxed atomics, snapshot semantics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered by a fresh cached plan.
    pub hits: u64,
    /// Lookups that built (or rebuilt) a plan — cold keys, staleness
    /// rebuilds, and configuration mismatches alike.
    pub misses: u64,
    /// Plans dropped: capacity replacement plus explicit key eviction.
    pub evictions: u64,
}

/// A bounded, sharded, internally synchronized map from canonical code to
/// [`Arc<MatchPlan>`]; see the module docs.
pub struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &(self.capacity_per_shard * self.shards.len()))
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// A cache bounded at (roughly) `capacity` plans, split over a fixed
    /// shard count. A zero capacity disables insertion: every lookup
    /// builds and nothing is retained.
    pub fn new(capacity: usize) -> PlanCache {
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
        PlanCache {
            shards,
            capacity_per_shard: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CanonicalCode) -> &Mutex<Shard> {
        // FxHash-style mix of the first/last code words; codes are
        // high-entropy, so any word mix spreads shards evenly.
        let words = key.words();
        let h = words
            .first()
            .copied()
            .unwrap_or(0)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ words.last().copied().unwrap_or(0);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Returns the cached plan for `key` under `config` — or builds one
    /// from `pattern` with the caller's `rarity` statistic, caches it,
    /// and returns it. The boolean is `true` on a (fresh) cache hit.
    ///
    /// A cached plan is used only when its configuration matches and its
    /// rarity snapshot is within [`RARITY_DRIFT_FACTOR`] of the current
    /// statistic on every pattern label; otherwise it is rebuilt in place
    /// (counted as a miss). `pattern` must be a graph with canonical code
    /// `key` — isomorphs are interchangeable.
    pub fn get_or_build(
        &self,
        key: &CanonicalCode,
        pattern: &Graph,
        config: &MatchConfig,
        rarity: &mut dyn FnMut(LabelId) -> u64,
    ) -> (Arc<MatchPlan>, bool) {
        // The current statistic over the pattern's labels: both the
        // freshness check and (on miss) the stored snapshot.
        let mut current: Vec<(LabelId, u64)> = pattern
            .label_groups()
            .map(|(l, _)| (l, rarity(l)))
            .collect();
        current.sort_unstable_by_key(|&(l, _)| l);

        {
            let shard = self.shard(key).lock().expect("plan cache shard");
            if let Some(plans) = shard.plans.get(key) {
                if let Some(hit) = plans
                    .iter()
                    .find(|p| p.plan.config() == config && fresh(&p.snapshot, &current))
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(&hit.plan), true);
                }
            }
        }

        // Build outside the shard lock; a racing builder of the same key
        // costs one redundant build, never a wrong plan.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(MatchPlan::build(pattern, config, &mut |l| rarity(l)));
        if self.capacity_per_shard == 0 {
            return (plan, false);
        }
        let cached = CachedPlan {
            plan: Arc::clone(&plan),
            snapshot: current.into_boxed_slice(),
        };
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(key).lock().expect("plan cache shard");
            let shard = &mut *shard;
            match shard.plans.get_mut(key) {
                Some(plans) => {
                    if let Some(slot) = plans.iter_mut().find(|p| p.plan.config() == config) {
                        // Staleness rebuild: replace in place.
                        *slot = cached;
                        evicted += 1;
                    } else {
                        if plans.len() == PLANS_PER_CODE {
                            plans.remove(0);
                            shard.len -= 1;
                            evicted += 1;
                        }
                        plans.push(cached);
                        shard.len += 1;
                    }
                }
                None => {
                    shard.plans.insert(key.clone(), vec![cached]);
                    shard.order.push_back(key.clone());
                    shard.len += 1;
                }
            }
            while shard.len > self.capacity_per_shard {
                let Some(victim) = shard.order.pop_front() else {
                    break;
                };
                if let Some(dropped) = shard.plans.remove(&victim) {
                    shard.len -= dropped.len();
                    evicted += dropped.len() as u64;
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        (plan, false)
    }

    /// Drops every plan cached under `key` (the engine calls this when
    /// the query cache evicts the resident with that canonical code), and
    /// returns how many plans died.
    pub fn evict_key(&self, key: &CanonicalCode) -> u64 {
        let dropped = {
            let mut shard = self.shard(key).lock().expect("plan cache shard");
            match shard.plans.remove(key) {
                Some(plans) => {
                    shard.len -= plans.len();
                    shard.order.retain(|c| c != key);
                    plans.len() as u64
                }
                None => 0,
            }
        };
        if dropped > 0 {
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
        }
        dropped
    }

    /// Cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard").len)
            .sum()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Approximate heap footprint of the cached plans, their keys, and
    /// their rarity snapshots, in bytes.
    pub fn heap_size_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("plan cache shard");
            for (key, plans) in shard.plans.iter() {
                bytes += std::mem::size_of_val(key.words()) as u64;
                for p in plans {
                    bytes += p.plan.heap_size_bytes();
                    bytes += std::mem::size_of_val(&*p.snapshot) as u64;
                }
            }
            bytes += (shard.order.len() * std::mem::size_of::<CanonicalCode>()) as u64;
        }
        bytes
    }
}

/// True when every snapshot label's current rarity is within
/// [`RARITY_DRIFT_FACTOR`] of its value at build time.
fn fresh(snapshot: &[(LabelId, u64)], current: &[(LabelId, u64)]) -> bool {
    debug_assert_eq!(snapshot.len(), current.len());
    snapshot
        .iter()
        .zip(current.iter())
        .all(|(&(sl, old), &(cl, new))| {
            debug_assert_eq!(sl, cl);
            let (lo, hi) = if old < new { (old, new) } else { (new, old) };
            hi < (lo + 1) * RARITY_DRIFT_FACTOR
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::canon::canonical_code;
    use igq_graph::graph_from;

    fn keyed(labels: &[u32], edges: &[(u32, u32)]) -> (CanonicalCode, igq_graph::Graph) {
        let g = graph_from(labels, edges);
        (canonical_code(&g).expect("small graph canonicalizes"), g)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new(64);
        let (key, g) = keyed(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let config = MatchConfig::default();
        let (first, hit1) = cache.get_or_build(&key, &g, &config, &mut |_| 7);
        let (second, hit2) = cache.get_or_build(&key, &g, &config, &mut |_| 7);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn rarity_drift_rebuilds() {
        let cache = PlanCache::new(64);
        let (key, g) = keyed(&[0, 1], &[(0, 1)]);
        let config = MatchConfig::default();
        let _ = cache.get_or_build(&key, &g, &config, &mut |_| 1);
        // Within the drift factor: still a hit.
        let (_, hit) = cache.get_or_build(&key, &g, &config, &mut |_| 3);
        assert!(hit);
        // Far past it: rebuilt.
        let (_, hit) = cache.get_or_build(&key, &g, &config, &mut |_| 1000);
        assert!(!hit);
        // The rebuilt snapshot is now current.
        let (_, hit) = cache.get_or_build(&key, &g, &config, &mut |_| 1000);
        assert!(hit);
    }

    #[test]
    fn configs_cache_independently() {
        let cache = PlanCache::new(64);
        let (key, g) = keyed(&[0, 1], &[(0, 1)]);
        let mono = MatchConfig::default();
        let induced = MatchConfig::induced();
        let _ = cache.get_or_build(&key, &g, &mono, &mut |_| 1);
        let (_, hit) = cache.get_or_build(&key, &g, &induced, &mut |_| 1);
        assert!(!hit, "different config is a different plan");
        let (plan, hit) = cache.get_or_build(&key, &g, &induced, &mut |_| 1);
        assert!(hit);
        assert_eq!(plan.config(), &induced);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evict_key_drops_all_configs() {
        let cache = PlanCache::new(64);
        let (key, g) = keyed(&[0, 1], &[(0, 1)]);
        let _ = cache.get_or_build(&key, &g, &MatchConfig::default(), &mut |_| 1);
        let _ = cache.get_or_build(&key, &g, &MatchConfig::induced(), &mut |_| 1);
        assert_eq!(cache.evict_key(&key), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.evict_key(&key), 0, "idempotent");
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = PlanCache::new(16);
        let config = MatchConfig::default();
        // 64 distinct keys (paths of distinct label pairs) through a
        // 16-plan cache: retained size stays bounded, evictions happen.
        for a in 0..8u32 {
            for b in 8..16u32 {
                let (key, g) = keyed(&[a, b], &[(0, 1)]);
                let _ = cache.get_or_build(&key, &g, &config, &mut |_| 1);
            }
        }
        assert!(cache.len() <= 16, "len {} over capacity", cache.len());
        assert!(cache.stats().evictions > 0);
        assert!(cache.heap_size_bytes() > 0);
    }

    #[test]
    fn zero_capacity_builds_without_caching() {
        let cache = PlanCache::new(0);
        let (key, g) = keyed(&[0, 1], &[(0, 1)]);
        let (_, hit) = cache.get_or_build(&key, &g, &MatchConfig::default(), &mut |_| 1);
        assert!(!hit);
        let (_, hit) = cache.get_or_build(&key, &g, &MatchConfig::default(), &mut |_| 1);
        assert!(!hit);
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_plan_is_the_built_plan() {
        // The cached Arc and a fresh build under the same statistic are
        // interchangeable: same config, same entry order ⇒ same search.
        let cache = PlanCache::new(8);
        let (key, g) = keyed(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let config = MatchConfig::default();
        let (cached, _) = cache.get_or_build(&key, &g, &config, &mut |l| l.raw() as u64);
        let fresh = MatchPlan::build(&g, &config, &mut |l| l.raw() as u64);
        assert_eq!(format!("{cached:?}"), format!("{fresh:?}"));
    }
}
