//! Ullmann's subgraph-isomorphism algorithm (J. ACM 1976) — reference \[39\]
//! of the paper and the ancestor of most practical matchers.
//!
//! The algorithm maintains a boolean candidate matrix `M[i][j]` ("pattern
//! vertex i may map to target vertex j"), repeatedly *refines* it (a
//! candidate survives only if each of its pattern neighbors retains a
//! candidate among the target vertex's neighbors), and backtracks row by
//! row. We store rows as `u64` bitsets; refinement short-circuits via
//! neighbor scans rather than materializing target adjacency bitsets, which
//! keeps memory at `O(n_p · n_t / 64)` even for PDBS-sized targets.
//!
//! Kept primarily for the `iso_engines` ablation benchmark: VF2 wins on
//! nearly all of our workloads, mirroring why the literature (and the
//! paper's chosen methods) standardized on VF2.

use crate::semantics::{MatchConfig, MatchResult, MatchSemantics, Outcome};
use igq_graph::{Graph, VertexId};

/// Row-major bit matrix, one row per pattern vertex.
#[derive(Clone)]
struct BitMatrix {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    #[inline]
    fn get(&self, r: usize, c: usize) -> bool {
        self.bits[r * self.words_per_row + c / 64] >> (c % 64) & 1 == 1
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize) {
        self.bits[r * self.words_per_row + c / 64] |= 1 << (c % 64);
    }

    #[inline]
    fn clear(&mut self, r: usize, c: usize) {
        self.bits[r * self.words_per_row + c / 64] &= !(1 << (c % 64));
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    fn row_is_empty(&self, r: usize) -> bool {
        self.row(r).iter().all(|&w| w == 0)
    }

    /// Keeps only column `c` set in row `r`.
    fn isolate(&mut self, r: usize, c: usize) {
        let start = r * self.words_per_row;
        for w in &mut self.bits[start..start + self.words_per_row] {
            *w = 0;
        }
        self.set(r, c);
    }

    /// Clears column `c` in every row except `keep_row`.
    fn clear_column_except(&mut self, c: usize, keep_row: usize, rows: usize) {
        for r in 0..rows {
            if r != keep_row {
                self.clear(r, c);
            }
        }
    }

    /// Iterates set column indexes of row `r`.
    fn ones(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(r).iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

struct Ullmann<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    config: MatchConfig,
    states: u64,
    budget_hit: bool,
    assignment: Vec<u32>,
    /// Edge labels participate only when either side carries them.
    check_edge_labels: bool,
}

impl<'a> Ullmann<'a> {
    /// Initial candidate matrix from labels and degrees.
    fn seed_matrix(&self) -> BitMatrix {
        let np = self.pattern.vertex_count();
        let nt = self.target.vertex_count();
        let mut m = BitMatrix::new(np, nt);
        for p in self.pattern.vertices() {
            for &t in self.target.vertices_with_label(self.pattern.label(p)) {
                if self.target.degree(t) >= self.pattern.degree(p) {
                    m.set(p.index(), t.index());
                }
            }
        }
        m
    }

    /// Ullmann's refinement to fixpoint. Returns `false` if a row empties.
    fn refine(&self, m: &mut BitMatrix) -> bool {
        let np = self.pattern.vertex_count();
        loop {
            let mut changed = false;
            for i in 0..np {
                let pi = VertexId::from_index(i);
                let cols: Vec<usize> = m.ones(i).collect();
                for j in cols {
                    let tj = VertexId::from_index(j);
                    let ok = self.pattern.neighbors(pi).iter().all(|&k| {
                        self.target
                            .neighbors(tj)
                            .iter()
                            .any(|&y| m.get(k.index(), y.index()))
                    });
                    if !ok {
                        m.clear(i, j);
                        changed = true;
                    }
                }
                if m.row_is_empty(i) {
                    return false;
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Consistency of `row -> col` with rows already assigned (mono: mapped
    /// pattern edges must be target edges; induced: and vice versa).
    fn consistent(&self, row: usize, col: usize) -> bool {
        let p = VertexId::from_index(row);
        let t = VertexId::from_index(col);
        for prev in 0..row {
            let q = VertexId::from_index(prev);
            let qt = VertexId::new(self.assignment[prev]);
            if qt == t {
                return false; // injectivity
            }
            let pe = self.pattern.has_edge(q, p);
            let te = self.target.has_edge(qt, t);
            match self.config.semantics {
                MatchSemantics::Monomorphism => {
                    if pe && !te {
                        return false;
                    }
                }
                MatchSemantics::Induced => {
                    if pe != te {
                        return false;
                    }
                }
            }
            // Mapped pattern edges must also agree on edge labels.
            if pe
                && te
                && self.check_edge_labels
                && self.pattern.edge_label_unchecked(q, p)
                    != self.target.edge_label_unchecked(qt, t)
            {
                return false;
            }
        }
        true
    }

    fn search(&mut self, row: usize, m: &BitMatrix) -> bool {
        let np = self.pattern.vertex_count();
        if row == np {
            return true;
        }
        let candidates: Vec<usize> = m.ones(row).collect();
        for col in candidates {
            if self.config.budget.exhausted(self.states) {
                self.budget_hit = true;
                return false;
            }
            self.states += 1;
            if !self.consistent(row, col) {
                continue;
            }
            let mut next = m.clone();
            next.isolate(row, col);
            next.clear_column_except(col, row, np);
            if !self.refine(&mut next) {
                continue;
            }
            self.assignment[row] = col as u32;
            if self.search(row + 1, &next) {
                return true;
            }
            if self.budget_hit {
                return false;
            }
        }
        false
    }
}

/// Finds one embedding of `pattern` in `target` with Ullmann's algorithm.
pub fn find_one(pattern: &Graph, target: &Graph, config: &MatchConfig) -> MatchResult {
    if pattern.is_empty() {
        return MatchResult::new(Outcome::Found(Vec::new()), 0);
    }
    if pattern.vertex_count() > target.vertex_count() || pattern.edge_count() > target.edge_count()
    {
        return MatchResult::new(Outcome::NotFound, 0);
    }
    let mut u = Ullmann {
        pattern,
        target,
        config: *config,
        states: 0,
        budget_hit: false,
        assignment: vec![0; pattern.vertex_count()],
        check_edge_labels: pattern.has_edge_labels() || target.has_edge_labels(),
    };
    let mut m = u.seed_matrix();
    if !u.refine(&mut m) {
        return MatchResult::new(Outcome::NotFound, 0);
    }
    let found = u.search(0, &m);
    if u.budget_hit {
        MatchResult::new(Outcome::Aborted, u.states)
    } else if found {
        let mapping = u.assignment.iter().map(|&c| VertexId::new(c)).collect();
        MatchResult::new(Outcome::Found(mapping), u.states)
    } else {
        MatchResult::new(Outcome::NotFound, u.states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::verify_embedding;
    use crate::vf2;
    use igq_graph::graph_from;

    fn cfg() -> MatchConfig {
        MatchConfig::default()
    }

    #[test]
    fn agrees_with_vf2_on_fixed_cases() {
        let cases = vec![
            // (pattern, target)
            (
                graph_from(&[0, 1], &[(0, 1)]),
                graph_from(&[1, 0, 1], &[(0, 1), (1, 2)]),
            ),
            (
                graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
                graph_from(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]),
            ),
            (
                graph_from(&[2, 2, 3], &[(0, 1), (1, 2)]),
                graph_from(&[2, 2, 3, 3], &[(0, 1), (1, 2), (2, 3), (0, 3)]),
            ),
            (
                graph_from(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
                graph_from(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            ),
        ];
        for (p, t) in cases {
            let v = vf2::find_one(&p, &t, &cfg()).outcome.is_found();
            let u = find_one(&p, &t, &cfg()).outcome.is_found();
            assert_eq!(v, u, "disagreement on {p:?} vs {t:?}");
        }
    }

    #[test]
    fn produces_valid_mappings() {
        let p = graph_from(&[1, 2, 1], &[(0, 1), (1, 2)]);
        let t = graph_from(&[1, 2, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let r = find_one(&p, &t, &cfg());
        let m = r.outcome.mapping().expect("match exists").to_vec();
        assert!(verify_embedding(&p, &t, &m, MatchSemantics::Monomorphism));
    }

    #[test]
    fn refinement_kills_hopeless_instances_without_search() {
        // Pattern: star with 3 leaves labeled 1; target has max degree 2.
        let p = graph_from(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let t = graph_from(&[0, 1, 1, 1], &[(0, 1), (0, 2)]);
        let r = find_one(&p, &t, &cfg());
        assert!(r.outcome.is_not_found());
        assert_eq!(r.states, 0, "degree seed/refinement should preempt search");
    }

    #[test]
    fn induced_semantics() {
        let p2 = graph_from(&[0, 0], &[]); // two isolated vertices
        let k2 = graph_from(&[0, 0], &[(0, 1)]);
        assert!(find_one(&p2, &k2, &cfg()).outcome.is_found());
        assert!(find_one(&p2, &k2, &MatchConfig::induced())
            .outcome
            .is_not_found());
    }

    #[test]
    fn budget_abort() {
        let p = graph_from(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10u32 {
                edges.push((i, j));
            }
        }
        let t = graph_from(&[0; 10], &edges);
        let r = find_one(
            &p,
            &t,
            &MatchConfig {
                semantics: MatchSemantics::Induced,
                budget: crate::Budget::limited(3),
            },
        );
        assert_eq!(r.outcome, Outcome::Aborted);
    }

    #[test]
    fn empty_pattern() {
        let t = graph_from(&[0], &[]);
        assert!(find_one(&graph_from(&[], &[]), &t, &cfg())
            .outcome
            .is_found());
    }

    #[test]
    fn edge_labels_agree_with_vf2() {
        use igq_graph::graph_from_el;
        let t = graph_from_el(&[0, 0, 0], &[(0, 1, 1), (1, 2, 2)]);
        let cases = vec![
            graph_from_el(&[0, 0], &[(0, 1, 1)]),
            graph_from_el(&[0, 0], &[(0, 1, 2)]),
            graph_from_el(&[0, 0], &[(0, 1, 3)]),
            graph_from_el(&[0, 0, 0], &[(0, 1, 1), (1, 2, 2)]),
            graph_from_el(&[0, 0, 0], &[(0, 1, 2), (1, 2, 2)]),
            graph_from(&[0, 0], &[(0, 1)]),
        ];
        for p in cases {
            let v = vf2::find_one(&p, &t, &cfg()).outcome.is_found();
            let u = find_one(&p, &t, &cfg()).outcome.is_found();
            assert_eq!(v, u, "engines disagree on {p:?}");
        }
    }
}
