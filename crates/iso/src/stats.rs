//! Mergeable counters for isomorphism work.
//!
//! The paper's headline metric is the *number of subgraph isomorphism
//! tests*; the wall-clock figures additionally reflect how hard each test
//! was. `IsoStats` tracks both and merges across threads and phases.

/// Counters for isomorphism-engine work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsoStats {
    /// Iso tests started.
    pub tests: u64,
    /// Tests that found an embedding.
    pub matches: u64,
    /// Tests that exhausted their state budget.
    pub aborted: u64,
    /// Total search states explored across all tests.
    pub states: u64,
}

impl IsoStats {
    /// Zeroed counters.
    pub fn new() -> IsoStats {
        IsoStats::default()
    }

    /// Records one engine invocation.
    pub fn record(&mut self, result: &crate::semantics::MatchResult) {
        self.tests += 1;
        self.states += result.states;
        match &result.outcome {
            crate::Outcome::Found(_) => self.matches += 1,
            crate::Outcome::Aborted => self.aborted += 1,
            crate::Outcome::NotFound => {}
        }
    }

    /// Folds one containment-only test (the plan-amortized matcher's
    /// verdict, which carries no embedding).
    pub fn record_verdict(&mut self, verdict: crate::plan::Verdict, states: u64) {
        self.tests += 1;
        self.states += states;
        match verdict {
            crate::plan::Verdict::Found => self.matches += 1,
            crate::plan::Verdict::Aborted => self.aborted += 1,
            crate::plan::Verdict::NotFound => {}
        }
    }

    /// Accumulates another set of counters.
    pub fn merge(&mut self, other: &IsoStats) {
        self.tests += other.tests;
        self.matches += other.matches;
        self.aborted += other.aborted;
        self.states += other.states;
    }

    /// Average states per test (0.0 when no tests ran).
    pub fn avg_states(&self) -> f64 {
        if self.tests == 0 {
            0.0
        } else {
            self.states as f64 / self.tests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{MatchResult, Outcome};

    #[test]
    fn record_classifies_outcomes() {
        let mut s = IsoStats::new();
        s.record(&MatchResult {
            outcome: Outcome::Found(vec![]),
            states: 5,
        });
        s.record(&MatchResult {
            outcome: Outcome::NotFound,
            states: 3,
        });
        s.record(&MatchResult {
            outcome: Outcome::Aborted,
            states: 100,
        });
        assert_eq!(s.tests, 3);
        assert_eq!(s.matches, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.states, 108);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = IsoStats {
            tests: 1,
            matches: 1,
            aborted: 0,
            states: 10,
        };
        let b = IsoStats {
            tests: 2,
            matches: 0,
            aborted: 1,
            states: 20,
        };
        a.merge(&b);
        assert_eq!(
            a,
            IsoStats {
                tests: 3,
                matches: 1,
                aborted: 1,
                states: 30
            }
        );
    }

    #[test]
    fn avg_states() {
        let s = IsoStats {
            tests: 4,
            matches: 0,
            aborted: 0,
            states: 10,
        };
        assert_eq!(s.avg_states(), 2.5);
        assert_eq!(IsoStats::new().avg_states(), 0.0);
    }
}
