//! Matching semantics, configuration, and result types shared by all engines.

use crate::budget::Budget;
use igq_graph::VertexId;

/// Which notion of "subgraph" an engine should decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchSemantics {
    /// Paper Definition 2: injective map preserving labels and edges.
    /// Non-edges of the pattern are unconstrained. This is the semantics of
    /// the entire graph-query-processing literature the paper builds on.
    #[default]
    Monomorphism,
    /// Additionally requires pattern non-edges to map to target non-edges
    /// (induced subgraph isomorphism). Provided as an extension; iGQ's
    /// correctness argument is semantics-agnostic as long as the method and
    /// the query cache agree.
    Induced,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchConfig {
    /// Monomorphism (default) or induced.
    pub semantics: MatchSemantics,
    /// Optional cap on explored search states.
    pub budget: Budget,
}

impl MatchConfig {
    /// Monomorphism with a state budget.
    pub fn with_budget(max_states: u64) -> Self {
        MatchConfig {
            semantics: MatchSemantics::Monomorphism,
            budget: Budget::limited(max_states),
        }
    }

    /// Induced semantics, unlimited budget.
    pub fn induced() -> Self {
        MatchConfig {
            semantics: MatchSemantics::Induced,
            budget: Budget::unlimited(),
        }
    }
}

/// The verdict of a single test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// An embedding was found; `mapping[p.index()]` is the image of pattern
    /// vertex `p` in the target.
    Found(Vec<VertexId>),
    /// The full search space was exhausted without an embedding.
    NotFound,
    /// The state budget ran out before a decision; the answer is unknown.
    Aborted,
}

impl Outcome {
    /// True only for [`Outcome::Found`].
    #[inline]
    pub fn is_found(&self) -> bool {
        matches!(self, Outcome::Found(_))
    }

    /// True only for [`Outcome::NotFound`] — note `Aborted` is *not* a no.
    #[inline]
    pub fn is_not_found(&self) -> bool {
        matches!(self, Outcome::NotFound)
    }

    /// The embedding, if found.
    pub fn mapping(&self) -> Option<&[VertexId]> {
        match self {
            Outcome::Found(m) => Some(m),
            _ => None,
        }
    }
}

/// Result of one engine invocation: verdict plus work accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// The verdict.
    pub outcome: Outcome,
    /// Number of search states (recursive extensions) explored.
    pub states: u64,
}

impl MatchResult {
    pub(crate) fn new(outcome: Outcome, states: u64) -> Self {
        MatchResult { outcome, states }
    }
}

/// Validates that `mapping` is a correct embedding of `pattern` into
/// `target` under `semantics`. Test/debug helper used by both engines'
/// test suites and by the property tests.
pub fn verify_embedding(
    pattern: &igq_graph::Graph,
    target: &igq_graph::Graph,
    mapping: &[VertexId],
    semantics: MatchSemantics,
) -> bool {
    if mapping.len() != pattern.vertex_count() {
        return false;
    }
    // Injectivity.
    let mut seen = vec![false; target.vertex_count()];
    for &t in mapping {
        if t.index() >= target.vertex_count() || seen[t.index()] {
            return false;
        }
        seen[t.index()] = true;
    }
    // Labels.
    for p in pattern.vertices() {
        if pattern.label(p) != target.label(mapping[p.index()]) {
            return false;
        }
    }
    // Edges (and non-edges for induced).
    for u in pattern.vertices() {
        for v in pattern.vertices() {
            if u >= v {
                continue;
            }
            let pe = pattern.has_edge(u, v);
            let te = target.has_edge(mapping[u.index()], mapping[v.index()]);
            match semantics {
                MatchSemantics::Monomorphism => {
                    if pe && !te {
                        return false;
                    }
                }
                MatchSemantics::Induced => {
                    if pe != te {
                        return false;
                    }
                }
            }
            // Mapped edges must agree on edge labels (default 0 when a
            // side is unlabeled).
            if pe
                && te
                && pattern.edge_label(u, v)
                    != target.edge_label(mapping[u.index()], mapping[v.index()])
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Found(vec![]).is_found());
        assert!(!Outcome::Aborted.is_found());
        assert!(!Outcome::Aborted.is_not_found());
        assert!(Outcome::NotFound.is_not_found());
    }

    #[test]
    fn verify_embedding_accepts_identity() {
        let g = graph_from(&[0, 1], &[(0, 1)]);
        let id = vec![VertexId::new(0), VertexId::new(1)];
        assert!(verify_embedding(&g, &g, &id, MatchSemantics::Monomorphism));
        assert!(verify_embedding(&g, &g, &id, MatchSemantics::Induced));
    }

    #[test]
    fn verify_embedding_rejects_label_mismatch() {
        let p = graph_from(&[0], &[]);
        let t = graph_from(&[1], &[]);
        assert!(!verify_embedding(
            &p,
            &t,
            &[VertexId::new(0)],
            MatchSemantics::Monomorphism
        ));
    }

    #[test]
    fn verify_embedding_rejects_non_injective() {
        let p = graph_from(&[0, 0], &[]);
        let t = graph_from(&[0, 0], &[]);
        let m = vec![VertexId::new(0), VertexId::new(0)];
        assert!(!verify_embedding(&p, &t, &m, MatchSemantics::Monomorphism));
    }

    #[test]
    fn induced_rejects_extra_target_edge() {
        // Pattern: two disconnected labeled-0 vertices. Target: edge between them.
        let p = graph_from(&[0, 0], &[]);
        let t = graph_from(&[0, 0], &[(0, 1)]);
        let m = vec![VertexId::new(0), VertexId::new(1)];
        assert!(verify_embedding(&p, &t, &m, MatchSemantics::Monomorphism));
        assert!(!verify_embedding(&p, &t, &m, MatchSemantics::Induced));
    }
}
