//! # igq-iso
//!
//! Subgraph-isomorphism engines and the iGQ cost model.
//!
//! The verification stage of every filter-then-verify method — and therefore
//! the quantity iGQ exists to minimize — is the NP-complete subgraph
//! isomorphism test (paper Definition 2: an injective, label- and
//! edge-preserving map; i.e. *monomorphism*). This crate provides:
//!
//! * [`vf2`] — the VF2 algorithm (Cordella et al., TPAMI 2004), the matcher
//!   used by GGSX and CT-Index and "arguably the most widely used" per the
//!   paper;
//! * [`plan`] — the amortized VF2 hot path: a query-side [`MatchPlan`]
//!   built once per query plus a reusable [`MatchScratch`] workspace, so
//!   batch verification explores candidates with zero per-candidate heap
//!   allocations (the per-pair [`vf2`] stays as the one-off fallback and
//!   property-test oracle);
//! * [`plan_cache`] — a bounded, sharded [`PlanCache`] keyed by canonical
//!   code, so repeated (isomorphic) queries reuse one [`MatchPlan`] instead
//!   of rebuilding it per query, with rarity-drift staleness detection;
//! * [`ullmann`] — Ullmann's 1976 algorithm, the classic baseline (\[39\] in
//!   the paper), kept for ablation benchmarks;
//! * [`budget`] — optional search-state budgets so harness code can bound
//!   pathological instances *without* silently changing answers (exhausting
//!   a budget yields [`Outcome::Aborted`], never a fabricated no);
//! * [`cost`] — the asymptotic iso-test cost model of Section 5.1,
//!   `c(g′,Gi) = Ni·Ni! / (L^{n+1}·(Ni−n)!)`, evaluated in log space because
//!   the factorials overflow `f64` for every PDBS-sized graph;
//! * [`stats`] — mergeable counters for tests run and states explored.

pub mod budget;
pub mod cost;
pub mod logmath;
pub mod plan;
pub mod plan_cache;
pub mod semantics;
pub mod stats;
pub mod ullmann;
pub mod vf2;

pub use budget::Budget;
pub use cost::{iso_cost_ln, CostModel};
pub use logmath::LogValue;
pub use plan::{
    find_with_plan, matches_with_plan, with_thread_scratch, MatchPlan, MatchScratch, Verdict,
};
pub use plan_cache::{PlanCache, PlanCacheStats, RARITY_DRIFT_FACTOR};
pub use semantics::{MatchConfig, MatchSemantics, Outcome};
pub use stats::IsoStats;

use igq_graph::Graph;

/// Which engine to use — lets harness code switch matchers uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// VF2 (default everywhere, as in the paper).
    #[default]
    Vf2,
    /// Ullmann's algorithm (ablation baseline).
    Ullmann,
}

/// Runs a single subgraph-isomorphism test with the chosen engine.
pub fn find_embedding(
    engine: Engine,
    pattern: &Graph,
    target: &Graph,
    config: &MatchConfig,
) -> semantics::MatchResult {
    match engine {
        Engine::Vf2 => vf2::find_one(pattern, target, config),
        Engine::Ullmann => ullmann::find_one(pattern, target, config),
    }
}

/// Convenience: unlimited-budget monomorphism test with VF2.
///
/// ```
/// use igq_graph::graph_from;
/// let path = graph_from(&[0, 1], &[(0, 1)]);
/// let tri = graph_from(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
/// assert!(igq_iso::is_subgraph(&path, &tri));
/// assert!(!igq_iso::is_subgraph(&tri, &path));
/// ```
pub fn is_subgraph(pattern: &Graph, target: &Graph) -> bool {
    vf2::find_one(pattern, target, &MatchConfig::default())
        .outcome
        .is_found()
}

/// True when `a` and `b` are isomorphic (at equal vertex and edge counts a
/// monomorphism is necessarily an isomorphism).
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    a.vertex_count() == b.vertex_count() && a.edge_count() == b.edge_count() && is_subgraph(a, b)
}
