//! # igq-workload
//!
//! Dataset synthesizers and query-workload generators for the iGQ
//! evaluation (paper Section 7.1).
//!
//! * [`datasets`] — four generators matching the shape of the paper's
//!   datasets (Table 1): [`datasets::aids_like`], [`datasets::pdbs_like`],
//!   [`datasets::ppi_like`], [`datasets::synthetic_like`];
//! * [`zipf`] — the finite-support Zipf sampler behind the skewed
//!   workloads;
//! * [`querygen`] — the paper's BFS query extractor with configurable
//!   graph/node pick distributions and sizes {4, 8, 12, 16, 20};
//! * [`spec`] — named workload specs (`uni-uni` … `zipf-zipf`) and the
//!   [`WorkloadBuilder`] harness entry point.
//!
//! Everything is deterministic in its seed, and dataset generation is
//! prefix-stable: scaling a dataset up leaves its earlier graphs unchanged.

pub mod datasets;
pub mod querygen;
pub mod spec;
pub mod zipf;

pub use datasets::DatasetKind;
pub use querygen::{bfs_extract, QueryGenerator, PAPER_QUERY_SIZES};
pub use spec::{Distribution, QueryWorkloadSpec, WorkloadBuilder, DEFAULT_ALPHA};
pub use zipf::Zipf;
