//! Synthetic-dataset synthesizer (the generator of FG-index [7], as used
//! in the paper).
//!
//! Table 1 targets: 20 vertex labels, 1,000 graphs, average degree 19.52,
//! nodes avg 892 / sd 417 / max 7,135, edges avg 7,991 / sd 5 / max 8,007.
//!
//! The striking feature is the *near-constant* edge count (sd ≈ 5!) with
//! widely varying node counts — the generator emits a fixed number of
//! edges per graph and the node count falls out of the density parameter.
//! We mirror that: every graph gets ~7,991 ± 5 edges over a
//! normally-distributed node count, uniform labels over a tiny universe of
//! 20 (making this the hardest dataset for label-based filtering).

use super::{graph_rng, random_graph, sample_normal_clamped, GraphShape, LabelModel};
use igq_graph::GraphStore;

/// Number of distinct vertex labels in the synthetic dataset.
pub const SYNTHETIC_LABELS: u32 = 20;

/// Generates a synthetic dataset of `graph_count` dense graphs.
pub fn synthetic_like(graph_count: usize, seed: u64) -> GraphStore {
    (0..graph_count)
        .map(|i| {
            let mut rng = graph_rng(seed, i);
            // Node floor 150: the smallest n with C(n,2) comfortably above
            // the edge target (C(128,2) = 8128 is the bare minimum), so
            // every graph can reach its ~7,991 edges and the dataset keeps
            // Table 1's near-constant edge count. A floor of 120 let
            // low-tail draws cap out at C(120,2) = 7,140 edges.
            let nodes = sample_normal_clamped(&mut rng, 892.0, 417.0, 150, 7_135);
            let edges = sample_normal_clamped(&mut rng, 7_991.0, 5.0, 7_970, 8_007);
            random_graph(
                &mut rng,
                &GraphShape {
                    nodes,
                    edges,
                    labels: LabelModel::Uniform {
                        universe: SYNTHETIC_LABELS,
                    },
                    preferential: false,
                    edge_label_universe: 0,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::stats::DatasetStats;

    #[test]
    fn shape_matches_table1() {
        let store = synthetic_like(40, 13);
        let s = DatasetStats::of(&store);
        assert_eq!(s.graph_count, 40);
        assert_eq!(s.vertex_labels, SYNTHETIC_LABELS as usize);
        assert!(
            (s.edges.avg - 7_991.0).abs() < 40.0,
            "edge avg {}",
            s.edges.avg
        );
        assert!(s.edges.std_dev < 40.0, "edge sd {}", s.edges.std_dev);
        assert!(
            s.nodes.avg > 600.0 && s.nodes.avg < 1_200.0,
            "node avg {}",
            s.nodes.avg
        );
        assert!(s.avg_degree > 12.0, "avg degree {}", s.avg_degree);
    }

    #[test]
    fn edge_count_is_near_constant() {
        let store = synthetic_like(10, 3);
        for (_, g) in store.iter() {
            assert!(
                (7_900..=8_020).contains(&g.edge_count()),
                "edges {}",
                g.edge_count()
            );
        }
    }
}
