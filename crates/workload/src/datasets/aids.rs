//! AIDS-like synthesizer.
//!
//! Table 1 targets: 62 vertex labels, 40,000 graphs, average degree 2.09,
//! nodes avg 45 / sd 22 / max 245, edges avg 47 / sd 23 / max 250.
//!
//! Molecule graphs are sparse — essentially trees with a sprinkle of rings —
//! and their label (element) distribution is heavily skewed toward a few
//! atoms (C, O, N, ...), which we model with Zipf(1.6) labels.

use super::{graph_rng, random_graph, sample_normal_clamped, GraphShape, LabelModel};
use igq_graph::GraphStore;

/// Number of distinct vertex labels (chemical elements) in AIDS.
pub const AIDS_LABELS: u32 = 62;

/// Default label-skew α for [`aids_like`]. Real AIDS molecules are
/// dominated by a handful of elements — heavy-atom composition is roughly
/// C 70%, O 12%, N 10% — and Zipf(2.2) over 62 labels reproduces exactly
/// that profile (0.67 / 0.15 / 0.06). The skew is the main driver of
/// cross-query sub/supergraph relationships, and therefore of iGQ's
/// speedup; the `probe_label_skew` binary measures the dependence.
pub const AIDS_LABEL_ALPHA: f64 = 2.2;

/// Generates an AIDS-like dataset of `graph_count` molecule graphs.
pub fn aids_like(graph_count: usize, seed: u64) -> GraphStore {
    aids_like_skewed(graph_count, seed, AIDS_LABEL_ALPHA)
}

/// [`aids_like`] with an explicit label-skew α (diagnostics/ablations).
pub fn aids_like_skewed(graph_count: usize, seed: u64, alpha: f64) -> GraphStore {
    (0..graph_count)
        .map(|i| {
            let mut rng = graph_rng(seed, i);
            let nodes = sample_normal_clamped(&mut rng, 45.0, 22.0, 4, 245);
            // Average degree 2.09 ⇒ m ≈ 1.045·n: a spanning tree plus ~4.5%
            // ring-closing edges.
            let edges = ((nodes as f64) * 1.045).round() as usize;
            random_graph(
                &mut rng,
                &GraphShape {
                    nodes,
                    edges,
                    labels: LabelModel::Skewed {
                        universe: AIDS_LABELS,
                        alpha,
                    },
                    preferential: false,
                    edge_label_universe: 0,
                },
            )
        })
        .collect()
}

/// Number of bond types in the edge-labeled AIDS variant (single, double,
/// triple, aromatic — as in the real NCI SD files).
pub const AIDS_BOND_TYPES: u32 = 4;

/// Generates an AIDS-like dataset whose edges carry bond-type labels —
/// the paper's Section 3 edge-label generalization, exercised end-to-end.
/// Same shapes as [`aids_like`]; bond labels are Zipf(1.8)-skewed toward
/// label 0 (single bonds dominate real molecules).
pub fn aids_like_bonds(graph_count: usize, seed: u64) -> GraphStore {
    (0..graph_count)
        .map(|i| {
            let mut rng = graph_rng(seed, i);
            let nodes = sample_normal_clamped(&mut rng, 45.0, 22.0, 4, 245);
            let edges = ((nodes as f64) * 1.045).round() as usize;
            random_graph(
                &mut rng,
                &GraphShape {
                    nodes,
                    edges,
                    labels: LabelModel::Skewed {
                        universe: AIDS_LABELS,
                        alpha: AIDS_LABEL_ALPHA,
                    },
                    preferential: false,
                    edge_label_universe: AIDS_BOND_TYPES,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::stats::DatasetStats;

    #[test]
    fn shape_matches_table1() {
        let store = aids_like(300, 17);
        let s = DatasetStats::of(&store);
        assert_eq!(s.graph_count, 300);
        assert!((s.nodes.avg - 45.0).abs() < 5.0, "node avg {}", s.nodes.avg);
        assert!(
            (s.avg_degree - 2.09).abs() < 0.15,
            "avg degree {}",
            s.avg_degree
        );
        assert!(s.nodes.max <= 245.0);
        assert!(s.vertex_labels <= AIDS_LABELS as usize);
        // The skewed model should still exercise a good part of the universe.
        assert!(s.vertex_labels > 20, "labels used {}", s.vertex_labels);
    }

    #[test]
    fn graphs_are_sparse() {
        let store = aids_like(50, 3);
        for (_, g) in store.iter() {
            let density = g.edge_count() as f64 / g.vertex_count() as f64;
            assert!(density < 1.3, "density {density}");
        }
    }

    #[test]
    fn bond_variant_labels_edges() {
        let store = aids_like_bonds(30, 3);
        let labeled = store.iter().filter(|(_, g)| g.has_edge_labels()).count();
        assert!(
            labeled > 20,
            "most molecule graphs should carry bond labels"
        );
        // Bond labels stay inside the declared universe, skewed toward 0.
        let mut hist = std::collections::BTreeMap::new();
        for (_, g) in store.iter() {
            for (_, l) in g.labeled_edges() {
                assert!(l.raw() < AIDS_BOND_TYPES);
                *hist.entry(l.raw()).or_insert(0u32) += 1;
            }
        }
        let single = hist.get(&0).copied().unwrap_or(0);
        let total: u32 = hist.values().sum();
        assert!(single * 2 > total, "single bonds should dominate: {hist:?}");
    }

    #[test]
    fn bond_variant_same_topology_as_plain() {
        // Same seed ⇒ identical topology and vertex labels; edge labels
        // are layered on a forked RNG stream.
        let plain = aids_like(5, 11);
        let bonds = aids_like_bonds(5, 11);
        for i in 0..5 {
            let id = igq_graph::GraphId::new(i);
            let (p, b) = (plain.get(id), bonds.get(id));
            assert_eq!(p.labels(), b.labels());
            assert_eq!(p.edges(), b.edges());
        }
    }
}
