//! Dataset synthesizers matching the paper's Table 1.
//!
//! The paper evaluates on three real datasets (AIDS, PDBS, PPI) and one
//! synthetic one. The raw files are not redistributable here, so each
//! synthesizer reproduces the corresponding dataset's *shape* — graph
//! count, label-universe size, node/edge moments, and density regime — per
//! the substitution policy in DESIGN.md. All generators are deterministic
//! in their seed.

mod aids;
mod pdbs;
mod ppi;
mod synthetic;

pub use aids::{
    aids_like, aids_like_bonds, aids_like_skewed, AIDS_BOND_TYPES, AIDS_LABELS, AIDS_LABEL_ALPHA,
};
pub use pdbs::pdbs_like;
pub use ppi::ppi_like;
pub use synthetic::synthetic_like;

use crate::zipf::Zipf;
use igq_graph::{Graph, GraphBuilder, GraphStore, LabelId, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's four datasets to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// NCI AIDS antiviral screen: 40,000 small sparse molecule graphs.
    Aids,
    /// PDBS: 600 large sparse DNA/RNA/protein graphs.
    Pdbs,
    /// PPI: 20 large dense protein-interaction networks.
    Ppi,
    /// The FG-index-style synthetic generator: 1,000 dense graphs.
    Synthetic,
}

impl DatasetKind {
    /// All four datasets in the paper's order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Aids,
        DatasetKind::Pdbs,
        DatasetKind::Ppi,
        DatasetKind::Synthetic,
    ];

    /// The paper's graph count for this dataset.
    pub fn paper_graph_count(self) -> usize {
        match self {
            DatasetKind::Aids => 40_000,
            DatasetKind::Pdbs => 600,
            DatasetKind::Ppi => 20,
            DatasetKind::Synthetic => 1_000,
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Aids => "AIDS",
            DatasetKind::Pdbs => "PDBS",
            DatasetKind::Ppi => "PPI",
            DatasetKind::Synthetic => "Synthetic",
        }
    }

    /// Generates the dataset with `graph_count` graphs.
    pub fn generate(self, graph_count: usize, seed: u64) -> GraphStore {
        match self {
            DatasetKind::Aids => aids_like(graph_count, seed),
            DatasetKind::Pdbs => pdbs_like(graph_count, seed),
            DatasetKind::Ppi => ppi_like(graph_count, seed),
            DatasetKind::Synthetic => synthetic_like(graph_count, seed),
        }
    }

    /// Generates the dataset scaled to `scale` of the paper's graph count
    /// (at least one graph).
    pub fn generate_scaled(self, scale: f64, seed: u64) -> GraphStore {
        let count = ((self.paper_graph_count() as f64 * scale).round() as usize).max(1);
        self.generate(count, seed)
    }
}

/// Label assignment model.
pub(crate) enum LabelModel {
    /// Zipf-skewed labels (molecules: a few elements dominate).
    Skewed { universe: u32, alpha: f64 },
    /// Uniform labels.
    Uniform { universe: u32 },
}

impl LabelModel {
    fn sample(&self, rng: &mut StdRng, zipf: &Option<Zipf>) -> LabelId {
        match self {
            LabelModel::Skewed { .. } => {
                LabelId::new(zipf.as_ref().expect("zipf for skewed labels").sample(rng) as u32)
            }
            LabelModel::Uniform { universe } => LabelId::new(rng.gen_range(0..*universe)),
        }
    }

    fn zipf(&self) -> Option<Zipf> {
        match self {
            LabelModel::Skewed { universe, alpha } => Some(Zipf::new(*universe as usize, *alpha)),
            LabelModel::Uniform { .. } => None,
        }
    }
}

/// Normal sample via Box–Muller, clamped to `[lo, hi]`.
pub(crate) fn sample_normal_clamped(
    rng: &mut StdRng,
    mean: f64,
    std_dev: f64,
    lo: usize,
    hi: usize,
) -> usize {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = mean + std_dev * z;
    (x.round() as i64).clamp(lo as i64, hi as i64) as usize
}

/// Log-normal sample (parameterized by the target linear mean/std),
/// clamped to `[lo, hi]`.
pub(crate) fn sample_lognormal_clamped(
    rng: &mut StdRng,
    mean: f64,
    std_dev: f64,
    lo: usize,
    hi: usize,
) -> usize {
    let cv2 = (std_dev / mean).powi(2);
    let sigma2 = (1.0 + cv2).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = (mu + sigma2.sqrt() * z).exp();
    (x.round() as i64).clamp(lo as i64, hi as i64) as usize
}

/// Parameters for one synthesized graph.
pub(crate) struct GraphShape {
    pub nodes: usize,
    pub edges: usize,
    pub labels: LabelModel,
    /// Extra edges attach preferentially to high-degree vertices
    /// (protein-interaction style hubs) instead of uniformly.
    pub preferential: bool,
    /// Edge-label universe size; `0` produces unlabeled edges. Labels are
    /// Zipf(1.8)-skewed toward `0` (chemistry: single bonds dominate).
    pub edge_label_universe: u32,
}

/// Builds one random connected-ish labeled graph: a uniform random
/// spanning tree plus extra edges up to the target count.
pub(crate) fn random_graph(rng: &mut StdRng, shape: &GraphShape) -> Graph {
    let n = shape.nodes.max(1);
    let zipf = shape.labels.zipf();
    // Edge labels draw from a *forked* stream so that an edge-labeled
    // variant keeps byte-identical topology to its unlabeled twin (same
    // seed ⇒ same structure, labels layered on top).
    let mut label_rng = StdRng::seed_from_u64(rng.gen());
    let edge_zipf =
        (shape.edge_label_universe > 0).then(|| Zipf::new(shape.edge_label_universe as usize, 1.8));
    let mut b = GraphBuilder::with_capacity(n, shape.edges);
    for _ in 0..n {
        let l = shape.labels.sample(rng, &zipf);
        b.add_vertex(l);
    }
    let edge_label = move |label_rng: &mut StdRng| match &edge_zipf {
        Some(z) => LabelId::new(z.sample(label_rng) as u32),
        None => LabelId::new(0),
    };
    // Random attachment tree: vertex i links to a uniform earlier vertex.
    let mut degree = vec![0u32; n];
    for i in 1..n as u32 {
        let j = rng.gen_range(0..i);
        let l = edge_label(&mut label_rng);
        b.add_edge_labeled(VertexId::new(i), VertexId::new(j), l)
            .expect("valid tree edge");
        degree[i as usize] += 1;
        degree[j as usize] += 1;
    }
    // Extra edges to reach the target count.
    let max_edges = n * (n - 1) / 2;
    let target = shape.edges.clamp(n.saturating_sub(1), max_edges);
    let mut added = n.saturating_sub(1);
    let mut attempts = 0usize;
    let attempt_cap = target.saturating_mul(20) + 100;
    // Preferential attachment samples endpoints proportional to degree+1
    // via a growing endpoint pool; uniform samples ids directly.
    let mut pool: Vec<u32> = if shape.preferential {
        let mut p = Vec::with_capacity(4 * n);
        for (i, &d) in degree.iter().enumerate() {
            for _ in 0..(d + 1) {
                p.push(i as u32);
            }
        }
        p
    } else {
        Vec::new()
    };
    while added < target && attempts < attempt_cap {
        attempts += 1;
        let (u, v) = if shape.preferential {
            (
                pool[rng.gen_range(0..pool.len())],
                pool[rng.gen_range(0..pool.len())],
            )
        } else {
            (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))
        };
        if u == v {
            continue;
        }
        let (u, v) = (VertexId::new(u), VertexId::new(v));
        if b.has_edge(u, v) {
            continue;
        }
        let l = edge_label(&mut label_rng);
        b.add_edge_labeled(u, v, l).expect("valid extra edge");
        if shape.preferential {
            pool.push(u.raw());
            pool.push(v.raw());
        }
        added += 1;
    }
    b.build()
}

/// Deterministic per-graph RNG stream: one master seed, one stream per
/// graph index, so scaling the graph count leaves earlier graphs identical.
pub(crate) fn graph_rng(seed: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::stats::DatasetStats;

    #[test]
    fn all_kinds_generate() {
        for kind in DatasetKind::ALL {
            let store = kind.generate(3, 42);
            assert_eq!(store.len(), 3, "{}", kind.name());
            assert!(store.iter().all(|(_, g)| g.vertex_count() > 0));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetKind::Aids.generate(5, 7);
        let b = DatasetKind::Aids.generate(5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetKind::Aids.generate(5, 7);
        let b = DatasetKind::Aids.generate(5, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_stability_under_scaling() {
        let small = DatasetKind::Pdbs.generate(3, 11);
        let large = DatasetKind::Pdbs.generate(6, 11);
        for i in 0..3 {
            assert_eq!(
                small.get(igq_graph::GraphId::new(i)),
                large.get(igq_graph::GraphId::new(i))
            );
        }
    }

    #[test]
    fn scaled_generation_counts() {
        let store = DatasetKind::Ppi.generate_scaled(0.5, 1);
        assert_eq!(store.len(), 10);
        let tiny = DatasetKind::Ppi.generate_scaled(0.0001, 1);
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn random_graph_hits_edge_target() {
        let mut rng = graph_rng(3, 0);
        let g = random_graph(
            &mut rng,
            &GraphShape {
                nodes: 100,
                edges: 300,
                labels: LabelModel::Uniform { universe: 5 },
                preferential: false,
                edge_label_universe: 0,
            },
        );
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 300);
        assert!(g.is_connected());
    }

    #[test]
    fn preferential_graphs_grow_hubs() {
        let mut rng = graph_rng(5, 0);
        let shape = |pref| GraphShape {
            nodes: 300,
            edges: 1500,
            labels: LabelModel::Uniform { universe: 5 },
            preferential: pref,
            edge_label_universe: 0,
        };
        let pa = random_graph(&mut rng, &shape(true));
        let mut rng = graph_rng(5, 0);
        let er = random_graph(&mut rng, &shape(false));
        assert!(
            pa.max_degree() > er.max_degree(),
            "pa {} vs er {}",
            pa.max_degree(),
            er.max_degree()
        );
    }

    #[test]
    fn normal_clamping() {
        let mut rng = graph_rng(1, 0);
        for _ in 0..100 {
            let x = sample_normal_clamped(&mut rng, 50.0, 100.0, 10, 60);
            assert!((10..=60).contains(&x));
        }
    }

    #[test]
    fn lognormal_mean_is_roughly_right() {
        let mut rng = graph_rng(2, 0);
        let xs: Vec<f64> = (0..4000)
            .map(|_| sample_lognormal_clamped(&mut rng, 300.0, 150.0, 1, 100_000) as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 300.0).abs() < 30.0, "mean {mean}");
    }

    #[test]
    fn dataset_stats_exist_for_every_kind() {
        for kind in DatasetKind::ALL {
            let store = kind.generate(2, 9);
            let stats = DatasetStats::of(&store);
            assert!(stats.avg_degree > 0.0);
        }
    }
}
