//! PPI-like synthesizer.
//!
//! Table 1 targets: 46 vertex labels, 20 graphs, average degree 9.23,
//! nodes avg 4,943 / sd 2,717 / max 10,186, edges avg 26,667 / sd 26,361 /
//! max 89,674.
//!
//! Protein-interaction networks are a handful of big, dense, hub-dominated
//! graphs; extra edges attach preferentially so the degree distribution
//! grows the heavy tail real PPI networks have. On this dataset queries run
//! 1–2 orders of magnitude slower (paper Section 7.1), which is why the
//! paper shrinks the workload to 500 queries with W = 20.

use super::{graph_rng, random_graph, sample_normal_clamped, GraphShape, LabelModel};
use igq_graph::GraphStore;

/// Number of distinct vertex labels in PPI.
pub const PPI_LABELS: u32 = 46;

/// Generates a PPI-like dataset of `graph_count` interaction networks.
pub fn ppi_like(graph_count: usize, seed: u64) -> GraphStore {
    (0..graph_count)
        .map(|i| {
            let mut rng = graph_rng(seed, i);
            let nodes = sample_normal_clamped(&mut rng, 4_943.0, 2_717.0, 600, 10_186);
            // Average degree 9.23 ⇒ m ≈ 4.6·n.
            let edges = ((nodes as f64) * 4.615).round() as usize;
            random_graph(
                &mut rng,
                &GraphShape {
                    nodes,
                    edges,
                    labels: LabelModel::Uniform {
                        universe: PPI_LABELS,
                    },
                    preferential: true,
                    edge_label_universe: 0,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::stats::DatasetStats;

    #[test]
    fn shape_matches_table1() {
        let store = ppi_like(10, 31);
        let s = DatasetStats::of(&store);
        assert_eq!(s.graph_count, 10);
        assert_eq!(s.vertex_labels, PPI_LABELS as usize);
        assert!(
            (s.avg_degree - 9.23).abs() < 0.6,
            "avg degree {}",
            s.avg_degree
        );
        assert!(
            s.nodes.avg > 2_500.0 && s.nodes.avg < 7_500.0,
            "node avg {}",
            s.nodes.avg
        );
    }

    #[test]
    fn graphs_are_dense_and_hubby() {
        let store = ppi_like(3, 2);
        for (_, g) in store.iter() {
            assert!(g.avg_degree() > 7.0);
            // Preferential attachment must produce hubs well above average.
            assert!(
                g.max_degree() > 3 * g.avg_degree() as usize,
                "max {} avg {}",
                g.max_degree(),
                g.avg_degree()
            );
        }
    }
}
