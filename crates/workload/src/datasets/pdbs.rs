//! PDBS-like synthesizer.
//!
//! Table 1 targets: 10 vertex labels, 600 graphs, average degree 2.13,
//! nodes avg 2,939 / sd 3,217 / max 16,431, edges avg 3,064 / sd 3,264 /
//! max 16,781.
//!
//! DNA/RNA/protein backbone graphs: few large sparse graphs whose sizes
//! span two orders of magnitude — a log-normal size distribution — with a
//! tiny label alphabet (10), which is what makes PDBS hard for bitmap
//! filters (CT-Index's ~50% false-positive ratio in Fig. 3).

use super::{graph_rng, random_graph, sample_lognormal_clamped, GraphShape, LabelModel};
use igq_graph::GraphStore;

/// Number of distinct vertex labels in PDBS.
pub const PDBS_LABELS: u32 = 10;

/// Label-skew α. Macromolecule graphs are backbone-dominated (carbon is
/// ~60% of heavy atoms, then N/O/P); Zipf(1.8) over the 10-label universe
/// reproduces that composition (0.59 / 0.17 / 0.08).
pub const PDBS_LABEL_ALPHA: f64 = 1.8;

/// Generates a PDBS-like dataset of `graph_count` macromolecule graphs.
pub fn pdbs_like(graph_count: usize, seed: u64) -> GraphStore {
    (0..graph_count)
        .map(|i| {
            let mut rng = graph_rng(seed, i);
            let nodes = sample_lognormal_clamped(&mut rng, 2_939.0, 3_217.0, 60, 16_431);
            // Average degree 2.13 ⇒ m ≈ 1.065·n.
            let edges = ((nodes as f64) * 1.065).round() as usize;
            random_graph(
                &mut rng,
                &GraphShape {
                    nodes,
                    edges,
                    labels: LabelModel::Skewed {
                        universe: PDBS_LABELS,
                        alpha: PDBS_LABEL_ALPHA,
                    },
                    preferential: false,
                    edge_label_universe: 0,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::stats::DatasetStats;

    #[test]
    fn shape_matches_table1() {
        let store = pdbs_like(120, 23);
        let s = DatasetStats::of(&store);
        assert_eq!(s.graph_count, 120);
        assert_eq!(s.vertex_labels, PDBS_LABELS as usize);
        assert!(
            (s.avg_degree - 2.13).abs() < 0.1,
            "avg degree {}",
            s.avg_degree
        );
        // Log-normal: mean in the low thousands, heavy right tail.
        assert!(
            s.nodes.avg > 1_200.0 && s.nodes.avg < 5_500.0,
            "node avg {}",
            s.nodes.avg
        );
        assert!(s.nodes.std_dev > 1_000.0, "node sd {}", s.nodes.std_dev);
        assert!(s.nodes.max <= 16_431.0);
    }

    #[test]
    fn sizes_span_orders_of_magnitude() {
        let store = pdbs_like(80, 5);
        let sizes: Vec<usize> = store.iter().map(|(_, g)| g.vertex_count()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max as f64 / min as f64 > 8.0, "min {min} max {max}");
    }
}
