//! Workload specifications — the four named workloads of Section 7.1.

use crate::datasets::DatasetKind;
use crate::querygen::{QueryGenerator, PAPER_QUERY_SIZES};
use igq_graph::{Graph, GraphStore};
use std::fmt;

/// A popularity distribution for graph or node selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform selection.
    Uniform,
    /// Zipf with skew `α` (paper default 1.4; also 1.1, 2.0, 2.4).
    Zipf(f64),
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::Uniform => write!(f, "uni"),
            Distribution::Zipf(a) => write!(f, "zipf({a})"),
        }
    }
}

/// The paper's default Zipf skew.
pub const DEFAULT_ALPHA: f64 = 1.4;

/// A full query-workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWorkloadSpec {
    /// Graph-pick distribution.
    pub graph_dist: Distribution,
    /// Node-pick distribution.
    pub node_dist: Distribution,
    /// Query sizes in edges.
    pub sizes: Vec<usize>,
    /// Number of queries.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QueryWorkloadSpec {
    /// One of the four named workloads (`uni-uni`, `uni-zipf`, `zipf-uni`,
    /// `zipf-zipf`) with the paper's query sizes.
    pub fn named(graph_zipf: bool, node_zipf: bool, alpha: f64, count: usize, seed: u64) -> Self {
        let pick = |z: bool| {
            if z {
                Distribution::Zipf(alpha)
            } else {
                Distribution::Uniform
            }
        };
        QueryWorkloadSpec {
            graph_dist: pick(graph_zipf),
            node_dist: pick(node_zipf),
            sizes: PAPER_QUERY_SIZES.to_vec(),
            count,
            seed,
        }
    }

    /// All four named workloads in the paper's order.
    pub fn all_four(alpha: f64, count: usize, seed: u64) -> Vec<(String, QueryWorkloadSpec)> {
        [(false, false), (false, true), (true, false), (true, true)]
            .into_iter()
            .map(|(g, n)| {
                let spec = QueryWorkloadSpec::named(g, n, alpha, count, seed);
                (spec.label(), spec)
            })
            .collect()
    }

    /// The `uni−uni`-style label.
    pub fn label(&self) -> String {
        let short = |d: &Distribution| match d {
            Distribution::Uniform => "uni".to_owned(),
            Distribution::Zipf(_) => "zipf".to_owned(),
        };
        format!("{}-{}", short(&self.graph_dist), short(&self.node_dist))
    }

    /// Materializes the queries against `store`.
    pub fn generate(&self, store: &GraphStore) -> Vec<Graph> {
        QueryGenerator::with_sizes(
            store,
            self.graph_dist,
            self.node_dist,
            self.sizes.clone(),
            self.seed,
        )
        .take(self.count)
    }
}

/// Builder producing a dataset and a workload together — the harness entry
/// point.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    /// Which dataset to synthesize.
    pub dataset: DatasetKind,
    /// Scale relative to the paper's graph counts.
    pub scale: f64,
    /// Dataset seed.
    pub dataset_seed: u64,
    /// The query workload.
    pub queries: QueryWorkloadSpec,
}

impl WorkloadBuilder {
    /// A builder with paper-faithful defaults for `dataset`.
    pub fn new(dataset: DatasetKind) -> WorkloadBuilder {
        let count = match dataset {
            DatasetKind::Aids | DatasetKind::Pdbs => 3_000,
            DatasetKind::Ppi | DatasetKind::Synthetic => 500,
        };
        WorkloadBuilder {
            dataset,
            scale: 1.0,
            dataset_seed: 0x1609_2016,
            queries: QueryWorkloadSpec::named(false, false, DEFAULT_ALPHA, count, 0xE0B7),
        }
    }

    /// Scales both the dataset and the query count.
    pub fn scaled(mut self, scale: f64) -> WorkloadBuilder {
        self.scale = scale;
        self.queries.count = ((self.queries.count as f64 * scale).round() as usize).max(10);
        self
    }

    /// Replaces the query spec.
    pub fn with_queries(mut self, queries: QueryWorkloadSpec) -> WorkloadBuilder {
        self.queries = queries;
        self
    }

    /// Materializes `(dataset, queries)`.
    pub fn build(&self) -> (GraphStore, Vec<Graph>) {
        let store = self.dataset.generate_scaled(self.scale, self.dataset_seed);
        let queries = self.queries.generate(&store);
        (store, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(
            QueryWorkloadSpec::named(false, false, 1.4, 10, 0).label(),
            "uni-uni"
        );
        assert_eq!(
            QueryWorkloadSpec::named(true, false, 1.4, 10, 0).label(),
            "zipf-uni"
        );
        assert_eq!(
            QueryWorkloadSpec::named(false, true, 1.4, 10, 0).label(),
            "uni-zipf"
        );
        assert_eq!(
            QueryWorkloadSpec::named(true, true, 1.4, 10, 0).label(),
            "zipf-zipf"
        );
    }

    #[test]
    fn all_four_are_distinct() {
        let four = QueryWorkloadSpec::all_four(1.4, 10, 0);
        assert_eq!(four.len(), 4);
        let labels: Vec<&str> = four.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["uni-uni", "uni-zipf", "zipf-uni", "zipf-zipf"]);
    }

    #[test]
    fn builder_generates_consistent_pairs() {
        let wb = WorkloadBuilder::new(DatasetKind::Aids).scaled(0.002);
        let (store, queries) = wb.build();
        assert_eq!(store.len(), 80);
        assert_eq!(queries.len(), 10); // floor at 10
        assert!(queries.iter().all(|q| q.edge_count() >= 1));
    }

    #[test]
    fn distribution_display() {
        assert_eq!(Distribution::Uniform.to_string(), "uni");
        assert_eq!(Distribution::Zipf(1.4).to_string(), "zipf(1.4)");
    }

    #[test]
    fn paper_counts() {
        assert_eq!(WorkloadBuilder::new(DatasetKind::Aids).queries.count, 3000);
        assert_eq!(WorkloadBuilder::new(DatasetKind::Ppi).queries.count, 500);
    }
}
