//! Finite-support Zipf sampler.
//!
//! The paper's workloads draw graph and node popularity from a Zipf
//! distribution with pdf `p(x) = x^(−α) / ζ(α)` (Section 7.1). Over a
//! finite support of `n` ranks we normalize by the generalized harmonic
//! number instead of the Riemann zeta; sampling inverts the CDF with a
//! binary search over a precomputed table.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` (rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// A Zipf distribution with skew `alpha` over `n` ranks.
    ///
    /// # Panics
    /// Panics when `n == 0` or `alpha` is not finite and positive.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "zipf support must be nonempty");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Zipf { cdf, alpha }
    }

    /// The skew parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.4);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.4);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let mild = Zipf::new(100, 1.1);
        let strong = Zipf::new(100, 2.4);
        assert!(strong.pmf(0) > mild.pmf(0));
        assert!(strong.pmf(99) < mild.pmf(99));
    }

    #[test]
    fn samples_follow_the_skew() {
        let z = Zipf::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        // Empirical frequency of rank 0 ≈ pmf(0) within 2%.
        let freq = counts[0] as f64 / 20_000.0;
        assert!(
            (freq - z.pmf(0)).abs() < 0.02,
            "freq {freq} vs pmf {}",
            z.pmf(0)
        );
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 1.4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn singleton_support() {
        let z = Zipf::new(1, 1.4);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.4);
    }
}
