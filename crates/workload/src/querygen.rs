//! Query workload generation (paper Section 7.1).
//!
//! "Queries are generated from the original dataset graphs as follows":
//!
//! 1. pick a dataset graph — uniform or Zipf(α) popularity;
//! 2. pick a node within it — uniform or Zipf(α);
//! 3. pick a query size uniformly from {4, 8, 12, 16, 20} edges;
//! 4. BFS from the chosen node, including the unvisited edges of each
//!    traversed node, until the query reaches the target size.
//!
//! Because queries are carved out of dataset graphs, every generated query
//! has at least one answer — matching the paper's (and all related works')
//! protocol — and repeated Zipf picks of popular graphs/nodes create the
//! sub/supergraph relationships between queries that iGQ exploits.

use crate::spec::Distribution;
use crate::zipf::Zipf;
use igq_graph::fxhash::FxHashMap;
use igq_graph::{Graph, GraphBuilder, GraphStore, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The paper's query sizes, in edges.
pub const PAPER_QUERY_SIZES: [usize; 5] = [4, 8, 12, 16, 20];

/// Generates query graphs from a dataset store.
pub struct QueryGenerator<'a> {
    store: &'a GraphStore,
    graph_dist: Distribution,
    node_dist: Distribution,
    sizes: Vec<usize>,
    graph_zipf: Option<Zipf>,
    rng: StdRng,
}

impl<'a> QueryGenerator<'a> {
    /// A generator over `store` with the given pick distributions and the
    /// paper's query sizes.
    pub fn new(
        store: &'a GraphStore,
        graph_dist: Distribution,
        node_dist: Distribution,
        seed: u64,
    ) -> QueryGenerator<'a> {
        Self::with_sizes(
            store,
            graph_dist,
            node_dist,
            PAPER_QUERY_SIZES.to_vec(),
            seed,
        )
    }

    /// A generator with custom query sizes (in edges).
    pub fn with_sizes(
        store: &'a GraphStore,
        graph_dist: Distribution,
        node_dist: Distribution,
        sizes: Vec<usize>,
        seed: u64,
    ) -> QueryGenerator<'a> {
        assert!(
            !store.is_empty(),
            "cannot generate queries from an empty store"
        );
        assert!(!sizes.is_empty(), "need at least one query size");
        let graph_zipf = match graph_dist {
            Distribution::Zipf(alpha) => Some(Zipf::new(store.len(), alpha)),
            Distribution::Uniform => None,
        };
        QueryGenerator {
            store,
            graph_dist,
            node_dist,
            sizes,
            graph_zipf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick_graph(&mut self) -> &'a Graph {
        let idx = match self.graph_dist {
            Distribution::Uniform => self.rng.gen_range(0..self.store.len()),
            Distribution::Zipf(_) => self
                .graph_zipf
                .as_ref()
                .expect("zipf table")
                .sample(&mut self.rng),
        };
        self.store.get(igq_graph::GraphId::from_index(idx))
    }

    fn pick_node(&mut self, g: &Graph) -> VertexId {
        let n = g.vertex_count();
        let idx = match self.node_dist {
            Distribution::Uniform => self.rng.gen_range(0..n),
            // Node Zipf tables are graph-specific; build on the fly (graphs
            // are picked repeatedly under Zipf, so the cost is amortized by
            // the small table construction being linear).
            Distribution::Zipf(alpha) => Zipf::new(n, alpha).sample(&mut self.rng),
        };
        VertexId::from_index(idx)
    }

    /// Generates the next query graph.
    pub fn next_query(&mut self) -> Graph {
        let size_pick = self.sizes[self.rng.gen_range(0..self.sizes.len())];
        self.next_query_of_size(size_pick)
    }

    /// Generates a query with a specific target edge count.
    pub fn next_query_of_size(&mut self, target_edges: usize) -> Graph {
        // Retry with fresh picks if a degenerate seed (isolated vertex in a
        // disconnected graph region) yields an empty query.
        for _ in 0..16 {
            let g = self.pick_graph();
            let start = self.pick_node(g);
            let q = bfs_extract(g, start, target_edges);
            if q.edge_count() > 0 {
                return q;
            }
        }
        // Deterministic fallback: grow from vertex 0 of graph 0.
        bfs_extract(
            self.store.get(igq_graph::GraphId::new(0)),
            VertexId::new(0),
            target_edges,
        )
    }

    /// Generates `count` queries.
    pub fn take(&mut self, count: usize) -> Vec<Graph> {
        (0..count).map(|_| self.next_query()).collect()
    }
}

/// BFS extraction per the paper: traverse from `start`, adding each
/// traversed node's unvisited edges, until `target_edges` edges are
/// collected (or the component is exhausted). Vertex ids are remapped
/// densely.
pub fn bfs_extract(g: &Graph, start: VertexId, target_edges: usize) -> Graph {
    let mut remap: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    let mut b = GraphBuilder::new();
    let map = |old: VertexId, b: &mut GraphBuilder, remap: &mut FxHashMap<VertexId, VertexId>| {
        *remap
            .entry(old)
            .or_insert_with(|| b.add_vertex(g.label(old)))
    };
    let mut edges_added = 0usize;
    let mut visited = vec![false; g.vertex_count()];
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    let _ = map(start, &mut b, &mut remap);
    'bfs: while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if edges_added >= target_edges {
                break 'bfs;
            }
            let nv = map(v, &mut b, &mut remap);
            let nw = map(w, &mut b, &mut remap);
            if !b.has_edge(nv, nw) {
                b.add_edge_labeled(nv, nw, g.edge_label_unchecked(v, w))
                    .expect("valid bfs edge");
                edges_added += 1;
            }
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;
    use igq_graph::graph_from;

    #[test]
    fn bfs_extract_collects_target_edges() {
        // A 5-cycle with a chord.
        let g = graph_from(
            &[0, 1, 2, 3, 4],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)],
        );
        let q = bfs_extract(&g, VertexId::new(0), 3);
        assert_eq!(q.edge_count(), 3);
        assert!(q.is_connected());
    }

    #[test]
    fn bfs_extract_is_capped_by_component() {
        let g = graph_from(&[0, 0, 1, 1], &[(0, 1), (2, 3)]);
        let q = bfs_extract(&g, VertexId::new(0), 10);
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn bfs_extract_preserves_edge_labels() {
        let g = igq_graph::graph_from_el(&[0, 1, 2], &[(0, 1, 5), (1, 2, 9)]);
        let q = bfs_extract(&g, VertexId::new(0), 2);
        assert!(q.has_edge_labels());
        assert_eq!(q.edge_count(), 2);
        let labels: Vec<u32> = q.labeled_edges().map(|(_, l)| l.raw()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![5, 9]);
        // And the extracted query still embeds in the source graph under
        // edge-label-aware matching.
        assert!(igq_iso::is_subgraph(&q, &g));
    }

    #[test]
    fn queries_are_subgraphs_of_the_dataset() {
        let store = DatasetKind::Aids.generate(30, 5);
        let mut gen = QueryGenerator::new(&store, Distribution::Uniform, Distribution::Uniform, 99);
        for _ in 0..20 {
            let q = gen.next_query();
            assert!(q.edge_count() > 0);
            assert!(q.edge_count() <= 20);
            // By construction the query embeds in at least one dataset graph.
            let hit = store.iter().any(|(_, g)| igq_iso::is_subgraph(&q, g));
            assert!(hit, "query must have at least one answer");
        }
    }

    #[test]
    fn zipf_graph_picks_concentrate() {
        let store = DatasetKind::Aids.generate(50, 5);
        let mut gen =
            QueryGenerator::new(&store, Distribution::Zipf(2.0), Distribution::Uniform, 123);
        // With α=2.0 over 50 graphs, most queries come from a few graphs —
        // detect via the rate of repeated query signatures being high-ish.
        let queries = gen.take(60);
        let mut sigs = std::collections::HashSet::new();
        for q in &queries {
            sigs.insert(igq_graph::canon::GraphSignature::of(q));
        }
        assert!(
            sigs.len() < queries.len(),
            "zipf workload should repeat queries"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let store = DatasetKind::Aids.generate(10, 5);
        let a: Vec<Graph> =
            QueryGenerator::new(&store, Distribution::Uniform, Distribution::Uniform, 7).take(5);
        let b: Vec<Graph> =
            QueryGenerator::new(&store, Distribution::Uniform, Distribution::Uniform, 7).take(5);
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_size_generation() {
        let store = DatasetKind::Aids.generate(10, 5);
        let mut gen = QueryGenerator::new(&store, Distribution::Uniform, Distribution::Uniform, 7);
        for _ in 0..10 {
            let q = gen.next_query_of_size(8);
            assert!(q.edge_count() <= 8);
            assert!(q.edge_count() >= 1);
        }
    }
}
