//! # igq-features
//!
//! Graph feature extraction for the iGQ reproduction.
//!
//! Every filter-then-verify method reduces graphs to *features* and indexes
//! those (paper Section 2). This crate implements the three feature families
//! used by the paper's chosen methods, plus the index structures built over
//! them:
//!
//! * [`paths`] — exhaustive labeled simple-path enumeration with occurrence
//!   counts and optional endpoint locations (GGSX, Grapes, and iGQ's own
//!   query indexes);
//! * [`trees`] — subtree enumeration with AHU canonical strings (CT-Index);
//! * [`cycles`] — simple-cycle enumeration with rotation/reflection
//!   canonical strings (CT-Index);
//! * [`trie`] — a feature trie with per-graph posting lists (GGSX's index,
//!   Grapes' merged index, and iGQ `Isuper`'s Algorithm 1 structure);
//! * [`fingerprint`] — fixed-width bitmaps folding canonical feature strings
//!   (CT-Index's per-graph 4096-bit signatures);
//! * [`featureset`] — query-side multisets with the containment predicates
//!   iGQ's `Isub` filtering relies on;
//! * [`label_seq`] — canonical (direction-normalized) label sequences, the
//!   key type for path features.
//!
//! All enumerators are *budgeted* and report the deepest exhaustively
//! enumerated feature size, so downstream filters remain sound (no false
//! negatives) even on graphs too dense to enumerate fully.

pub mod cycles;
pub mod featureset;
pub mod fingerprint;
pub mod label_seq;
pub mod paths;
pub mod trees;
pub mod trie;

pub use cycles::{cycle_canonical, enumerate_cycles, CycleConfig, CycleFeatures};
pub use featureset::FeatureSet;
pub use fingerprint::Fingerprint;
pub use label_seq::LabelSeq;
pub use paths::{
    enumerate_paths, enumerate_paths_with_locations, thread_enumeration_count, PathConfig,
    PathFeatures,
};
pub use trees::{enumerate_trees, tree_canonical, TreeConfig, TreeFeatures};
pub use trie::{FeatureTrie, Posting};
