//! Exhaustive enumeration of simple-path features.
//!
//! GGSX and Grapes index *all* labeled simple paths up to a small maximum
//! length (4 edges in the paper's experiments); iGQ's own query indexes use
//! the same feature family. This module enumerates them with per-feature
//! occurrence counts and (optionally, for Grapes) endpoint locations.
//!
//! Counting convention (documented in DESIGN.md): a path *occurrence* is a
//! simple vertex path; a path and its reverse are the same occurrence. We
//! enumerate directed simple paths from every start vertex — each undirected
//! occurrence of length ≥ 1 is visited exactly twice — and halve the counts
//! at the end. Length-0 paths (single labeled vertices) are counted once per
//! vertex.
//!
//! Dense graphs can hold astronomically many paths, so enumeration takes a
//! *budget*. Enumeration proceeds level by level (iterative deepening): a
//! level either completes within budget and is committed, or is discarded
//! wholesale. The result's `complete_len` reports the deepest fully
//! enumerated length, letting filter code stay sound (no false negatives)
//! for graphs whose deep features were not exhaustively enumerated.

use crate::label_seq::LabelSeq;
use igq_graph::fxhash::FxHashMap;
use igq_graph::{Graph, LabelId, VertexId};
use std::cell::Cell;

thread_local! {
    static ENUMERATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`enumerate_paths`] calls performed by the current thread so
/// far. Tests use deltas of this counter to assert that hot paths extract a
/// query's features exactly once (the iGQ engine shares one extraction
/// between the base filter and both query-index probes).
pub fn thread_enumeration_count() -> u64 {
    ENUMERATIONS.with(|c| c.get())
}

/// Configuration for path enumeration.
#[derive(Debug, Clone, Copy)]
pub struct PathConfig {
    /// Maximum path length in edges (paper default: 4).
    pub max_len: usize,
    /// Include length-0 (single-vertex) features.
    pub include_vertices: bool,
    /// Budget on *directed* DFS edge visits per graph; `u64::MAX` = unlimited.
    pub budget: u64,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            max_len: 4,
            include_vertices: true,
            budget: 40_000_000,
        }
    }
}

impl PathConfig {
    /// Paper-default configuration with a custom max length.
    pub fn with_max_len(max_len: usize) -> Self {
        PathConfig {
            max_len,
            ..Default::default()
        }
    }
}

/// Path features of one graph.
#[derive(Debug, Clone, Default)]
pub struct PathFeatures {
    /// Canonical label sequence → occurrence count.
    pub counts: FxHashMap<LabelSeq, u32>,
    /// Canonical label sequence → sorted, deduplicated endpoint vertices
    /// (present only when requested; Grapes' "location information").
    pub locations: FxHashMap<LabelSeq, Vec<VertexId>>,
    /// Features of length ≤ `complete_len` are exhaustively counted.
    pub complete_len: usize,
}

impl PathFeatures {
    /// Number of distinct features.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total occurrences across features.
    pub fn total_occurrences(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Approximate heap footprint (for index-size accounting).
    pub fn heap_size_bytes(&self) -> u64 {
        let counts: u64 = self
            .counts
            .keys()
            .map(|k| k.heap_size_bytes() + std::mem::size_of::<u32>() as u64 + 16)
            .sum();
        let locs: u64 = self
            .locations
            .iter()
            .map(|(k, v)| k.heap_size_bytes() + (v.len() * 4) as u64 + 16)
            .sum();
        counts + locs
    }
}

/// One iterative-deepening level: enumerate directed simple paths of length
/// exactly `level`, recording counts/locations into level-local maps.
struct LevelRun<'a> {
    graph: &'a Graph,
    level: usize,
    want_locations: bool,
    budget: u64,
    visits: &'a mut u64,
    tripped: bool,
    directed: FxHashMap<LabelSeq, u32>,
    loc_pairs: FxHashMap<LabelSeq, Vec<VertexId>>,
    on_path: Vec<bool>,
    label_stack: Vec<LabelId>,
}

impl<'a> LevelRun<'a> {
    fn dfs(&mut self, start: VertexId, v: VertexId, depth: usize) {
        if self.tripped {
            return;
        }
        if depth == self.level {
            let seq = LabelSeq::canonical(&self.label_stack);
            if self.want_locations {
                let entry = self.loc_pairs.entry(seq.clone()).or_default();
                entry.push(start);
                entry.push(v);
            }
            *self.directed.entry(seq).or_insert(0) += 1;
            return;
        }
        for &w in self.graph.neighbors(v) {
            if self.on_path[w.index()] {
                continue;
            }
            if *self.visits >= self.budget {
                self.tripped = true;
                return;
            }
            *self.visits += 1;
            self.on_path[w.index()] = true;
            self.label_stack.push(self.graph.label(w));
            self.dfs(start, w, depth + 1);
            self.label_stack.pop();
            self.on_path[w.index()] = false;
        }
    }
}

/// Enumerates path features of `g` under `config`.
pub fn enumerate_paths(g: &Graph, config: &PathConfig) -> PathFeatures {
    enumerate_paths_impl(g, config, false)
}

/// Enumerates path features with endpoint locations (Grapes).
pub fn enumerate_paths_with_locations(g: &Graph, config: &PathConfig) -> PathFeatures {
    enumerate_paths_impl(g, config, true)
}

fn enumerate_paths_impl(g: &Graph, config: &PathConfig, want_locations: bool) -> PathFeatures {
    ENUMERATIONS.with(|c| c.set(c.get() + 1));
    let mut counts: FxHashMap<LabelSeq, u32> = FxHashMap::default();
    let mut locations: FxHashMap<LabelSeq, Vec<VertexId>> = FxHashMap::default();
    let mut complete_len = 0usize;
    let mut visits = 0u64;

    if config.include_vertices {
        for v in g.vertices() {
            let seq = LabelSeq::single(g.label(v));
            *counts.entry(seq.clone()).or_insert(0) += 1;
            if want_locations {
                locations.entry(seq).or_default().push(v);
            }
        }
    }

    for level in 1..=config.max_len {
        let mut run = LevelRun {
            graph: g,
            level,
            want_locations,
            budget: config.budget,
            visits: &mut visits,
            tripped: false,
            directed: FxHashMap::default(),
            loc_pairs: FxHashMap::default(),
            on_path: vec![false; g.vertex_count()],
            label_stack: Vec::with_capacity(level + 1),
        };
        for v in g.vertices() {
            run.on_path[v.index()] = true;
            run.label_stack.push(g.label(v));
            run.dfs(v, v, 0);
            run.label_stack.pop();
            run.on_path[v.index()] = false;
            if run.tripped {
                break;
            }
        }
        if run.tripped {
            // Discard the partial level: shorter levels stay exhaustive.
            break;
        }
        for (seq, directed) in run.directed {
            debug_assert!(directed % 2 == 0, "each undirected path is seen twice");
            counts.insert(seq, directed / 2);
        }
        for (seq, pairs) in run.loc_pairs {
            locations.entry(seq).or_default().extend(pairs);
        }
        complete_len = level;
    }

    for locs in locations.values_mut() {
        locs.sort_unstable();
        locs.dedup();
    }

    PathFeatures {
        counts,
        locations,
        complete_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    fn seq(raws: &[u32]) -> LabelSeq {
        let ls: Vec<LabelId> = raws.iter().map(|&r| LabelId::new(r)).collect();
        LabelSeq::canonical(&ls)
    }

    #[test]
    fn triangle_path_counts() {
        // Triangle, all labels 0. Length-1 paths: 3 edges. Length-2: each of
        // the 3 vertices is the middle of exactly one simple path → 3.
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let f = enumerate_paths(
            &g,
            &PathConfig {
                max_len: 2,
                include_vertices: true,
                budget: u64::MAX,
            },
        );
        assert_eq!(f.counts[&seq(&[0])], 3);
        assert_eq!(f.counts[&seq(&[0, 0])], 3);
        assert_eq!(f.counts[&seq(&[0, 0, 0])], 3);
        assert_eq!(f.complete_len, 2);
    }

    #[test]
    fn labeled_path_counts_respect_direction_normalization() {
        // Path 1-2-3: one length-2 occurrence; canonical seq is [1,2,3].
        let g = graph_from(&[1, 2, 3], &[(0, 1), (1, 2)]);
        let f = enumerate_paths(&g, &PathConfig::with_max_len(2));
        assert_eq!(f.counts[&seq(&[1, 2, 3])], 1);
        assert_eq!(f.counts[&seq(&[1, 2])], 1);
        assert_eq!(f.counts[&seq(&[2, 3])], 1);
        assert!(!f.counts.contains_key(&seq(&[1, 3])));
    }

    #[test]
    fn star_counts() {
        // Star center 0 (label 9), leaves labeled 1,1,1.
        let g = graph_from(&[9, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let f = enumerate_paths(&g, &PathConfig::with_max_len(2));
        assert_eq!(f.counts[&seq(&[1, 9])], 3);
        // Length-2 paths leaf-center-leaf: C(3,2) = 3 occurrences.
        assert_eq!(f.counts[&seq(&[1, 9, 1])], 3);
    }

    #[test]
    fn max_len_zero_yields_only_vertices() {
        let g = graph_from(&[0, 1], &[(0, 1)]);
        let f = enumerate_paths(
            &g,
            &PathConfig {
                max_len: 0,
                include_vertices: true,
                budget: u64::MAX,
            },
        );
        assert_eq!(f.distinct(), 2);
        assert_eq!(f.total_occurrences(), 2);
        assert_eq!(f.complete_len, 0);
    }

    #[test]
    fn locations_are_path_endpoints() {
        let g = graph_from(&[1, 2, 3], &[(0, 1), (1, 2)]);
        let f = enumerate_paths_with_locations(&g, &PathConfig::with_max_len(2));
        let locs = &f.locations[&seq(&[1, 2, 3])];
        assert_eq!(locs, &vec![VertexId::new(0), VertexId::new(2)]);
        let locs1 = &f.locations[&seq(&[1, 2])];
        assert_eq!(locs1, &vec![VertexId::new(0), VertexId::new(1)]);
    }

    #[test]
    fn budget_trip_keeps_committed_levels_exhaustive() {
        // Dense-ish graph with tiny budget.
        let g = graph_from(
            &[0; 6],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 1),
            ],
        );
        let f = enumerate_paths(
            &g,
            &PathConfig {
                max_len: 4,
                include_vertices: true,
                budget: 30,
            },
        );
        assert!(f.complete_len < 4);
        let full = enumerate_paths(
            &g,
            &PathConfig {
                max_len: 4,
                include_vertices: true,
                budget: u64::MAX,
            },
        );
        // Every committed level must match the unbudgeted run exactly.
        for (s, &c) in &full.counts {
            if s.edge_len() <= f.complete_len {
                assert_eq!(f.counts.get(s), Some(&c), "mismatch at {s:?}");
            }
        }
        // And no features beyond the committed depth leak out.
        assert!(f.counts.keys().all(|s| s.edge_len() <= f.complete_len));
    }

    #[test]
    fn counts_match_on_disconnected_graph() {
        let g = graph_from(&[1, 1, 2, 2], &[(0, 1), (2, 3)]);
        let f = enumerate_paths(&g, &PathConfig::with_max_len(3));
        assert_eq!(f.counts[&seq(&[1, 1])], 1);
        assert_eq!(f.counts[&seq(&[2, 2])], 1);
        assert_eq!(f.counts.len(), 4); // [1],[2],[1,1],[2,2]
    }

    #[test]
    fn no_vertex_features_when_disabled() {
        let g = graph_from(&[0, 1], &[(0, 1)]);
        let f = enumerate_paths(
            &g,
            &PathConfig {
                max_len: 1,
                include_vertices: false,
                budget: u64::MAX,
            },
        );
        assert_eq!(f.distinct(), 1);
        assert_eq!(f.counts[&seq(&[0, 1])], 1);
    }

    #[test]
    fn long_path_enumeration_on_cycle() {
        // C5, labels 0..4: exactly 5 simple paths of each length 1..=4.
        let g = graph_from(&[0, 1, 2, 3, 4], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let f = enumerate_paths(&g, &PathConfig::with_max_len(4));
        for len in 1..=4usize {
            let total: u32 = f
                .counts
                .iter()
                .filter(|(s, _)| s.edge_len() == len)
                .map(|(_, &c)| c)
                .sum();
            assert_eq!(total, 5, "length {len}");
        }
    }

    #[test]
    fn heap_size_accounts_something() {
        let g = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let f = enumerate_paths_with_locations(&g, &PathConfig::default());
        assert!(f.heap_size_bytes() > 0);
    }
}
