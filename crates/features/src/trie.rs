//! A feature trie with per-graph posting lists.
//!
//! This single structure backs three systems from the paper:
//! GraphGrepSX's suffix-tree-of-paths dataset index, Grapes' per-graph path
//! tries (post-merge), and iGQ's `Isuper` supergraph index (Algorithm 1
//! stores `{gi, o}` pairs per feature — exactly a posting list).
//!
//! Nodes are arena-allocated (`Vec<TrieNode>`); children are label→node
//! maps. Posting lists are kept sorted by graph id so filtering can merge
//! them with two-pointer intersections.

use crate::label_seq::LabelSeq;
use igq_graph::fxhash::FxHashMap;
use igq_graph::{GraphId, LabelId};

/// One `(graph, occurrence-count)` posting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    pub graph: GraphId,
    pub count: u32,
}

#[derive(Debug, Default, Clone)]
struct TrieNode {
    children: FxHashMap<LabelId, u32>,
    postings: Vec<Posting>,
}

/// Trie over canonical label sequences with per-graph counts.
#[derive(Debug, Clone)]
pub struct FeatureTrie {
    nodes: Vec<TrieNode>,
    features: u64,
    postings: u64,
}

impl Default for FeatureTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureTrie {
    /// An empty trie (single root node).
    pub fn new() -> FeatureTrie {
        FeatureTrie { nodes: vec![TrieNode::default()], features: 0, postings: 0 }
    }

    fn walk_or_create(&mut self, seq: &LabelSeq) -> u32 {
        let mut node = 0u32;
        for &label in seq.labels() {
            let next_free = self.nodes.len() as u32;
            let entry = self.nodes[node as usize].children.entry(label).or_insert(next_free);
            let child = *entry;
            if child == next_free {
                self.nodes.push(TrieNode::default());
            }
            node = child;
        }
        node
    }

    fn walk(&self, seq: &LabelSeq) -> Option<u32> {
        let mut node = 0u32;
        for &label in seq.labels() {
            node = *self.nodes[node as usize].children.get(&label)?;
        }
        Some(node)
    }

    /// Records that `graph` contains `count` occurrences of `seq`.
    ///
    /// Postings for a given feature must be inserted in nondecreasing graph
    /// order (the natural order when indexing a store); repeated inserts for
    /// the same graph accumulate.
    pub fn insert(&mut self, seq: &LabelSeq, graph: GraphId, count: u32) {
        let node = self.walk_or_create(seq);
        let n = &mut self.nodes[node as usize];
        if n.postings.is_empty() {
            self.features += 1;
        }
        match n.postings.last_mut() {
            Some(last) if last.graph == graph => last.count += count,
            Some(last) => {
                debug_assert!(last.graph < graph, "insert graphs in nondecreasing id order");
                n.postings.push(Posting { graph, count });
                self.postings += 1;
            }
            None => {
                n.postings.push(Posting { graph, count });
                self.postings += 1;
            }
        }
    }

    /// The posting list of `seq` (empty slice when the feature is absent).
    pub fn get(&self, seq: &LabelSeq) -> &[Posting] {
        match self.walk(seq) {
            Some(node) => &self.nodes[node as usize].postings,
            None => &[],
        }
    }

    /// True when the feature occurs in at least one graph.
    pub fn contains(&self, seq: &LabelSeq) -> bool {
        !self.get(seq).is_empty()
    }

    /// The occurrence count of `seq` in `graph` (0 when absent).
    pub fn count_in(&self, seq: &LabelSeq, graph: GraphId) -> u32 {
        let postings = self.get(seq);
        postings
            .binary_search_by_key(&graph, |p| p.graph)
            .map(|i| postings[i].count)
            .unwrap_or(0)
    }

    /// Number of distinct features stored.
    pub fn feature_count(&self) -> u64 {
        self.features
    }

    /// Number of postings (graph × feature pairs) stored.
    pub fn posting_count(&self) -> u64 {
        self.postings
    }

    /// Number of trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap footprint for index-size accounting (Fig. 18).
    pub fn heap_size_bytes(&self) -> u64 {
        let mut bytes = (self.nodes.len() * std::mem::size_of::<TrieNode>()) as u64;
        for n in &self.nodes {
            bytes += (n.children.len() * (std::mem::size_of::<LabelId>() + 4 + 8)) as u64;
            bytes += (n.postings.len() * std::mem::size_of::<Posting>()) as u64;
        }
        bytes
    }

    /// Visits every `(feature, postings)` pair. Sequences are rebuilt during
    /// the walk, so this is for maintenance/debug paths, not hot loops.
    pub fn for_each_feature<F: FnMut(&LabelSeq, &[Posting])>(&self, mut f: F) {
        let mut stack: Vec<LabelId> = Vec::new();
        self.visit(0, &mut stack, &mut f);
    }

    fn visit<F: FnMut(&LabelSeq, &[Posting])>(&self, node: u32, stack: &mut Vec<LabelId>, f: &mut F) {
        let n = &self.nodes[node as usize];
        if !n.postings.is_empty() {
            // Stored sequences are canonical already; rebuilding from the
            // root preserves them.
            let seq = LabelSeq::canonical(stack);
            f(&seq, &n.postings);
        }
        for (&label, &child) in &n.children {
            stack.push(label);
            self.visit(child, stack, f);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(raws: &[u32]) -> LabelSeq {
        let ls: Vec<LabelId> = raws.iter().map(|&r| LabelId::new(r)).collect();
        LabelSeq::canonical(&ls)
    }

    fn g(i: u32) -> GraphId {
        GraphId::new(i)
    }

    #[test]
    fn insert_and_get() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[1, 2]), g(0), 3);
        t.insert(&seq(&[1, 2]), g(2), 1);
        assert_eq!(t.get(&seq(&[1, 2])), &[Posting { graph: g(0), count: 3 }, Posting { graph: g(2), count: 1 }]);
        assert_eq!(t.count_in(&seq(&[1, 2]), g(0)), 3);
        assert_eq!(t.count_in(&seq(&[1, 2]), g(1)), 0);
        assert!(t.get(&seq(&[9])).is_empty());
    }

    #[test]
    fn repeated_inserts_accumulate() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[4]), g(1), 2);
        t.insert(&seq(&[4]), g(1), 5);
        assert_eq!(t.count_in(&seq(&[4]), g(1)), 7);
        assert_eq!(t.posting_count(), 1);
    }

    #[test]
    fn shares_prefixes() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[1, 2, 3]), g(0), 1);
        t.insert(&seq(&[1, 2, 4]), g(0), 1);
        // root + 1 + 2 + {3,4} = 5 nodes
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.feature_count(), 2);
    }

    #[test]
    fn canonical_sequences_collide_correctly() {
        let mut t = FeatureTrie::new();
        // [3,2,1] canonicalizes to [1,2,3]; both writes hit one feature.
        t.insert(&seq(&[1, 2, 3]), g(0), 1);
        t.insert(&seq(&[3, 2, 1]), g(0), 1);
        assert_eq!(t.count_in(&seq(&[1, 2, 3]), g(0)), 2);
        assert_eq!(t.feature_count(), 1);
    }

    #[test]
    fn for_each_feature_visits_everything() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[1]), g(0), 1);
        t.insert(&seq(&[1, 2]), g(1), 2);
        t.insert(&seq(&[5]), g(2), 1);
        let mut seen = Vec::new();
        t.for_each_feature(|s, p| seen.push((s.clone(), p.len())));
        seen.sort_by_key(|(s, _)| s.clone());
        assert_eq!(seen.len(), 3);
        assert!(seen.iter().all(|(_, l)| *l == 1));
    }

    #[test]
    fn heap_size_grows_with_content() {
        let mut t = FeatureTrie::new();
        let empty = t.heap_size_bytes();
        for i in 0..50 {
            t.insert(&seq(&[i, i + 1, i + 2]), g(0), 1);
        }
        assert!(t.heap_size_bytes() > empty);
    }

    #[test]
    fn empty_trie() {
        let t = FeatureTrie::new();
        assert_eq!(t.feature_count(), 0);
        assert_eq!(t.posting_count(), 0);
        assert!(!t.contains(&seq(&[1])));
    }
}
