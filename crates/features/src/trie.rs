//! A feature trie with per-graph posting lists.
//!
//! This single structure backs three systems from the paper:
//! GraphGrepSX's suffix-tree-of-paths dataset index, Grapes' per-graph path
//! tries (post-merge), and iGQ's `Isub`/`Isuper` query indexes (Algorithm 1
//! stores `{gi, o}` pairs per feature — exactly a posting list).
//!
//! Nodes are arena-allocated (`Vec<TrieNode>`); children are label→node
//! maps. Posting lists are kept sorted by graph id so filtering can merge
//! them with two-pointer intersections.
//!
//! Postings are **mutable**: ids may be inserted in any order (the query
//! indexes key postings by reusable cache *slots*, not by monotonically
//! growing dataset ids), and [`FeatureTrie::remove`] deletes a posting by
//! tombstoning it in place (`count = 0`). Tombstones keep removal O(log
//! |postings|) without shifting sibling entries; a node whose list becomes
//! mostly tombstones is compacted on the spot, and [`FeatureTrie::compact`]
//! sweeps the whole trie. Readers must treat `count == 0` postings as
//! absent — every counting helper here already does.

use crate::label_seq::LabelSeq;
use igq_graph::fxhash::FxHashMap;
use igq_graph::{GraphId, LabelId};

/// One `(graph, occurrence-count)` posting. `count == 0` is a tombstone:
/// the posting was removed and awaits compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    pub graph: GraphId,
    pub count: u32,
}

#[derive(Debug, Default, Clone)]
struct TrieNode {
    children: FxHashMap<LabelId, u32>,
    postings: Vec<Posting>,
    /// Live (non-tombstone) postings in `postings`.
    live: u32,
}

impl TrieNode {
    /// Drops tombstones, preserving order of the live postings.
    fn compact(&mut self) -> u64 {
        let before = self.postings.len();
        self.postings.retain(|p| p.count > 0);
        debug_assert_eq!(self.postings.len(), self.live as usize);
        (before - self.postings.len()) as u64
    }
}

/// Trie over canonical label sequences with per-graph counts.
#[derive(Debug, Clone)]
pub struct FeatureTrie {
    nodes: Vec<TrieNode>,
    features: u64,
    postings: u64,
    tombstones: u64,
}

impl Default for FeatureTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureTrie {
    /// An empty trie (single root node).
    pub fn new() -> FeatureTrie {
        FeatureTrie {
            nodes: vec![TrieNode::default()],
            features: 0,
            postings: 0,
            tombstones: 0,
        }
    }

    fn walk_or_create(&mut self, seq: &LabelSeq) -> u32 {
        let mut node = 0u32;
        for &label in seq.labels() {
            let next_free = self.nodes.len() as u32;
            let entry = self.nodes[node as usize]
                .children
                .entry(label)
                .or_insert(next_free);
            let child = *entry;
            if child == next_free {
                self.nodes.push(TrieNode::default());
            }
            node = child;
        }
        node
    }

    fn walk(&self, seq: &LabelSeq) -> Option<u32> {
        let mut node = 0u32;
        for &label in seq.labels() {
            node = *self.nodes[node as usize].children.get(&label)?;
        }
        Some(node)
    }

    /// Records that `graph` contains `count` occurrences of `seq`.
    ///
    /// Ids may arrive in any order (appends stay O(1); out-of-order inserts
    /// pay a binary search plus shift). Repeated inserts for the same graph
    /// accumulate; inserting over a tombstone revives it in place.
    pub fn insert(&mut self, seq: &LabelSeq, graph: GraphId, count: u32) {
        debug_assert!(count > 0, "a zero-count insert would create a tombstone");
        let node = self.walk_or_create(seq);
        let n = &mut self.nodes[node as usize];
        let was_dead = n.live == 0;
        match n.postings.last_mut() {
            Some(last) if last.graph == graph => {
                if last.count == 0 {
                    n.live += 1;
                    self.postings += 1;
                    self.tombstones -= 1;
                }
                last.count += count;
            }
            Some(last) if last.graph < graph => {
                n.postings.push(Posting { graph, count });
                n.live += 1;
                self.postings += 1;
            }
            None => {
                n.postings.push(Posting { graph, count });
                n.live += 1;
                self.postings += 1;
            }
            Some(_) => match n.postings.binary_search_by_key(&graph, |p| p.graph) {
                Ok(i) => {
                    let p = &mut n.postings[i];
                    if p.count == 0 {
                        n.live += 1;
                        self.postings += 1;
                        self.tombstones -= 1;
                    }
                    p.count += count;
                }
                Err(i) => {
                    n.postings.insert(i, Posting { graph, count });
                    n.live += 1;
                    self.postings += 1;
                }
            },
        }
        if was_dead && n.live > 0 {
            self.features += 1;
        }
    }

    /// Removes the posting of `graph` under `seq`, returning `true` when a
    /// live posting existed. The entry is tombstoned in place; a node whose
    /// list becomes mostly tombstones is compacted immediately.
    pub fn remove(&mut self, seq: &LabelSeq, graph: GraphId) -> bool {
        let Some(node) = self.walk(seq) else {
            return false;
        };
        let n = &mut self.nodes[node as usize];
        let Ok(i) = n.postings.binary_search_by_key(&graph, |p| p.graph) else {
            return false;
        };
        if n.postings[i].count == 0 {
            return false;
        }
        n.postings[i].count = 0;
        n.live -= 1;
        self.postings -= 1;
        self.tombstones += 1;
        if n.live == 0 {
            self.features -= 1;
        }
        // Local compaction: once at least 8 entries and over half dead.
        if n.postings.len() >= 8 && (n.live as usize) * 2 < n.postings.len() {
            self.tombstones -= n.compact();
        }
        true
    }

    /// Sweeps every node's tombstones (e.g. before a long read-only phase).
    pub fn compact(&mut self) {
        for node in &mut self.nodes {
            self.tombstones -= node.compact();
        }
        debug_assert_eq!(self.tombstones, 0);
    }

    /// Number of tombstoned postings awaiting compaction.
    pub fn tombstone_count(&self) -> u64 {
        self.tombstones
    }

    /// The posting list of `seq` (empty slice when the feature is absent).
    /// May contain tombstones (`count == 0`); readers that treat postings
    /// as membership must skip them.
    pub fn get(&self, seq: &LabelSeq) -> &[Posting] {
        match self.walk(seq) {
            Some(node) => &self.nodes[node as usize].postings,
            None => &[],
        }
    }

    /// True when the feature occurs in at least one graph.
    pub fn contains(&self, seq: &LabelSeq) -> bool {
        self.walk(seq)
            .is_some_and(|node| self.nodes[node as usize].live > 0)
    }

    /// The occurrence count of `seq` in `graph` (0 when absent).
    pub fn count_in(&self, seq: &LabelSeq, graph: GraphId) -> u32 {
        let postings = self.get(seq);
        postings
            .binary_search_by_key(&graph, |p| p.graph)
            .map(|i| postings[i].count)
            .unwrap_or(0)
    }

    /// Number of distinct features stored.
    pub fn feature_count(&self) -> u64 {
        self.features
    }

    /// Number of live postings (graph × feature pairs) stored.
    pub fn posting_count(&self) -> u64 {
        self.postings
    }

    /// Number of trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap footprint for index-size accounting (Fig. 18).
    ///
    /// Counts *allocated* capacity, not just occupied length, and includes
    /// the hash maps' load-factor slack: a SwissTable-style map allocates
    /// `ceil(cap · 8/7)` buckets of one `(key, value)` pair plus one
    /// control byte each. Sizing by `len()` (as this method originally did)
    /// undercounted the trie by the growth slack of every `Vec` and map.
    pub fn heap_size_bytes(&self) -> u64 {
        let mut bytes = (self.nodes.capacity() * std::mem::size_of::<TrieNode>()) as u64;
        let child_entry = (std::mem::size_of::<LabelId>() + std::mem::size_of::<u32>() + 1) as u64;
        for n in &self.nodes {
            let buckets = (n.children.capacity() as u64) * 8 / 7;
            bytes += buckets * child_entry;
            bytes += (n.postings.capacity() * std::mem::size_of::<Posting>()) as u64;
        }
        bytes
    }

    /// Visits every `(feature, postings)` pair. Sequences are rebuilt during
    /// the walk, so this is for maintenance/debug paths, not hot loops.
    pub fn for_each_feature<F: FnMut(&LabelSeq, &[Posting])>(&self, mut f: F) {
        let mut stack: Vec<LabelId> = Vec::new();
        self.visit(0, &mut stack, &mut f);
    }

    fn visit<F: FnMut(&LabelSeq, &[Posting])>(
        &self,
        node: u32,
        stack: &mut Vec<LabelId>,
        f: &mut F,
    ) {
        let n = &self.nodes[node as usize];
        if n.live > 0 {
            // Stored sequences are canonical already; rebuilding from the
            // root preserves them. The slice may include tombstones.
            let seq = LabelSeq::canonical(stack);
            f(&seq, &n.postings);
        }
        for (&label, &child) in &n.children {
            stack.push(label);
            self.visit(child, stack, f);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(raws: &[u32]) -> LabelSeq {
        let ls: Vec<LabelId> = raws.iter().map(|&r| LabelId::new(r)).collect();
        LabelSeq::canonical(&ls)
    }

    fn g(i: u32) -> GraphId {
        GraphId::new(i)
    }

    #[test]
    fn insert_and_get() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[1, 2]), g(0), 3);
        t.insert(&seq(&[1, 2]), g(2), 1);
        assert_eq!(
            t.get(&seq(&[1, 2])),
            &[
                Posting {
                    graph: g(0),
                    count: 3
                },
                Posting {
                    graph: g(2),
                    count: 1
                }
            ]
        );
        assert_eq!(t.count_in(&seq(&[1, 2]), g(0)), 3);
        assert_eq!(t.count_in(&seq(&[1, 2]), g(1)), 0);
        assert!(t.get(&seq(&[9])).is_empty());
    }

    #[test]
    fn repeated_inserts_accumulate() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[4]), g(1), 2);
        t.insert(&seq(&[4]), g(1), 5);
        assert_eq!(t.count_in(&seq(&[4]), g(1)), 7);
        assert_eq!(t.posting_count(), 1);
    }

    #[test]
    fn shares_prefixes() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[1, 2, 3]), g(0), 1);
        t.insert(&seq(&[1, 2, 4]), g(0), 1);
        // root + 1 + 2 + {3,4} = 5 nodes
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.feature_count(), 2);
    }

    #[test]
    fn canonical_sequences_collide_correctly() {
        let mut t = FeatureTrie::new();
        // [3,2,1] canonicalizes to [1,2,3]; both writes hit one feature.
        t.insert(&seq(&[1, 2, 3]), g(0), 1);
        t.insert(&seq(&[3, 2, 1]), g(0), 1);
        assert_eq!(t.count_in(&seq(&[1, 2, 3]), g(0)), 2);
        assert_eq!(t.feature_count(), 1);
    }

    #[test]
    fn for_each_feature_visits_everything() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[1]), g(0), 1);
        t.insert(&seq(&[1, 2]), g(1), 2);
        t.insert(&seq(&[5]), g(2), 1);
        let mut seen = Vec::new();
        t.for_each_feature(|s, p| seen.push((s.clone(), p.len())));
        seen.sort_by_key(|(s, _)| s.clone());
        assert_eq!(seen.len(), 3);
        assert!(seen.iter().all(|(_, l)| *l == 1));
    }

    #[test]
    fn heap_size_grows_with_content() {
        let mut t = FeatureTrie::new();
        let empty = t.heap_size_bytes();
        for i in 0..50 {
            t.insert(&seq(&[i, i + 1, i + 2]), g(0), 1);
        }
        assert!(t.heap_size_bytes() > empty);
    }

    #[test]
    fn empty_trie() {
        let t = FeatureTrie::new();
        assert_eq!(t.feature_count(), 0);
        assert_eq!(t.posting_count(), 0);
        assert!(!t.contains(&seq(&[1])));
    }

    #[test]
    fn out_of_order_inserts_stay_sorted() {
        let mut t = FeatureTrie::new();
        for id in [5u32, 1, 3, 0, 4, 2] {
            t.insert(&seq(&[7, 8]), g(id), id + 1);
        }
        let graphs: Vec<u32> = t.get(&seq(&[7, 8])).iter().map(|p| p.graph.raw()).collect();
        assert_eq!(graphs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.count_in(&seq(&[7, 8]), g(3)), 4);
        assert_eq!(t.posting_count(), 6);
    }

    #[test]
    fn remove_tombstones_and_counters() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[1]), g(0), 2);
        t.insert(&seq(&[1]), g(1), 3);
        t.insert(&seq(&[2]), g(0), 1);
        assert!(t.remove(&seq(&[1]), g(0)));
        assert!(!t.remove(&seq(&[1]), g(0)), "double remove is a no-op");
        assert!(!t.remove(&seq(&[9]), g(0)), "absent feature");
        assert_eq!(t.posting_count(), 2);
        assert_eq!(t.feature_count(), 2);
        assert_eq!(t.tombstone_count(), 1);
        assert_eq!(t.count_in(&seq(&[1]), g(0)), 0, "tombstone reads as absent");
        assert_eq!(t.count_in(&seq(&[1]), g(1)), 3);
        // Removing the last live posting of a feature drops the feature.
        assert!(t.remove(&seq(&[2]), g(0)));
        assert_eq!(t.feature_count(), 1);
        assert!(!t.contains(&seq(&[2])));
    }

    #[test]
    fn insert_revives_tombstone_in_place() {
        let mut t = FeatureTrie::new();
        t.insert(&seq(&[4, 4]), g(2), 5);
        t.insert(&seq(&[4, 4]), g(7), 1);
        t.remove(&seq(&[4, 4]), g(2));
        t.insert(&seq(&[4, 4]), g(2), 9);
        assert_eq!(t.count_in(&seq(&[4, 4]), g(2)), 9);
        assert_eq!(t.tombstone_count(), 0);
        assert_eq!(t.posting_count(), 2);
        assert_eq!(
            t.get(&seq(&[4, 4])).len(),
            2,
            "revived in place, no duplicate"
        );
    }

    #[test]
    fn heavy_removal_triggers_local_compaction() {
        let mut t = FeatureTrie::new();
        for id in 0..16u32 {
            t.insert(&seq(&[3]), g(id), 1);
        }
        for id in 0..9u32 {
            t.remove(&seq(&[3]), g(id));
        }
        assert_eq!(t.posting_count(), 7);
        assert_eq!(t.tombstone_count(), 0, "node compacted once mostly dead");
        assert_eq!(t.get(&seq(&[3])).len(), 7);
    }

    #[test]
    fn explicit_compact_sweeps_all_tombstones() {
        let mut t = FeatureTrie::new();
        for id in 0..4u32 {
            t.insert(&seq(&[6, 6, 6]), g(id), 1);
        }
        t.remove(&seq(&[6, 6, 6]), g(1));
        assert_eq!(t.tombstone_count(), 1);
        t.compact();
        assert_eq!(t.tombstone_count(), 0);
        let graphs: Vec<u32> = t
            .get(&seq(&[6, 6, 6]))
            .iter()
            .map(|p| p.graph.raw())
            .collect();
        assert_eq!(graphs, vec![0, 2, 3]);
    }

    #[test]
    fn heap_size_counts_capacity_not_len() {
        let mut t = FeatureTrie::new();
        for i in 0..50 {
            t.insert(&seq(&[i, i + 1, i + 2]), g(0), 1);
        }
        let mut cap_bytes = 0u64;
        for i in 0..50 {
            cap_bytes += t.get(&seq(&[i, i + 1, i + 2])).len() as u64;
        }
        assert!(cap_bytes > 0);
        // The capacity-aware estimate must be at least the len-based one.
        let len_based: u64 = (t.node_count() * std::mem::size_of::<TrieNode>()) as u64;
        assert!(t.heap_size_bytes() >= len_based);
    }
}
