//! Query-side feature multisets and containment predicates.
//!
//! Both directions of iGQ need the same primitive: compare the path-feature
//! multiset of a query against that of another graph.
//!
//! * `Isub` candidate condition (`g ⊆ G?`): every feature of `g` must occur
//!   in `G` at least as often — [`FeatureSet::count_subset_of`];
//! * `Isuper` / Algorithm 2 condition (`gi ⊆ g?`): every feature of `gi`
//!   must occur in `g` at least as often (the trie-side check `o ≤ O[f,g]`
//!   plus the `count(gi) == NF[gi]` completeness test).

use crate::label_seq::LabelSeq;
use crate::paths::{enumerate_paths, PathConfig, PathFeatures};
use igq_graph::fxhash::FxHashMap;
use igq_graph::Graph;

/// A path-feature multiset of one graph.
#[derive(Debug, Clone, Default)]
pub struct FeatureSet {
    counts: FxHashMap<LabelSeq, u32>,
    complete_len: usize,
}

impl FeatureSet {
    /// Extracts the feature set of `g` under `config`.
    pub fn of(g: &Graph, config: &PathConfig) -> FeatureSet {
        FeatureSet::from_paths(enumerate_paths(g, config))
    }

    /// Wraps already-enumerated path features.
    pub fn from_paths(paths: PathFeatures) -> FeatureSet {
        FeatureSet {
            counts: paths.counts,
            complete_len: paths.complete_len,
        }
    }

    /// Occurrences of `seq` (0 when absent).
    pub fn count(&self, seq: &LabelSeq) -> u32 {
        self.counts.get(seq).copied().unwrap_or(0)
    }

    /// Number of distinct features (`NF[g]` in Algorithm 1).
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Deepest exhaustively enumerated feature length.
    pub fn complete_len(&self) -> usize {
        self.complete_len
    }

    /// Iterates `(feature, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&LabelSeq, u32)> {
        self.counts.iter().map(|(s, &c)| (s, c))
    }

    /// True when every feature of `self` occurs in `other` with at least
    /// the same multiplicity — the necessary condition for `self`'s graph
    /// to be a subgraph of `other`'s graph.
    ///
    /// Comparison is restricted to lengths both sides enumerated
    /// exhaustively, so truncated enumerations weaken filtering instead of
    /// corrupting it.
    pub fn count_subset_of(&self, other: &FeatureSet) -> bool {
        let limit = self.complete_len.min(other.complete_len);
        self.counts
            .iter()
            .filter(|(seq, _)| seq.edge_len() <= limit)
            .all(|(seq, &c)| other.count(seq) >= c)
    }

    /// Approximate heap footprint.
    pub fn heap_size_bytes(&self) -> u64 {
        self.counts
            .keys()
            .map(|k| k.heap_size_bytes() + 4 + 16)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    fn fs(labels: &[u32], edges: &[(u32, u32)]) -> FeatureSet {
        FeatureSet::of(&graph_from(labels, edges), &PathConfig::default())
    }

    #[test]
    fn subgraph_implies_count_subset() {
        let path = fs(&[0, 1], &[(0, 1)]);
        let tri = fs(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        assert!(path.count_subset_of(&tri));
        assert!(!tri.count_subset_of(&path));
    }

    #[test]
    fn multiplicity_matters() {
        // Two disjoint 0-1 edges vs a single 0-1 edge.
        let two = fs(&[0, 1, 0, 1], &[(0, 1), (2, 3)]);
        let one = fs(&[0, 1], &[(0, 1)]);
        assert!(one.count_subset_of(&two));
        assert!(!two.count_subset_of(&one));
    }

    #[test]
    fn identical_graphs_are_mutual_subsets() {
        let a = fs(&[3, 4, 3], &[(0, 1), (1, 2)]);
        let b = fs(&[3, 4, 3], &[(0, 1), (1, 2)]);
        assert!(a.count_subset_of(&b));
        assert!(b.count_subset_of(&a));
    }

    #[test]
    fn truncation_only_weakens() {
        // A set whose enumeration stopped at length 1 must still accept a
        // superset relationship decided at the common depth.
        let g = graph_from(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let full = FeatureSet::of(&g, &PathConfig::default());
        let shallow = FeatureSet::of(&g, &PathConfig::with_max_len(1));
        assert!(shallow.count_subset_of(&full));
        assert!(full.count_subset_of(&shallow)); // long features ignored
    }

    #[test]
    fn count_and_distinct() {
        let f = fs(&[0, 0], &[(0, 1)]);
        let single = LabelSeq::single(igq_graph::LabelId::new(0));
        assert_eq!(f.count(&single), 2);
        assert!(f.distinct() >= 2);
        assert!(f.heap_size_bytes() > 0);
    }
}
