//! Fixed-width bitmap fingerprints (CT-Index).
//!
//! CT-Index hashes the canonical strings of a graph's tree and cycle
//! features into a per-graph bitmap (4096 bits in the paper's default
//! configuration, 8192 in the "next larger" configuration of Figure 18).
//! Subgraph filtering is then a superset test: if `q ⊆ G` every feature of
//! `q` appears in `G`, so `bits(q) & bits(G) == bits(q)` — bitmap
//! containment never produces false negatives, only (hash-collision
//! weakened) false positives.
//!
//! Each feature sets `PROBES` positions derived from an Fx hash of its
//! canonical bytes, Bloom-filter style.

use igq_graph::fxhash::hash_bytes;

/// Number of bit positions set per feature.
const PROBES: u32 = 2;

/// A fixed-width bitmap fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    bits: Box<[u64]>,
    width: u32,
}

impl Fingerprint {
    /// An all-zero fingerprint of `width` bits (must be a power of two).
    pub fn new(width: u32) -> Fingerprint {
        assert!(
            width.is_power_of_two() && width >= 64,
            "width must be a power of two >= 64"
        );
        Fingerprint {
            bits: vec![0u64; (width / 64) as usize].into_boxed_slice(),
            width,
        }
    }

    /// Width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Folds a feature (by its canonical byte string) into the bitmap.
    pub fn add_feature(&mut self, canonical: &[u8]) {
        let h = hash_bytes(canonical);
        let mask = (self.width - 1) as u64;
        for probe in 0..PROBES {
            // Derive independent positions by re-mixing with the probe index.
            let pos = (igq_graph::fxhash::hash_u64(h ^ (0x9e37_79b9 * probe as u64 + probe as u64))
                & mask) as usize;
            self.bits[pos / 64] |= 1 << (pos % 64);
        }
    }

    /// True when every set bit of `self` is also set in `other`
    /// (the CT-Index candidate condition with `self` = query fingerprint).
    pub fn is_subset_of(&self, other: &Fingerprint) -> bool {
        debug_assert_eq!(self.width, other.width);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(&q, &g)| q & !g == 0)
    }

    /// Number of set bits.
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Bitwise OR-in of another fingerprint (same width).
    pub fn union_with(&mut self, other: &Fingerprint) {
        debug_assert_eq!(self.width, other.width);
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// Heap footprint in bytes.
    pub fn heap_size_bytes(&self) -> u64 {
        (self.bits.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_subset_of_everything() {
        let e = Fingerprint::new(256);
        let mut f = Fingerprint::new(256);
        f.add_feature(b"x");
        assert!(e.is_subset_of(&f));
        assert!(e.is_subset_of(&e));
        assert!(!f.is_subset_of(&e));
    }

    #[test]
    fn added_features_make_subsets() {
        let mut q = Fingerprint::new(4096);
        let mut g = Fingerprint::new(4096);
        for feat in [b"a".as_slice(), b"bb", b"ccc"] {
            g.add_feature(feat);
        }
        q.add_feature(b"bb");
        assert!(q.is_subset_of(&g));
    }

    #[test]
    fn missing_feature_usually_breaks_subset() {
        let mut q = Fingerprint::new(4096);
        let mut g = Fingerprint::new(4096);
        g.add_feature(b"present");
        q.add_feature(b"absent-from-g");
        // With 4096 bits and 2 probes the collision probability is tiny.
        assert!(!q.is_subset_of(&g));
    }

    #[test]
    fn popcount_counts_probes() {
        let mut f = Fingerprint::new(4096);
        assert_eq!(f.popcount(), 0);
        f.add_feature(b"one");
        assert!(f.popcount() <= 2 && f.popcount() >= 1);
    }

    #[test]
    fn union() {
        let mut a = Fingerprint::new(128);
        let mut b = Fingerprint::new(128);
        a.add_feature(b"x");
        b.add_feature(b"y");
        let mut u = a.clone();
        u.union_with(&b);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
    }

    #[test]
    fn width_accounting() {
        let f = Fingerprint::new(8192);
        assert_eq!(f.width(), 8192);
        assert_eq!(f.heap_size_bytes(), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Fingerprint::new(100);
    }

    #[test]
    fn deterministic() {
        let mut a = Fingerprint::new(512);
        let mut b = Fingerprint::new(512);
        a.add_feature(b"feature");
        b.add_feature(b"feature");
        assert_eq!(a, b);
    }
}
