//! Subtree feature enumeration with AHU canonical forms (CT-Index).
//!
//! CT-Index (Klein, Kriege, Mutzel, ICDE 2011) fingerprints a graph by the
//! canonical string forms of its subtrees up to a maximum size (6 edges in
//! the paper's experiments). Trees admit linear-time canonical strings via
//! the classic AHU encoding — that is precisely why CT-Index restricts
//! itself to tree (and cycle) features.
//!
//! Enumeration: for every root vertex `r`, we grow connected acyclic edge
//! sets whose minimum vertex is `r` (deduplicating growth orders with a
//! per-root seen-set), and record each subtree's canonical form. A *budget*
//! bounds the number of subtree expansions; like path enumeration, the
//! enumeration is level-complete: sizes `≤ complete_edges` are exhaustive,
//! so bitmap filters can stay sound on graphs where enumeration was
//! truncated.

use igq_graph::fxhash::{FxHashMap, FxHashSet};
use igq_graph::{Graph, VertexId};

/// Configuration for subtree enumeration.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum subtree size in edges (paper/CT-Index default: 6).
    pub max_edges: usize,
    /// Budget on subtree expansions per graph.
    pub budget: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_edges: 6,
            budget: 4_000_000,
        }
    }
}

/// Canonical subtree features of one graph, bucketed by edge count.
#[derive(Debug, Clone, Default)]
pub struct TreeFeatures {
    /// `by_size[k]` = distinct canonical strings of subtrees with `k` edges
    /// (index 0 = single labeled vertices).
    pub by_size: Vec<FxHashSet<Vec<u8>>>,
    /// Sizes `≤ complete_edges` are exhaustively enumerated.
    pub complete_edges: usize,
}

impl TreeFeatures {
    /// Total distinct features across all sizes.
    pub fn distinct(&self) -> usize {
        self.by_size.iter().map(|s| s.len()).sum()
    }

    /// Approximate heap footprint.
    pub fn heap_size_bytes(&self) -> u64 {
        self.by_size
            .iter()
            .flat_map(|s| s.iter())
            .map(|v| v.len() as u64 + 16)
            .sum()
    }
}

/// AHU canonical string of a labeled free tree given as an edge list.
///
/// The tree is rooted at its center (or the lexicographically smaller
/// encoding of the two centers for even-diameter trees), and encoded as
/// nested byte strings `( label children... )` with children sorted.
pub fn tree_canonical(labels: &[u32], edges: &[(u32, u32)]) -> Vec<u8> {
    let n = labels.len();
    debug_assert_eq!(edges.len() + 1, n, "input must be a tree");
    if n == 1 {
        return encode_rooted(labels, &vec![Vec::new(); 1], 0);
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    let centers = tree_centers(&adj);
    let adj_children = |root: u32| -> Vec<Vec<u32>> {
        // BFS orientation away from the root.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    children[v as usize].push(w);
                    queue.push_back(w);
                }
            }
        }
        children
    };
    centers
        .into_iter()
        .map(|c| encode_rooted(labels, &adj_children(c), c))
        .min()
        .expect("tree has 1 or 2 centers")
}

/// The 1 or 2 centers of a tree (iterative leaf stripping).
fn tree_centers(adj: &[Vec<u32>]) -> Vec<u32> {
    let n = adj.len();
    if n == 1 {
        return vec![0];
    }
    let mut degree: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    let mut layer: Vec<u32> = (0..n as u32).filter(|&v| degree[v as usize] <= 1).collect();
    let mut removed = layer.len();
    while removed < n {
        let mut next = Vec::new();
        for &v in &layer {
            for &w in &adj[v as usize] {
                if degree[w as usize] > 1 {
                    degree[w as usize] -= 1;
                    if degree[w as usize] == 1 {
                        next.push(w);
                    }
                }
            }
        }
        removed += next.len();
        layer = next;
    }
    layer
}

fn encode_rooted(labels: &[u32], children: &[Vec<u32>], root: u32) -> Vec<u8> {
    let mut out = Vec::new();
    encode_node(labels, children, root, &mut out);
    out
}

fn encode_node(labels: &[u32], children: &[Vec<u32>], v: u32, out: &mut Vec<u8>) {
    out.push(b'(');
    out.extend_from_slice(&labels[v as usize].to_be_bytes());
    let mut encs: Vec<Vec<u8>> = children[v as usize]
        .iter()
        .map(|&c| {
            let mut e = Vec::new();
            encode_node(labels, children, c, &mut e);
            e
        })
        .collect();
    encs.sort();
    for e in encs {
        out.extend_from_slice(&e);
    }
    out.push(b')');
}

/// Enumerates canonical subtree features of `g`.
pub fn enumerate_trees(g: &Graph, config: &TreeConfig) -> TreeFeatures {
    let mut by_size: Vec<FxHashSet<Vec<u8>>> = vec![FxHashSet::default(); config.max_edges + 1];
    // Size 0: single labeled vertices.
    for v in g.vertices() {
        by_size[0].insert(g.label(v).raw().to_be_bytes().to_vec());
    }
    let mut expansions = 0u64;
    let mut complete_edges = 0usize;

    // Level-by-level growth over *edge-set* subtrees. Each subtree is keyed
    // by its sorted edge list for dedup; growth adds one frontier edge that
    // introduces a new vertex (preserving acyclicity) with the min-vertex
    // rule anchoring each subtree at its smallest vertex.
    //
    // Frontier representation: (sorted edge list, vertex set).
    type EdgeList = Vec<(VertexId, VertexId)>;
    let mut current: Vec<(EdgeList, Vec<VertexId>)> = Vec::new();
    // Seed: every edge, anchored at its min endpoint.
    for &(u, v) in g.edges() {
        current.push((vec![(u, v)], vec![u, v]));
    }

    #[allow(clippy::needless_range_loop)] // `size` is the semantic subtree size
    for size in 1..=config.max_edges {
        let mut seen: FxHashSet<EdgeList> = FxHashSet::default();
        let mut next: Vec<(EdgeList, Vec<VertexId>)> = Vec::new();
        let mut tripped = false;
        'level: for (edges, vertices) in &current {
            // Record the canonical form of this subtree.
            expansions += 1;
            if expansions > config.budget {
                tripped = true;
                break 'level;
            }
            record_tree(g, edges, &mut by_size[size]);
            if size == config.max_edges {
                continue;
            }
            let anchor = vertices.iter().copied().min().expect("nonempty");
            for &v in vertices {
                for &w in g.neighbors(v) {
                    if w < anchor || vertices.contains(&w) {
                        continue; // min-vertex rule / acyclicity
                    }
                    let mut e2 = edges.clone();
                    let edge = if v < w { (v, w) } else { (w, v) };
                    // Insert keeping the list sorted for canonical dedup.
                    let pos = e2.binary_search(&edge).unwrap_or_else(|p| p);
                    e2.insert(pos, edge);
                    if seen.insert(e2.clone()) {
                        let mut v2 = vertices.clone();
                        v2.push(w);
                        next.push((e2, v2));
                    }
                }
            }
        }
        if tripped {
            // Discard the partial level so no bucket can ever be compared
            // against an incomplete feature set.
            by_size[size].clear();
            break;
        }
        complete_edges = size;
        current = next;
    }

    TreeFeatures {
        by_size,
        complete_edges,
    }
}

fn record_tree(g: &Graph, edges: &[(VertexId, VertexId)], out: &mut FxHashSet<Vec<u8>>) {
    // Remap to dense local ids.
    let mut remap: FxHashMap<VertexId, u32> = FxHashMap::default();
    let mut labels: Vec<u32> = Vec::with_capacity(edges.len() + 1);
    let mut local_edges: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        for x in [u, v] {
            if let std::collections::hash_map::Entry::Vacant(e) = remap.entry(x) {
                e.insert(labels.len() as u32);
                labels.push(g.label(x).raw());
            }
        }
        local_edges.push((remap[&u], remap[&v]));
    }
    out.insert(tree_canonical(&labels, &local_edges));
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    #[test]
    fn canonical_is_invariant_under_relabeling() {
        // Same star, two vertex orders.
        let a = tree_canonical(&[9, 1, 2, 3], &[(0, 1), (0, 2), (0, 3)]);
        let b = tree_canonical(&[3, 9, 1, 2], &[(1, 0), (1, 2), (1, 3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_distinguishes_shapes() {
        let path = tree_canonical(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let star = tree_canonical(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(path, star);
    }

    #[test]
    fn canonical_distinguishes_labels() {
        let a = tree_canonical(&[0, 1], &[(0, 1)]);
        let b = tree_canonical(&[0, 2], &[(0, 1)]);
        assert_ne!(a, b);
        // ... but edge direction does not matter.
        let c = tree_canonical(&[1, 0], &[(0, 1)]);
        assert_eq!(a, c);
    }

    #[test]
    fn even_diameter_tree_has_two_centers_handled() {
        // P4: centers are the two middle vertices; asymmetric labels force
        // the min() choice to be deterministic.
        let a = tree_canonical(&[5, 1, 2, 7], &[(0, 1), (1, 2), (2, 3)]);
        let b = tree_canonical(&[7, 2, 1, 5], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn triangle_yields_paths_but_no_3edge_tree_through_cycle() {
        // K3: subtrees with 2 edges are the 3 paths; no 3-edge subtree
        // exists (would need 4 vertices).
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let f = enumerate_trees(
            &g,
            &TreeConfig {
                max_edges: 3,
                budget: u64::MAX,
            },
        );
        assert_eq!(f.by_size[0].len(), 1); // single label
        assert_eq!(f.by_size[1].len(), 1); // 0-0 edge
        assert_eq!(f.by_size[2].len(), 1); // 0-0-0 path
        assert_eq!(f.by_size[3].len(), 0);
        assert_eq!(f.complete_edges, 3);
    }

    #[test]
    fn star_subtrees() {
        // Star with center 9, leaves 1,2,3: distinct 2-edge subtrees are
        // the pairs {1,2},{1,3},{2,3} → 3 canonical forms; the single
        // 3-edge subtree is the full star.
        let g = graph_from(&[9, 1, 2, 3], &[(0, 1), (0, 2), (0, 3)]);
        let f = enumerate_trees(
            &g,
            &TreeConfig {
                max_edges: 3,
                budget: u64::MAX,
            },
        );
        assert_eq!(f.by_size[1].len(), 3);
        assert_eq!(f.by_size[2].len(), 3);
        assert_eq!(f.by_size[3].len(), 1);
    }

    #[test]
    fn budget_truncation_reports_complete_level() {
        let g = graph_from(
            &[0; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (0, 4),
                (1, 5),
            ],
        );
        let f = enumerate_trees(
            &g,
            &TreeConfig {
                max_edges: 5,
                budget: 20,
            },
        );
        assert!(f.complete_edges < 5);
        let full = enumerate_trees(
            &g,
            &TreeConfig {
                max_edges: 5,
                budget: u64::MAX,
            },
        );
        for size in 0..=f.complete_edges {
            assert_eq!(f.by_size[size], full.by_size[size], "size {size}");
        }
    }

    #[test]
    fn subtree_features_subsume_query_containment() {
        // If q ⊆ G then every subtree feature of q is a subtree feature of
        // G — spot-check on a fixed pair.
        let q = graph_from(&[1, 2], &[(0, 1)]);
        let g = graph_from(&[1, 2, 3], &[(0, 1), (1, 2)]);
        let fq = enumerate_trees(&q, &TreeConfig::default());
        let fg = enumerate_trees(&g, &TreeConfig::default());
        for size in 0..fq.by_size.len() {
            for feat in &fq.by_size[size] {
                assert!(fg.by_size[size].contains(feat));
            }
        }
    }

    #[test]
    fn distinct_and_heap_size() {
        let g = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let f = enumerate_trees(&g, &TreeConfig::default());
        assert!(f.distinct() >= 4);
        assert!(f.heap_size_bytes() > 0);
    }
}
