//! Simple-cycle feature enumeration with canonical forms (CT-Index).
//!
//! CT-Index complements its tree features with simple cycles up to a
//! maximum length (8 edges in the paper's experiments). Like trees, cycles
//! admit linear-time canonical strings: the lexicographic minimum over all
//! rotations of the label sequence, in both traversal directions.
//!
//! Enumeration uses the classic smallest-vertex-root DFS: a cycle is
//! discovered exactly once by requiring (a) the start vertex to be the
//! cycle's minimum vertex and (b) the second vertex on the path to be
//! smaller than the last (killing the reversed traversal).

use igq_graph::fxhash::FxHashSet;
use igq_graph::{Graph, VertexId};

/// Configuration for cycle enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CycleConfig {
    /// Maximum cycle length in edges (paper/CT-Index default: 8).
    pub max_len: usize,
    /// Budget on DFS edge visits per graph.
    pub budget: u64,
}

impl Default for CycleConfig {
    fn default() -> Self {
        CycleConfig {
            max_len: 8,
            budget: 4_000_000,
        }
    }
}

/// Canonical cycle features of one graph, bucketed by length.
#[derive(Debug, Clone, Default)]
pub struct CycleFeatures {
    /// `by_len[k]` = distinct canonical strings of simple cycles with `k`
    /// edges (indexes 0..3 stay empty: the shortest simple cycle is C3).
    pub by_len: Vec<FxHashSet<Vec<u8>>>,
    /// Lengths ≤ `complete_len` are exhaustively enumerated.
    pub complete_len: usize,
}

impl CycleFeatures {
    /// Total distinct features across lengths.
    pub fn distinct(&self) -> usize {
        self.by_len.iter().map(|s| s.len()).sum()
    }

    /// Approximate heap footprint.
    pub fn heap_size_bytes(&self) -> u64 {
        self.by_len
            .iter()
            .flat_map(|s| s.iter())
            .map(|v| v.len() as u64 + 16)
            .sum()
    }
}

/// Canonical byte string of a labeled cycle: the lexicographically smallest
/// rotation over both directions, labels big-endian encoded.
pub fn cycle_canonical(labels: &[u32]) -> Vec<u8> {
    let k = labels.len();
    debug_assert!(k >= 3, "simple cycles have length >= 3");
    let mut best: Option<Vec<u32>> = None;
    let mut consider = |seq: Vec<u32>| match &best {
        Some(b) if *b <= seq => {}
        _ => best = Some(seq),
    };
    for start in 0..k {
        let fwd: Vec<u32> = (0..k).map(|i| labels[(start + i) % k]).collect();
        let bwd: Vec<u32> = (0..k).map(|i| labels[(start + k - i) % k]).collect();
        consider(fwd);
        consider(bwd);
    }
    best.expect("nonempty")
        .into_iter()
        .flat_map(|l| l.to_be_bytes())
        .collect()
}

struct CycleSearch<'a> {
    graph: &'a Graph,
    level: usize,
    budget: u64,
    visits: &'a mut u64,
    tripped: bool,
    path: Vec<VertexId>,
    on_path: Vec<bool>,
    found: FxHashSet<Vec<u8>>,
}

impl<'a> CycleSearch<'a> {
    fn dfs(&mut self, start: VertexId, v: VertexId) {
        if self.tripped {
            return;
        }
        let depth = self.path.len();
        for &w in self.graph.neighbors(v) {
            if *self.visits >= self.budget {
                self.tripped = true;
                return;
            }
            *self.visits += 1;
            if w == start && depth == self.level {
                // Closing edge. Dedup direction: second vertex < last vertex.
                if self.path[1] < self.path[depth - 1] {
                    let labels: Vec<u32> = self
                        .path
                        .iter()
                        .map(|&x| self.graph.label(x).raw())
                        .collect();
                    self.found.insert(cycle_canonical(&labels));
                }
                continue;
            }
            if depth < self.level && w > start && !self.on_path[w.index()] {
                self.path.push(w);
                self.on_path[w.index()] = true;
                self.dfs(start, w);
                self.on_path[w.index()] = false;
                self.path.pop();
            }
        }
    }
}

/// Enumerates canonical simple-cycle features of `g`.
pub fn enumerate_cycles(g: &Graph, config: &CycleConfig) -> CycleFeatures {
    let mut by_len: Vec<FxHashSet<Vec<u8>>> = vec![FxHashSet::default(); config.max_len + 1];
    let mut complete_len = 0usize;
    let mut visits = 0u64;

    #[allow(clippy::needless_range_loop)] // `len` is the semantic cycle length
    for len in 3..=config.max_len {
        let mut level_found: FxHashSet<Vec<u8>> = FxHashSet::default();
        let mut tripped = false;
        for start in g.vertices() {
            let mut s = CycleSearch {
                graph: g,
                level: len,
                budget: config.budget,
                visits: &mut visits,
                tripped: false,
                path: vec![start],
                on_path: {
                    let mut v = vec![false; g.vertex_count()];
                    v[start.index()] = true;
                    v
                },
                found: std::mem::take(&mut level_found),
            };
            s.dfs(start, start);
            level_found = s.found;
            if s.tripped {
                tripped = true;
                break;
            }
        }
        if tripped {
            break;
        }
        by_len[len] = level_found;
        complete_len = len;
    }
    // Lengths < 3 are vacuously complete.
    if complete_len == 0 {
        complete_len = 2.min(config.max_len);
    }

    CycleFeatures {
        by_len,
        complete_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    #[test]
    fn canonical_rotation_invariance() {
        let a = cycle_canonical(&[1, 2, 3]);
        let b = cycle_canonical(&[2, 3, 1]);
        let c = cycle_canonical(&[3, 1, 2]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn canonical_reflection_invariance() {
        let a = cycle_canonical(&[1, 2, 3, 4]);
        let b = cycle_canonical(&[4, 3, 2, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_distinguishes_label_multisets_and_orders() {
        assert_ne!(
            cycle_canonical(&[1, 2, 3, 4]),
            cycle_canonical(&[1, 3, 2, 4])
        );
        assert_ne!(cycle_canonical(&[1, 1, 2]), cycle_canonical(&[1, 2, 2]));
    }

    #[test]
    fn triangle_found_once() {
        let g = graph_from(&[5, 6, 7], &[(0, 1), (1, 2), (0, 2)]);
        let f = enumerate_cycles(
            &g,
            &CycleConfig {
                max_len: 4,
                budget: u64::MAX,
            },
        );
        assert_eq!(f.by_len[3].len(), 1);
        assert_eq!(f.by_len[4].len(), 0);
        assert_eq!(f.complete_len, 4);
    }

    #[test]
    fn k4_cycle_census() {
        // K4 with uniform labels: cycles of length 3 (4 of them, 1 canonical
        // form) and length 4 (3 of them, 1 canonical form).
        let g = graph_from(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let f = enumerate_cycles(
            &g,
            &CycleConfig {
                max_len: 4,
                budget: u64::MAX,
            },
        );
        assert_eq!(f.by_len[3].len(), 1);
        assert_eq!(f.by_len[4].len(), 1);
    }

    #[test]
    fn distinct_labelings_of_c4_separate() {
        // Two C4s with different label arrangements around the ring.
        let a = graph_from(&[1, 2, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = graph_from(&[1, 1, 2, 2], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let fa = enumerate_cycles(&a, &CycleConfig::default());
        let fb = enumerate_cycles(&b, &CycleConfig::default());
        assert_ne!(fa.by_len[4], fb.by_len[4]);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let g = graph_from(&[0, 1, 2, 3], &[(0, 1), (1, 2), (1, 3)]);
        let f = enumerate_cycles(&g, &CycleConfig::default());
        assert_eq!(f.distinct(), 0);
        assert_eq!(f.complete_len, 8);
    }

    #[test]
    fn budget_truncation() {
        // Dense graph, tiny budget.
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8u32 {
                edges.push((i, j));
            }
        }
        let g = graph_from(&[0; 8], &edges);
        let f = enumerate_cycles(
            &g,
            &CycleConfig {
                max_len: 8,
                budget: 16,
            },
        );
        assert!(f.complete_len < 8);
        let full = enumerate_cycles(
            &g,
            &CycleConfig {
                max_len: 8,
                budget: u64::MAX,
            },
        );
        for len in 3..=f.complete_len {
            assert_eq!(f.by_len[len], full.by_len[len], "len {len}");
        }
    }

    #[test]
    fn c6_and_double_triangle_differ_in_cycle_features() {
        // The canon.rs WL test couldn't separate these; cycle features can.
        let c6 = graph_from(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let c3x2 = graph_from(&[0; 6], &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let f6 = enumerate_cycles(&c6, &CycleConfig::default());
        let f33 = enumerate_cycles(&c3x2, &CycleConfig::default());
        assert_eq!(f6.by_len[3].len(), 0);
        assert_eq!(f33.by_len[3].len(), 1);
        assert_eq!(f6.by_len[6].len(), 1);
        assert_eq!(f33.by_len[6].len(), 0);
    }
}
