//! Canonical label sequences — the key type for path features.
//!
//! A path feature is the sequence of vertex labels along a simple path. An
//! undirected path reads the same forwards and backwards, so the canonical
//! form is the lexicographically smaller of the sequence and its reverse.

use igq_graph::LabelId;
use std::fmt;

/// A canonical (direction-normalized) label sequence.
///
/// Construct with [`LabelSeq::canonical`]; the `Ord`/`Hash` impls operate on
/// the canonical form, so a path and its reverse are one key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSeq(Box<[LabelId]>);

impl LabelSeq {
    /// Canonicalizes `labels` (picks `min(labels, reverse(labels))`).
    pub fn canonical(labels: &[LabelId]) -> LabelSeq {
        let forward = labels;
        let is_reversed_smaller = {
            let mut rev = labels.iter().rev();
            let mut fwd = labels.iter();
            loop {
                match (fwd.next(), rev.next()) {
                    (Some(f), Some(r)) if f == r => continue,
                    (Some(f), Some(r)) => break r < f,
                    _ => break false,
                }
            }
        };
        if is_reversed_smaller {
            LabelSeq(labels.iter().rev().copied().collect())
        } else {
            LabelSeq(forward.to_vec().into_boxed_slice())
        }
    }

    /// A single-label sequence (length-0 path).
    pub fn single(label: LabelId) -> LabelSeq {
        LabelSeq(vec![label].into_boxed_slice())
    }

    /// The canonical labels.
    #[inline]
    pub fn labels(&self) -> &[LabelId] {
        &self.0
    }

    /// Number of labels (= path length in edges + 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty sequence (never produced by enumeration).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Path length in edges.
    #[inline]
    pub fn edge_len(&self) -> usize {
        self.0.len().saturating_sub(1)
    }

    /// True when the sequence equals its reverse.
    pub fn is_palindrome(&self) -> bool {
        self.0.iter().eq(self.0.iter().rev())
    }

    /// Compact byte encoding (little-endian u32 per label), for hashing into
    /// fingerprints.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len() * 4);
        for l in self.0.iter() {
            out.extend_from_slice(&l.raw().to_le_bytes());
        }
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size_bytes(&self) -> u64 {
        (self.0.len() * std::mem::size_of::<LabelId>()) as u64
    }
}

impl fmt::Debug for LabelSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq[")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{}", l.raw())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(raws: &[u32]) -> Vec<LabelId> {
        raws.iter().map(|&r| LabelId::new(r)).collect()
    }

    #[test]
    fn forward_already_canonical() {
        let s = LabelSeq::canonical(&l(&[1, 2, 3]));
        assert_eq!(s.labels(), &l(&[1, 2, 3])[..]);
    }

    #[test]
    fn reverses_when_smaller() {
        let s = LabelSeq::canonical(&l(&[3, 2, 1]));
        assert_eq!(s.labels(), &l(&[1, 2, 3])[..]);
    }

    #[test]
    fn path_and_reverse_are_one_key() {
        let a = LabelSeq::canonical(&l(&[5, 0, 7]));
        let b = LabelSeq::canonical(&l(&[7, 0, 5]));
        assert_eq!(a, b);
    }

    #[test]
    fn palindromes() {
        assert!(LabelSeq::canonical(&l(&[1, 2, 1])).is_palindrome());
        assert!(!LabelSeq::canonical(&l(&[1, 2, 2])).is_palindrome());
        assert!(LabelSeq::single(LabelId::new(4)).is_palindrome());
    }

    #[test]
    fn tie_break_on_interior_labels() {
        // 1-9-0-1: reverse is 1-0-9-1; reverse is smaller at position 1.
        let s = LabelSeq::canonical(&l(&[1, 9, 0, 1]));
        assert_eq!(s.labels(), &l(&[1, 0, 9, 1])[..]);
    }

    #[test]
    fn lengths() {
        let s = LabelSeq::canonical(&l(&[1, 2, 3]));
        assert_eq!(s.len(), 3);
        assert_eq!(s.edge_len(), 2);
        assert_eq!(LabelSeq::single(LabelId::new(0)).edge_len(), 0);
    }

    #[test]
    fn byte_encoding_is_injective_on_labels() {
        let a = LabelSeq::canonical(&l(&[1, 2]));
        let b = LabelSeq::canonical(&l(&[1, 3]));
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.to_bytes().len(), 8);
    }
}
