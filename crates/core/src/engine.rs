//! The iGQ subgraph-query engine (paper Sections 4.2, 4.3, 5, and Fig. 6).
//!
//! [`IgqEngine`] wraps any [`SubgraphMethod`] `M` and runs the full iGQ
//! pipeline per query `g`:
//!
//! 1. `M.filter(g)` produces the candidate set `CS(g)` (no false negatives);
//! 2. the query indexes are probed: `Isub` yields cached supergraphs of `g`
//!    (their answers are *known answers*), `Isuper` yields cached subgraphs
//!    (their answers *bound* the candidates);
//! 3. optimal cases (Section 4.3): an exact repeat returns the stored
//!    answer outright; a cached subgraph with an empty answer proves the
//!    answer empty;
//! 4. pruning: `CS_igq = (CS \ ∪ Answer(G_sub)) ∩ (∩ Answer(G_super))`
//!    (formulas (3) and (5));
//! 5. verification of the survivors via `M.verify_batch`;
//! 6. the final answer adds back the known answers (formula (4));
//! 7. bookkeeping: metadata updates (Section 5.1) and window maintenance
//!    (Section 5.2) — by default an **incremental delta update** of both
//!    query indexes (evicted slots removed, admitted slots inserted, cost
//!    O(window delta)); the paper's shadow rebuild survives behind
//!    [`MaintenanceMode::ShadowRebuild`] for ablation, and
//!    [`MaintenanceMode::Background`] queues the delta to a dedicated
//!    maintenance thread instead (see [`crate::background`]) so the window
//!    flip never stalls a query.
//!
//! Under background maintenance the probes of step 2 read an immutable
//! published snapshot of the indexes, which may trail the cache by a
//! bounded number of windows; every probe hit is revalidated against the
//! live cache (slot occupied, graph `Arc`-identical), so staleness only
//! costs pruning power — answers remain exact.
//!
//! The query's path features are extracted **once** per query and shared
//! by the base method's filter and both index probes (the seed extracted
//! them three times); [`EngineStats::feature_extractions`] counts them.
//!
//! Correctness (Theorems 1 and 2) is exercised end-to-end by the
//! integration suite: the engine's answers are compared against the naive
//! oracle on randomized workloads, in all maintenance modes.
//!
//! [`MaintenanceMode::ShadowRebuild`]: crate::config::MaintenanceMode::ShadowRebuild
//! [`MaintenanceMode::Background`]: crate::config::MaintenanceMode::Background

use crate::background::{retain_current_slots, BackgroundMaintainer};
use crate::cache::{QueryCache, WindowEntry};
use crate::config::IgqConfig;
use crate::isub::IsubIndex;
use crate::isuper::IsuperIndex;
use crate::maintain::MaintenanceJob;
use crate::outcome::{QueryOutcome, Resolution};
use crate::stats::EngineStats;
use igq_features::{enumerate_paths, PathFeatures};
use igq_graph::canon::{canonical_code, CanonicalCode, GraphSignature};
use igq_graph::stats::DatasetStats;
use igq_graph::{Graph, GraphId};
use igq_iso::{CostModel, IsoStats, LogValue};
use igq_methods::{intersect_sorted, subtract_sorted, SubgraphMethod};
use std::sync::Arc;
use std::time::Instant;

/// The iGQ engine for subgraph queries.
pub struct IgqEngine<M: SubgraphMethod> {
    method: M,
    config: IgqConfig,
    cache: QueryCache,
    /// Live indexes for the synchronous maintenance modes; stay empty
    /// under [`MaintenanceMode::Background`], where the maintainer owns
    /// the authoritative copies and queries probe published snapshots.
    isub: IsubIndex,
    isuper: IsuperIndex,
    /// The maintenance thread handle (`Some` iff the mode is
    /// [`MaintenanceMode::Background`]). Dropped last-ish on engine drop:
    /// its own `Drop` drains the delta queue and joins the thread.
    maintainer: Option<BackgroundMaintainer>,
    /// `Itemp`: processed-but-not-yet-indexed queries.
    window: Vec<WindowEntry>,
    window_signatures: Vec<GraphSignature>,
    cost_model: CostModel,
    stats: EngineStats,
}

impl<M: SubgraphMethod> IgqEngine<M> {
    /// Wraps `method` with an (initially empty) iGQ cache.
    pub fn new(method: M, config: IgqConfig) -> IgqEngine<M> {
        let config = config.normalized();
        let labels = if config.label_universe > 0 {
            config.label_universe
        } else {
            DatasetStats::of(method.store()).vertex_labels.max(1)
        };
        let cache = QueryCache::with_policy(config.cache_capacity, config.policy);
        let isub = IsubIndex::new(config.path_config);
        let isuper = IsuperIndex::new(config.path_config);
        let maintainer = BackgroundMaintainer::for_config(&config);
        IgqEngine {
            method,
            config,
            cache,
            isub,
            isuper,
            maintainer,
            window: Vec::new(),
            window_signatures: Vec::new(),
            cost_model: CostModel::new(labels),
            stats: EngineStats::default(),
        }
    }

    /// The wrapped method.
    pub fn method(&self) -> &M {
        &self.method
    }

    /// Aggregate statistics so far (an owned snapshot). Under background
    /// maintenance the off-thread counters (`maintenance_time`,
    /// `maintenance_postings_touched`, `maintenance_lag_windows`,
    /// `snapshot_publishes`) are read from the maintenance thread at call
    /// time; call [`IgqEngine::sync_maintenance`] first for fully settled
    /// numbers.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats.clone();
        if let Some(m) = &self.maintainer {
            stats.fold_maintainer(&m.stats());
        }
        stats
    }

    /// Blocks until the background maintainer has applied and published
    /// every submitted window delta, so the next probe sees a snapshot in
    /// lockstep with the cache. No-op in the synchronous modes.
    pub fn sync_maintenance(&self) {
        if let Some(m) = &self.maintainer {
            m.sync();
        }
    }

    /// Engine configuration.
    pub fn config(&self) -> &IgqConfig {
        &self.config
    }

    /// Number of currently cached queries.
    pub fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// Approximate footprint of iGQ's own structures (query graphs, answer
    /// sets, and both query indexes) — the iGQ bar of Figure 18. Under
    /// background maintenance the engine-owned indexes are empty, so the
    /// index share is read from the latest published snapshot (which may
    /// trail the cache by the lag bound).
    pub fn igq_index_size_bytes(&self) -> u64 {
        let index_bytes = match &self.maintainer {
            Some(m) => {
                let pair = m.snapshot();
                pair.isub.heap_size_bytes() + pair.isuper.heap_size_bytes()
            }
            None => self.isub.heap_size_bytes() + self.isuper.heap_size_bytes(),
        };
        self.cache.heap_size_bytes() + index_bytes
    }

    /// Estimated cost (log space) of iso-testing `q` against each graph in
    /// `ids`.
    fn cost_of(&mut self, q: &Graph, ids: &[GraphId]) -> LogValue {
        let n = q.vertex_count();
        let mut total = LogValue::ZERO;
        for &id in ids {
            let ni = self.method.store().get(id).vertex_count();
            total = total.add(self.cost_model.cost_ln(n, ni));
        }
        total
    }

    /// Processes a subgraph query, returning the exact answer set plus
    /// accounting (Theorem 1: no false positives, no false negatives).
    pub fn query(&mut self, q: &Graph) -> QueryOutcome {
        let wall_start = Instant::now();
        let mut outcome = QueryOutcome::default();

        // Optimal case 1 fast path: a canonical-code hash lookup detects
        // exact repeats before any filtering or probing (see
        // [`IgqConfig::exact_fastpath`]). The probe path below still
        // catches repeats whose canonicalization exceeded its budget. The
        // canonicalization outcome is kept and threaded through to window
        // admission so maintenance never recomputes it.
        let code: Option<Option<CanonicalCode>> = if self.config.exact_fastpath {
            Some(canonical_code(q))
        } else {
            None
        };
        if let Some(Some(code)) = &code {
            if let Some(slot) = self.cache.slot_with_code(code) {
                self.cache.tick_all();
                let answers = self.cache.entry(slot).answers.clone();
                // Credit: without running M's filter the alleviated
                // candidate set is unknown; the stored answers are a
                // conservative lower bound on it.
                let credit = self.cost_of(q, &answers);
                self.cache
                    .entry_mut(slot)
                    .meta
                    .record_hit(answers.len() as u64, credit);
                outcome.answers = answers;
                outcome.resolution = Resolution::ExactHit;
                outcome.igq_time = wall_start.elapsed();
                outcome.wall_time = wall_start.elapsed();
                self.stats.absorb(&outcome);
                return outcome;
            }
        }

        // Single-pass feature extraction: the query's paths are enumerated
        // once here and shared by the base filter and both index probes
        // (the probes and a path-trie method like GGSX would otherwise each
        // enumerate them again).
        let extract_start = Instant::now();
        let qf = enumerate_paths(q, &self.config.path_config);
        let extract_time = extract_start.elapsed();
        self.stats.feature_extractions += 1;

        // Stage 1+2: base-method filtering and query-index probes —
        // parallel threads as in Fig. 6 when configured. Under background
        // maintenance the probes read the latest published snapshot
        // instead of engine-owned indexes.
        let snap = self.maintainer.as_ref().map(|m| m.snapshot());
        let (filtered, probes) = {
            let (isub, isuper) = match &snap {
                Some(pair) => (&pair.isub, &pair.isuper),
                None => (&self.isub, &self.isuper),
            };
            if self.config.parallel_probes {
                self.filter_and_probe_parallel(isub, isuper, q, &qf)
            } else {
                let f_start = Instant::now();
                let filtered = self.method.filter_with_features(q, Some(&qf));
                let filter_time = f_start.elapsed();
                let p_start = Instant::now();
                let probes = ProbeResult {
                    sub: isub.supergraphs_of(q, &qf),
                    sup: isuper.subgraphs_of(q, &qf),
                    filter_time,
                    probe_time: Instant::now().duration_since(p_start),
                };
                (filtered, probes)
            }
        };

        let (mut sub_slots, sub_stats) = probes.sub;
        let (mut super_slots, super_stats) = probes.sup;
        if let Some(pair) = &snap {
            // The snapshot may trail the cache: discard hits whose slot
            // the cache has since evicted or reused, so every surviving
            // slot's stored answers really belong to the verified graph.
            retain_current_slots(&self.cache, &mut sub_slots, |s| pair.isub.slot_graph(s));
            retain_current_slots(&self.cache, &mut super_slots, |s| pair.isuper.slot_graph(s));
        }
        drop(snap);
        outcome.filter_time = probes.filter_time;
        let mut igq_stats = IsoStats::new();
        igq_stats.merge(&sub_stats);
        igq_stats.merge(&super_stats);
        outcome.igq_iso_tests = igq_stats.tests;
        outcome.isub_hits = sub_slots.len();
        outcome.isuper_hits = super_slots.len();
        outcome.candidates_before = filtered.candidates.len();

        let bookkeeping_start = Instant::now();
        // Every cached entry has now seen one more query.
        self.cache.tick_all();

        let cs = &filtered.candidates;

        // Optimal case 1: exact repeat — g isomorphic to a cached query.
        // g ⊆ G (or G ⊆ g) at equal vertex/edge counts is an isomorphism.
        let exact_slot = sub_slots
            .iter()
            .chain(super_slots.iter())
            .copied()
            .find(|&s| {
                let g = &self.cache.entry(s).graph;
                g.vertex_count() == q.vertex_count() && g.edge_count() == q.edge_count()
            });
        if let Some(slot) = exact_slot {
            outcome.answers = self.cache.entry(slot).answers.clone();
            outcome.resolution = Resolution::ExactHit;
            outcome.candidates_after = 0;
            outcome.pruned_by_isub = cs.len();
            let credit = self.cost_of(q, cs);
            self.credit_hits(q, cs, &sub_slots, &super_slots, Some((slot, credit)));
            outcome.igq_time = extract_time + probes.probe_time + bookkeeping_start.elapsed();
            outcome.wall_time = wall_start.elapsed();
            self.stats.absorb(&outcome);
            return outcome;
        }

        // Optimal case 2: a cached subgraph with an empty answer set proves
        // Answer(g) = ∅ (Section 4.3).
        if let Some(&slot) = super_slots
            .iter()
            .find(|&&s| self.cache.entry(s).answers.is_empty())
        {
            outcome.answers = Vec::new();
            outcome.resolution = Resolution::EmptyAnswerShortcut;
            outcome.candidates_after = 0;
            outcome.pruned_by_isuper = cs.len();
            let credit = self.cost_of(q, cs);
            self.credit_hits(q, cs, &sub_slots, &super_slots, Some((slot, credit)));
            // An empty-answer query is prime cache material.
            self.enqueue(q, &[], code.clone());
            outcome.igq_time = extract_time + probes.probe_time + bookkeeping_start.elapsed();
            let maint_start = Instant::now();
            if self.maybe_maintain() {
                outcome.igq_time += maint_start.elapsed();
            }
            outcome.wall_time = wall_start.elapsed();
            self.stats.absorb(&outcome);
            return outcome;
        }

        // Formula (3): known answers via the subgraph path.
        let mut known_answers: Vec<GraphId> = Vec::new();
        for &s in &sub_slots {
            known_answers.extend_from_slice(&self.cache.entry(s).answers);
        }
        known_answers.sort_unstable();
        known_answers.dedup();
        let known_in_cs = intersect_sorted(cs, &known_answers);
        let mut pruned = subtract_sorted(cs, &known_answers);
        outcome.pruned_by_isub = cs.len() - pruned.len();

        // Formula (5): candidates must appear in every Isuper hit's answers.
        let before_super = pruned.len();
        for &s in &super_slots {
            pruned = intersect_sorted(&pruned, &self.cache.entry(s).answers);
            if pruned.is_empty() {
                break;
            }
        }
        outcome.pruned_by_isuper = before_super - pruned.len();
        outcome.candidates_after = pruned.len();

        // Metadata credit for every hit.
        self.credit_hits(q, cs, &sub_slots, &super_slots, None);
        outcome.igq_time = extract_time + probes.probe_time + bookkeeping_start.elapsed();

        // Verification of the surviving candidates.
        let verify_start = Instant::now();
        let results = self.method.verify_batch(q, &filtered.context, &pruned);
        outcome.db_iso_tests = pruned.len() as u64;
        outcome.aborted_tests = results.iter().filter(|r| r.aborted).count() as u64;
        let mut answers: Vec<GraphId> = pruned
            .iter()
            .zip(results.iter())
            .filter(|(_, r)| r.contains)
            .map(|(&id, _)| id)
            .collect();
        outcome.verify_time = verify_start.elapsed();

        // Formula (4): add back the known answers.
        answers.extend_from_slice(&known_in_cs);
        answers.sort_unstable();
        answers.dedup();
        outcome.answers = answers;

        // Window admission and maintenance. A query whose verification hit
        // the abort budget has a possibly-incomplete answer set: caching it
        // would let formulas (3)–(5) turn one bounded verification into
        // wrong answers for *future* queries, so it is never admitted.
        let maint_start = Instant::now();
        if outcome.aborted_tests == 0 {
            self.enqueue(q, &outcome.answers, code);
        }
        self.maybe_maintain();
        outcome.igq_time += maint_start.elapsed();

        outcome.wall_time = wall_start.elapsed();
        self.stats.absorb(&outcome);
        outcome
    }

    /// Records hit metadata. `bonus` optionally awards one slot the full
    /// candidate-set prune credit (optimal-case resolutions).
    fn credit_hits(
        &mut self,
        q: &Graph,
        cs: &[GraphId],
        sub_slots: &[usize],
        super_slots: &[usize],
        bonus: Option<(usize, LogValue)>,
    ) {
        for &s in sub_slots {
            let prunes = intersect_sorted(cs, &self.cache.entry(s).answers);
            let cost = self.cost_of(q, &prunes);
            self.cache
                .entry_mut(s)
                .meta
                .record_hit(prunes.len() as u64, cost);
        }
        for &s in super_slots {
            let prunes = subtract_sorted(cs, &self.cache.entry(s).answers);
            let cost = self.cost_of(q, &prunes);
            self.cache
                .entry_mut(s)
                .meta
                .record_hit(prunes.len() as u64, cost);
        }
        if let Some((slot, credit)) = bonus {
            self.cache
                .entry_mut(slot)
                .meta
                .record_hit(cs.len() as u64, credit);
        }
    }

    /// Adds `(q, answers)` to the window unless `q` is an exact duplicate
    /// of a pending window entry (cache duplicates were already handled by
    /// the exact-hit path). `code` is the query-path canonicalization
    /// outcome, reused at admission.
    fn enqueue(&mut self, q: &Graph, answers: &[GraphId], code: Option<Option<CanonicalCode>>) {
        let sig = GraphSignature::of(q);
        let dup = self
            .window_signatures
            .iter()
            .zip(self.window.iter())
            .any(|(s, e)| *s == sig && igq_iso::are_isomorphic(q, &e.graph));
        if dup {
            return;
        }
        self.window.push(WindowEntry {
            graph: Arc::new(q.clone()),
            answers: answers.to_vec(),
            signature: Some(sig),
            code,
        });
        self.window_signatures.push(sig);
    }

    /// Runs window maintenance when `W` queries have accumulated: evict,
    /// admit, and bring both query indexes up to date.
    fn maybe_maintain(&mut self) -> bool {
        if self.window.len() < self.config.window {
            return false;
        }
        self.run_maintenance();
        true
    }

    /// Evicts/admits the pending window and brings `Isub`/`Isuper` in line
    /// with the resulting slot delta — incrementally on this thread
    /// (remove evicted slots, insert admitted ones; O(window delta)), by
    /// rebuilding both indexes over the whole cache under
    /// [`MaintenanceMode::ShadowRebuild`] as the paper's Section 5.2
    /// prescribes, or by queueing the delta to the maintenance thread
    /// under [`MaintenanceMode::Background`] (blocking only when the
    /// maintainer is `max_lag_windows` behind).
    ///
    /// `EngineStats::maintenance_time` is measured around the index work
    /// only, on whichever thread runs it; the cache eviction/admission
    /// stays on this thread and is charged to the caller's `igq_time`.
    fn run_maintenance(&mut self) {
        if self.window.is_empty() {
            return;
        }
        let incoming = std::mem::take(&mut self.window);
        self.window_signatures.clear();
        let delta = self.cache.apply_window(incoming);
        if delta.is_empty() {
            return;
        }
        crate::maintain::dispatch_delta(
            self.maintainer.as_ref(),
            &self.config,
            &self.cache,
            &delta,
            &mut self.isub,
            &mut self.isuper,
            &mut self.stats,
        );
    }

    /// Forces maintenance regardless of window fill (used by harnesses at
    /// warm-up boundaries).
    pub fn flush_window(&mut self) {
        self.run_maintenance();
    }

    /// Exports the cached queries and their answer sets, e.g. to persist a
    /// warm cache across sessions. Window contents are flushed first so
    /// the export is complete.
    pub fn export_cache(&mut self) -> Vec<(Graph, Vec<GraphId>)> {
        self.flush_window();
        self.cache
            .iter()
            .map(|(_, e)| (e.graph.as_ref().clone(), e.answers.clone()))
            .collect()
    }

    /// Seeds the cache with previously exported `(query, answers)` pairs
    /// and updates the query indexes. Intended for warm starts; the
    /// caller is responsible for the answers matching this engine's
    /// dataset (a mismatched import would violate the correctness
    /// guarantees, so entries whose answer ids exceed the dataset are
    /// rejected).
    ///
    /// Returns the number of entries admitted.
    pub fn import_cache(&mut self, entries: Vec<(Graph, Vec<GraphId>)>) -> usize {
        let n = self.method.store().len() as u32;
        let admissible: Vec<WindowEntry> = entries
            .into_iter()
            .filter(|(_, answers)| answers.iter().all(|id| id.raw() < n))
            .map(|(g, answers)| WindowEntry::bare(Arc::new(g), answers))
            .collect();
        let admitted = admissible.len().min(self.config.cache_capacity);
        let delta = self.cache.apply_window(admissible);
        match &self.maintainer {
            Some(m) => {
                // Synchronize so a warm start is immediately probe-visible.
                m.submit(MaintenanceJob::capture(&self.cache, &delta));
                m.sync();
            }
            None => {
                crate::maintain::apply_delta(
                    self.config.maintenance,
                    self.config.path_config,
                    &self.cache,
                    &delta,
                    &mut self.isub,
                    &mut self.isuper,
                );
            }
        }
        admitted
    }

    /// Debug/production sanity check: verifies the engine's internal
    /// invariants (cache within capacity, sorted answer sets), then diffs
    /// the incrementally maintained query indexes against a fresh shadow
    /// rebuild over the cache — any drift between delta maintenance and
    /// the ground-truth rebuild is reported. Under background maintenance
    /// the maintainer is synchronized first and its published snapshot is
    /// diffed. The invariant part is cheap; the index diff re-enumerates
    /// every cached graph, so call this at checkpoints rather than per
    /// query in large deployments.
    pub fn self_check(&self) -> Result<(), String> {
        if self.cache.len() > self.config.cache_capacity {
            return Err(format!(
                "cache over capacity: {} > {}",
                self.cache.len(),
                self.config.cache_capacity
            ));
        }
        for (slot, e) in self.cache.iter() {
            if !e.answers.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("slot {slot}: answers not sorted/unique"));
            }
            let n = self.method.store().len() as u32;
            if e.answers.iter().any(|id| id.raw() >= n) {
                return Err(format!("slot {slot}: answer id out of dataset range"));
            }
        }
        if self.window.len() != self.window_signatures.len() {
            return Err("window/signature length mismatch".into());
        }
        // Index ≡ cache: both indexes must hold exactly the cached slots,
        // with postings identical to a from-scratch rebuild.
        let (isub_snapshot, isuper_snapshot) = match &self.maintainer {
            Some(m) => {
                m.sync();
                let pair = m.snapshot();
                (pair.isub.snapshot(), pair.isuper.snapshot())
            }
            None => (self.isub.snapshot(), self.isuper.snapshot()),
        };
        let graphs = || {
            self.cache
                .iter()
                .map(|(slot, e)| (slot, Arc::clone(&e.graph)))
        };
        let fresh_isub = IsubIndex::build(graphs(), self.config.path_config);
        isub_snapshot
            .diff(&fresh_isub.snapshot())
            .map_err(|e| format!("Isub drifted from shadow rebuild: {e}"))?;
        let fresh_isuper = IsuperIndex::build(graphs(), self.config.path_config);
        isuper_snapshot
            .diff(&fresh_isuper.snapshot())
            .map_err(|e| format!("Isuper drifted from shadow rebuild: {e}"))?;
        Ok(())
    }

    fn filter_and_probe_parallel(
        &self,
        isub: &IsubIndex,
        isuper: &IsuperIndex,
        q: &Graph,
        qf: &PathFeatures,
    ) -> (igq_methods::Filtered, ProbeResult) {
        // Three-thread pipeline of Fig. 6: M's filter, Isub, Isuper — all
        // three sharing the one extracted feature set. The index refs are
        // either the engine's own (synchronous modes) or a published
        // snapshot's (background maintenance).
        let mut filtered = None;
        let mut sub = None;
        let mut sup = None;
        let mut filter_time = std::time::Duration::ZERO;
        let mut probe_time = std::time::Duration::ZERO;
        crossbeam::scope(|scope| {
            let filter_handle = scope.spawn(|_| {
                let t = Instant::now();
                let f = self.method.filter_with_features(q, Some(qf));
                (f, t.elapsed())
            });
            let sub_handle = scope.spawn(|_| {
                let t = Instant::now();
                let r = isub.supergraphs_of(q, qf);
                (r, t.elapsed())
            });
            let sup_handle = scope.spawn(|_| {
                let t = Instant::now();
                let r = isuper.subgraphs_of(q, qf);
                (r, t.elapsed())
            });
            let (f, ft) = filter_handle.join().expect("filter thread");
            let (s, st) = sub_handle.join().expect("isub thread");
            let (p, pt) = sup_handle.join().expect("isuper thread");
            filter_time = ft;
            probe_time = st.max(pt);
            filtered = Some(f);
            sub = Some(s);
            sup = Some(p);
        })
        .expect("probe scope");
        (
            filtered.expect("filter result"),
            ProbeResult {
                sub: sub.expect("isub result"),
                sup: sup.expect("isuper result"),
                filter_time,
                probe_time,
            },
        )
    }
}

struct ProbeResult {
    sub: (Vec<usize>, IsoStats),
    sup: (Vec<usize>, IsoStats),
    filter_time: std::time::Duration,
    probe_time: std::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MaintenanceMode;
    use igq_graph::{graph_from, GraphStore};
    use igq_methods::{Ggsx, GgsxConfig, NaiveMethod};
    use std::sync::Arc;

    fn store() -> Arc<GraphStore> {
        Arc::new(
            vec![
                graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),            // g0
                graph_from(&[0, 1], &[(0, 1)]),                       // g1
                graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]),    // g2
                graph_from(&[0, 1, 2, 0], &[(0, 1), (1, 2), (2, 3)]), // g3
            ]
            .into_iter()
            .collect(),
        )
    }

    fn engine() -> IgqEngine<Ggsx> {
        let s = store();
        let method = Ggsx::build(&s, GgsxConfig::default());
        IgqEngine::new(
            method,
            IgqConfig {
                cache_capacity: 8,
                window: 2,
                ..Default::default()
            },
        )
    }

    fn ids(raw: &[u32]) -> Vec<GraphId> {
        raw.iter().map(|&r| GraphId::new(r)).collect()
    }

    #[test]
    fn answers_match_method_and_oracle() {
        let s = store();
        let naive = NaiveMethod::build(&s);
        let mut e = engine();
        for q in [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[0, 1], &[(0, 1)]), // repeat
            graph_from(&[9], &[]),
        ] {
            let out = e.query(&q);
            let (truth, _) = naive.query(&q);
            assert_eq!(out.answers, truth, "query {q:?}");
        }
    }

    #[test]
    fn exact_repeat_hits_after_maintenance() {
        let mut e = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = e.query(&q);
        assert_eq!(first.resolution, Resolution::Verified);
        // Window = 2: a second distinct query flushes the window.
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.db_iso_tests, 0);
        assert_eq!(repeat.answers, first.answers);
        assert_eq!(e.stats().exact_hits, 1);
    }

    #[test]
    fn exact_fastpath_skips_probe_iso_tests() {
        let s = store();
        let mk = |fastpath| {
            let method = Ggsx::build(&s, GgsxConfig::default());
            IgqEngine::new(
                method,
                IgqConfig {
                    cache_capacity: 8,
                    window: 1,
                    exact_fastpath: fastpath,
                    ..Default::default()
                },
            )
        };
        let q = graph_from(&[0, 1], &[(0, 1)]);
        for fastpath in [true, false] {
            let mut e = mk(fastpath);
            let first = e.query(&q);
            let repeat = e.query(&q);
            assert_eq!(
                repeat.resolution,
                Resolution::ExactHit,
                "fastpath={fastpath}"
            );
            assert_eq!(repeat.answers, first.answers);
            assert_eq!(repeat.db_iso_tests, 0);
            if fastpath {
                // The fast path resolves repeats without probing the query
                // indexes at all.
                assert_eq!(repeat.igq_iso_tests, 0, "no probe tests on the fast path");
            } else {
                assert!(repeat.igq_iso_tests > 0, "probe path pays iso tests");
            }
        }
    }

    #[test]
    fn isomorphic_not_identical_repeat_also_hits() {
        let mut e = engine();
        let q1 = graph_from(&[0, 1], &[(0, 1)]);
        let q2 = graph_from(&[1, 0], &[(0, 1)]); // same graph, relabeled
        let first = e.query(&q1);
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        let repeat = e.query(&q2);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.answers, first.answers);
    }

    #[test]
    fn empty_answer_shortcut_fires() {
        let mut e = engine();
        // 9-9 edge: no dataset graph contains it → empty answer cached.
        let empty_q = graph_from(&[9, 9], &[(0, 1)]);
        let first = e.query(&empty_q);
        assert!(first.answers.is_empty());
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        // A supergraph of the cached empty-answer query.
        let bigger = graph_from(&[9, 9, 9], &[(0, 1), (1, 2)]);
        let out = e.query(&bigger);
        assert_eq!(out.resolution, Resolution::EmptyAnswerShortcut);
        assert!(out.answers.is_empty());
        assert_eq!(out.db_iso_tests, 0);
    }

    #[test]
    fn subgraph_case_prunes_and_restores_answers() {
        let mut e = engine();
        // Cache the big query first: 0-1-0 path answered by {g0}.
        let big = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let big_out = e.query(&big);
        assert_eq!(big_out.answers, ids(&[0]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        // Now the smaller query 0-1: g ⊆ big, so Answer(big) = {g0} must be
        // skipped during verification yet appear in the final answer.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let out = e.query(&small);
        assert!(out.isub_hits >= 1);
        assert!(out.pruned_by_isub >= 1);
        assert_eq!(out.answers, ids(&[0, 1, 3]));
        assert!(out.db_iso_tests < out.candidates_before as u64);
    }

    #[test]
    fn supergraph_case_prunes_non_answers() {
        let mut e = engine();
        // Cache the small query: 0-1 edge → answers {g0, g1, g3}.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let small_out = e.query(&small);
        assert_eq!(small_out.answers, ids(&[0, 1, 3]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        // Bigger query containing the cached one: candidates outside
        // Answer(small) are pruned by formula (5).
        let big = graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let out = e.query(&big);
        assert!(out.isuper_hits >= 1);
        assert_eq!(out.answers, ids(&[3]));
    }

    #[test]
    fn window_and_cache_mechanics() {
        let mut e = engine();
        assert_eq!(e.cached_queries(), 0);
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        assert_eq!(e.cached_queries(), 0); // still in window
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert_eq!(e.cached_queries(), 2); // window flushed at W=2
        assert_eq!(e.stats().maintenances, 1);
    }

    #[test]
    fn duplicate_window_entries_are_not_double_cached() {
        let mut e = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let _ = e.query(&q);
        let _ = e.query(&q); // same query again, still in window
        e.flush_window();
        assert_eq!(e.cached_queries(), 1);
    }

    #[test]
    fn parallel_probes_agree_with_sequential() {
        let s = store();
        let mk = |parallel| {
            let method = Ggsx::build(&s, GgsxConfig::default());
            IgqEngine::new(
                method,
                IgqConfig {
                    cache_capacity: 8,
                    window: 2,
                    parallel_probes: parallel,
                    ..Default::default()
                },
            )
        };
        let mut seq = mk(false);
        let mut par = mk(true);
        for q in [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[0, 1], &[(0, 1)]),
        ] {
            assert_eq!(seq.query(&q).answers, par.query(&q).answers);
        }
    }

    #[test]
    fn igq_index_size_grows_with_cache() {
        let mut e = engine();
        let empty = e.igq_index_size_bytes();
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert!(e.igq_index_size_bytes() > empty);
    }

    #[test]
    fn export_import_warm_start() {
        let mut warm = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = warm.query(&q);
        let exported = warm.export_cache();
        assert_eq!(exported.len(), 1);

        let mut cold = engine();
        assert_eq!(cold.import_cache(exported), 1);
        let out = cold.query(&q);
        assert_eq!(out.resolution, Resolution::ExactHit);
        assert_eq!(out.answers, first.answers);
        cold.self_check().expect("invariants hold after import");
    }

    #[test]
    fn import_rejects_out_of_range_answers() {
        let mut e = engine();
        let alien = vec![(graph_from(&[0, 1], &[(0, 1)]), vec![GraphId::new(999)])];
        assert_eq!(e.import_cache(alien), 0);
        assert_eq!(e.cached_queries(), 0);
    }

    fn workload() -> Vec<Graph> {
        vec![
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]),
            graph_from(&[9, 9], &[(0, 1)]),
            graph_from(&[0, 1], &[(0, 1)]), // repeat
            graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]),
            graph_from(&[1, 0], &[(0, 1)]), // isomorphic repeat
            graph_from(&[0], &[]),
            graph_from(&[2], &[]),
        ]
    }

    fn engine_with_mode(mode: MaintenanceMode, capacity: usize, window: usize) -> IgqEngine<Ggsx> {
        let s = store();
        let method = Ggsx::build(&s, GgsxConfig::default());
        IgqEngine::new(
            method,
            IgqConfig {
                cache_capacity: capacity,
                window,
                maintenance: mode,
                ..Default::default()
            },
        )
    }

    #[test]
    fn incremental_mode_performs_no_full_rebuild() {
        // Tiny capacity + window force heavy churn: every window must
        // evict. Steady-state maintenance still never rebuilds.
        let mut e = engine_with_mode(MaintenanceMode::Incremental, 2, 1);
        for q in workload() {
            let _ = e.query(&q);
        }
        assert!(
            e.stats().maintenances >= 5,
            "windows of 1 maintain almost every query"
        );
        assert_eq!(
            e.stats().full_rebuilds,
            0,
            "incremental mode never rebuilds"
        );
        assert!(e.stats().maintenance_postings_touched > 0);
        e.self_check()
            .expect("incremental indexes match a fresh rebuild");
    }

    #[test]
    fn shadow_mode_rebuilds_every_maintenance() {
        let mut e = engine_with_mode(MaintenanceMode::ShadowRebuild, 2, 1);
        for q in workload() {
            let _ = e.query(&q);
        }
        assert!(e.stats().maintenances >= 5);
        assert_eq!(e.stats().full_rebuilds, e.stats().maintenances);
        assert_eq!(e.stats().maintenance_postings_touched, 0);
        e.self_check()
            .expect("rebuilt indexes are trivially consistent");
    }

    #[test]
    fn maintenance_modes_agree_on_answers_and_hits() {
        let mut inc = engine_with_mode(MaintenanceMode::Incremental, 3, 2);
        let mut shadow = engine_with_mode(MaintenanceMode::ShadowRebuild, 3, 2);
        for q in workload() {
            let a = inc.query(&q);
            let b = shadow.query(&q);
            assert_eq!(a.answers, b.answers, "answers diverge for {q:?}");
            assert_eq!(a.resolution, b.resolution, "resolution diverges for {q:?}");
            assert_eq!(a.isub_hits, b.isub_hits, "isub hits diverge for {q:?}");
            assert_eq!(
                a.isuper_hits, b.isuper_hits,
                "isuper hits diverge for {q:?}"
            );
        }
        assert_eq!(inc.cached_queries(), shadow.cached_queries());
    }

    #[test]
    fn query_features_are_extracted_exactly_once() {
        // Window larger than the workload so no maintenance (whose
        // admissions legitimately re-enumerate) runs mid-measurement.
        let mut e = engine_with_mode(MaintenanceMode::Incremental, 8, 8);
        let warm = graph_from(&[0, 1], &[(0, 1)]);
        let _ = e.query(&warm);
        for q in [
            graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]),
            graph_from(&[2, 2], &[(0, 1)]),
        ] {
            let before = igq_features::thread_enumeration_count();
            let queries_before = e.stats().queries;
            let extractions_before = e.stats().feature_extractions;
            let _ = e.query(&q);
            let enumerations = igq_features::thread_enumeration_count() - before;
            assert_eq!(
                enumerations, 1,
                "filter + both probes must share one path enumeration for {q:?}"
            );
            assert_eq!(e.stats().queries - queries_before, 1);
            assert_eq!(e.stats().feature_extractions - extractions_before, 1);
        }
    }

    #[test]
    fn exact_fastpath_skips_extraction_entirely() {
        let mut e = engine_with_mode(MaintenanceMode::Incremental, 8, 1);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let _ = e.query(&q);
        let before = igq_features::thread_enumeration_count();
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(
            igq_features::thread_enumeration_count() - before,
            0,
            "canonical-code repeats resolve with zero enumerations"
        );
    }

    #[test]
    fn self_check_passes_through_lifecycle() {
        let mut e = engine();
        e.self_check().expect("fresh engine");
        for q in [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
        ] {
            let _ = e.query(&q);
            e.self_check().expect("mid-stream");
        }
    }

    #[test]
    fn background_mode_answers_match_oracle() {
        let s = store();
        let naive = NaiveMethod::build(&s);
        let mut e = engine_with_mode(MaintenanceMode::Background, 3, 1);
        for q in workload() {
            let out = e.query(&q);
            let (truth, _) = naive.query(&q);
            assert_eq!(out.answers, truth, "query {q:?}");
        }
        let st = e.stats();
        assert!(st.maintenances >= 5, "windows of 1 maintain frequently");
        assert_eq!(st.full_rebuilds, 0, "background mode never rebuilds");
        e.self_check()
            .expect("published snapshot matches a fresh rebuild after sync");
        let st = e.stats();
        assert!(st.snapshot_publishes >= 1, "snapshots were published");
        assert!(st.maintenance_postings_touched > 0);
        assert!(
            st.maintenance_lag_windows <= e.config().max_lag_windows as u64,
            "peak lag {} exceeded the configured bound {}",
            st.maintenance_lag_windows,
            e.config().max_lag_windows
        );
    }

    #[test]
    fn background_exact_repeat_still_hits_via_cache_code_index() {
        // The exact-repeat fast path reads the cache's code index, which
        // lives on the query thread and is always current — repeats hit
        // even while the index snapshot lags.
        let mut e = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = e.query(&q);
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.answers, first.answers);
    }

    #[test]
    fn background_probes_hit_after_sync() {
        let mut e = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let big = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let _ = e.query(&big);
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)])); // flush W=2
        e.sync_maintenance();
        // With the snapshot caught up, the cached supergraph prunes the
        // smaller query exactly as Incremental would.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let out = e.query(&small);
        assert!(out.isub_hits >= 1, "synced snapshot serves probe hits");
        assert_eq!(out.answers, ids(&[0, 1, 3]));
    }

    #[test]
    fn background_parallel_probes_agree_with_sequential() {
        let s = store();
        let mk = |parallel| {
            let method = Ggsx::build(&s, GgsxConfig::default());
            IgqEngine::new(
                method,
                IgqConfig {
                    cache_capacity: 8,
                    window: 2,
                    parallel_probes: parallel,
                    maintenance: MaintenanceMode::Background,
                    ..Default::default()
                },
            )
        };
        let mut seq = mk(false);
        let mut par = mk(true);
        for q in workload() {
            assert_eq!(seq.query(&q).answers, par.query(&q).answers);
        }
    }

    #[test]
    fn background_export_import_warm_start() {
        let mut warm = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = warm.query(&q);
        let exported = warm.export_cache();
        assert_eq!(exported.len(), 1);

        let mut cold = engine_with_mode(MaintenanceMode::Background, 8, 2);
        assert_eq!(cold.import_cache(exported), 1);
        // import_cache syncs, so the warm entries are immediately
        // probe-visible even with the exact fast path disabled.
        let out = cold.query(&q);
        assert_eq!(out.resolution, Resolution::ExactHit);
        assert_eq!(out.answers, first.answers);
        cold.self_check().expect("invariants hold after import");
    }

    #[test]
    fn background_index_size_reads_published_snapshot() {
        // The engine-owned indexes stay empty under background
        // maintenance; the footprint must come from the published
        // snapshot, matching what the synchronous mode reports.
        let queries = [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
        ];
        let mut bg = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let mut inc = engine_with_mode(MaintenanceMode::Incremental, 8, 2);
        let empty = bg.igq_index_size_bytes();
        for q in &queries {
            let _ = bg.query(q);
            let _ = inc.query(q);
        }
        bg.sync_maintenance();
        assert!(bg.igq_index_size_bytes() > empty);
        assert_eq!(
            bg.igq_index_size_bytes(),
            inc.igq_index_size_bytes(),
            "same cache contents must report the same iGQ footprint"
        );
    }

    #[test]
    fn background_engine_drop_joins_cleanly_with_pending_work() {
        let mut e = engine_with_mode(MaintenanceMode::Background, 4, 1);
        for q in workload() {
            let _ = e.query(&q);
        }
        drop(e); // must drain the delta queue and join without panicking
    }
}
