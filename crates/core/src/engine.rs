//! The unified iGQ query engine (paper Sections 4.2–4.4, 5, and Fig. 6):
//! one concurrently shareable pipeline, generic over the query
//! [`QueryDirection`].
//!
//! [`Engine<D>`] wraps a dataset method and runs the full iGQ pipeline per
//! query `g`:
//!
//! 1. the direction's filter produces the candidate set `CS(g)` (no false
//!    negatives);
//! 2. the query indexes are probed: one side yields cached queries whose
//!    stored answers are *known answers*, the other cached queries whose
//!    answers *bound* the candidates (which side is which is the
//!    direction's [`KNOWN_IS_ISUB`](QueryDirection::KNOWN_IS_ISUB));
//! 3. optimal cases (Section 4.3): an exact repeat returns the stored
//!    answer outright; a cached bounding query with an empty answer proves
//!    the answer empty;
//! 4. pruning: `CS_igq = (CS \ ∪ known) ∩ (∩ bounds)` (formulas (3) and
//!    (5), inverted per Section 4.4 for supergraph queries);
//! 5. verification of the survivors;
//! 6. the final answer adds back the known answers (formula (4));
//! 7. bookkeeping: metadata updates (Section 5.1) and window maintenance
//!    (Section 5.2) in the configured [`MaintenanceMode`].
//!
//! # Concurrency model
//!
//! `query` takes `&self`: the engine is a shared service, `Send + Sync`,
//! fanned out across threads through a cheap [`crate::EngineHandle`]
//! clone. Internally the mutable state is **sharded by canonical-code
//! hash** ([`IgqConfig::builder().shards(n)`](crate::IgqConfigBuilder::shards),
//! default 1): each shard holds its partition of the [`QueryCache`] and
//! its own live `Isub`/`Isuper` pair behind its own
//! [`parking_lot::RwLock`], while a small control block (admission
//! window, cost model, flip ordinal, global slot allocator) has its own
//! lock; lifetime counters are lock-free atomics
//! ([`crate::EngineStats`]). Probes scatter across shards and the
//! candidate sets gather before the shared verify path; at one shard the
//! behavior is bit-for-bit the pre-sharding engine. The expensive stages
//! (feature extraction, the base filter, verification) run outside the
//! locks (one exception: with [`IgqConfig::parallel_probes`] in a
//! synchronous maintenance mode the Fig. 6 filter thread runs inside the
//! lock window, since the probe threads borrow the live indexes from the
//! same guards); under [`MaintenanceMode::Background`] each shard's
//! probes also run lock-free against that shard's published snapshot, and
//! every snapshot hit is revalidated against the live cache (slot
//! occupied, graph `Arc`-identical) before its stored answers are
//! trusted — staleness, or a concurrent eviction between probe and
//! bookkeeping, only costs pruning power, never exactness. See
//! `ARCHITECTURE.md` for the lock layout.
//!
//! The concrete engines are type aliases over the two directions:
//! [`IgqEngine`] (subgraph queries over any [`SubgraphMethod`]) and
//! [`crate::IgqSuperEngine`] (supergraph queries); the seed's duplicated
//! per-direction pipelines are gone.
//!
//! # Durability
//!
//! An engine constructed with [`Engine::open`] over a
//! [`CacheStore`] is **durable**: every
//! window flip is captured as a WAL record (pushed under the state lock,
//! appended to storage off it, riding the same outbox drain as
//! background-maintenance jobs), checkpoints are written on a configured
//! cadence ([`crate::config::PersistenceConfig`]) or explicitly
//! ([`Engine::checkpoint`]), and a restart recovers the cache, both
//! query indexes, and the replacement state warm — observationally
//! identical to never restarting. See the [`crate::persist`] module docs
//! for formats and the recovery protocol.
//!
//! Correctness (Theorems 1 and 2) is exercised end-to-end by the
//! integration suite: the engine's answers are compared against the naive
//! oracle on randomized workloads, in all maintenance modes, sequentially
//! and from concurrent threads sharing one engine.
//!
//! [`MaintenanceMode`]: crate::config::MaintenanceMode
//! [`MaintenanceMode::Background`]: crate::config::MaintenanceMode::Background
//! [`SubgraphMethod`]: igq_methods::SubgraphMethod

use crate::api::{QueryOptions, QueryRequest, QueryResponse};
use crate::background::{retain_current_slots, BackgroundMaintainer, IndexPair};
use crate::cache::{CacheEntry, QueryCache, WindowDelta, WindowEntry};
use crate::config::{ConfigError, IgqConfig};
use crate::direction::{QueryDirection, SubgraphQueries};
use crate::isub::IsubIndex;
use crate::isuper::IsuperIndex;
use crate::maintain::MaintenanceJob;
use crate::outcome::{QueryOutcome, Resolution};
use crate::persist::{self, CacheStore, PersistError};
use crate::replicate::{DeltaGroup, ReplicaError, ReplicationHub, Subscription};
use crate::shard::{self, ShardRouter, SlotAlloc};
use crate::stats::{AtomicEngineStats, EngineStats};
use igq_features::{enumerate_paths, LabelSeq, PathFeatures};
use igq_graph::canon::{canonical_code, CanonicalCode, GraphSignature};
use igq_graph::stats::DatasetStats;
use igq_graph::{Graph, GraphId};
use igq_iso::plan_cache::PlanCache;
use igq_iso::{CostModel, IsoStats, LogValue};
use igq_methods::{
    intersect_into, intersect_sorted, subtract_into, subtract_sorted, Filtered, PlanSource,
};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The iGQ engine for subgraph queries: [`Engine`] in the
/// [`SubgraphQueries`] direction, wrapping any
/// [`SubgraphMethod`](igq_methods::SubgraphMethod) `M`.
pub type IgqEngine<M> = Engine<SubgraphQueries<M>>;

/// The engine-global mutable state behind its own lock: the admission
/// window, the memoizing cost model, the flip ordinal, and — with more
/// than one shard — the global slot allocator and the slot → shard
/// ownership table. Lock order: `ctl` before any shard state, shards in
/// ascending index order.
struct Control {
    /// `Itemp`: processed-but-not-yet-indexed queries.
    window: Vec<WindowEntry>,
    window_signatures: Vec<GraphSignature>,
    cost_model: CostModel,
    /// Flip ordinal: how many non-empty window flips this engine's cache
    /// has absorbed (including recovered history). Each persisted WAL
    /// record carries the flip's `seq`; recovery resumes from the highest
    /// replayed value.
    seq: u64,
    /// The global slot allocator (authoritative only with > 1 shard; the
    /// single-shard cache manages its own slots, bit-for-bit as before
    /// sharding existed).
    alloc: SlotAlloc,
    /// Slot → owning shard (maintained only with > 1 shard; entries for
    /// free slots are stale and overwritten on reuse).
    slot_owner: Vec<usize>,
}

/// One shard's lock-protected state: its partition of the query cache and
/// the live query indexes over it (empty under background maintenance,
/// where the shard's maintainer owns the authoritative copies).
struct ShardState {
    cache: QueryCache,
    isub: IsubIndex,
    isuper: IsuperIndex,
}

/// One shard: its state lock plus its own maintenance plumbing, so flips
/// and lag-gated submits only ever contend within a shard.
struct ShardCell {
    state: RwLock<ShardState>,
    /// The shard's maintenance thread (`Some` iff the mode is
    /// [`MaintenanceMode::Background`](crate::MaintenanceMode::Background)).
    /// Its own `Drop` drains the delta queue and joins the thread.
    maintainer: Option<BackgroundMaintainer>,
    /// Captured-but-not-yet-submitted window deltas for this shard, in
    /// cache order. Jobs are pushed under the shard's write lock (so
    /// their order is the order the shard changed in) but *submitted*
    /// outside it via [`Engine::drain_outbox`] — the bounded-lag gate can
    /// sleep without stalling every other caller's bookkeeping. This lock
    /// is only ever held for a push or a pop, never across a gated submit
    /// (that is `submit_lock`'s job), so a pusher holding the state write
    /// lock never waits behind a sleeping gate.
    outbox: Mutex<VecDeque<MaintenanceJob>>,
    /// Serializes this shard's outbox drain so jobs are submitted in
    /// exactly their outbox (= cache) order. Held across the gated
    /// submits; never acquired while holding any state *write* lock or
    /// the outbox lock (a state *read* guard is fine — see
    /// [`Engine::self_check`] — because the gate clears without any
    /// engine lock).
    submit_lock: Mutex<()>,
}

/// The full write view: the control lock plus every shard's write lock,
/// acquired in the fixed order (`ctl`, then shards ascending).
struct WriteGuards<'a> {
    ctl: RwLockWriteGuard<'a, Control>,
    shards: Vec<RwLockWriteGuard<'a, ShardState>>,
}

/// The full read view, same acquisition order as [`WriteGuards`].
struct ReadGuards<'a> {
    ctl: RwLockReadGuard<'a, Control>,
    shards: Vec<RwLockReadGuard<'a, ShardState>>,
}

/// The cache entry at a global `slot`, looked up through its owning shard
/// (constant shard 0 when unsharded). Free functions rather than
/// `WriteGuards` methods so callers can hold disjoint borrows of the
/// control guard (cost model) and the shard guards (entries) at once.
fn slot_entry<'a>(
    ctl: &Control,
    shards: &'a [RwLockWriteGuard<'_, ShardState>],
    slot: usize,
) -> &'a CacheEntry {
    let owner = if shards.len() == 1 {
        0
    } else {
        ctl.slot_owner[slot]
    };
    shards[owner].cache.entry(slot)
}

/// Mutable twin of [`slot_entry`].
fn slot_entry_mut<'a>(
    ctl: &Control,
    shards: &'a mut [RwLockWriteGuard<'_, ShardState>],
    slot: usize,
) -> &'a mut CacheEntry {
    let owner = if shards.len() == 1 {
        0
    } else {
        ctl.slot_owner[slot]
    };
    shards[owner].cache.entry_mut(slot)
}

/// Persistence control for a store-attached engine ([`Engine::open`]).
struct PersistCtl {
    store: Arc<dyn CacheStore>,
    config_fp: u64,
    dataset_fp: u64,
    /// Codec every artifact is *written* in (reads auto-detect), from
    /// [`crate::config::PersistenceConfig::codec`].
    codec: crate::config::StoreCodec,
    /// Auto-checkpoint cadence in WAL appends; `None` = manual only.
    checkpoint_every: Option<u64>,
    /// WAL records appended since the last checkpoint (reset on
    /// checkpoint to the compacted tail length).
    appends_since_checkpoint: AtomicU64,
    /// One checkpointer at a time; the auto path skips (try-lock) rather
    /// than queue up behind an in-flight checkpoint.
    checkpoint_lock: Mutex<()>,
    /// Typed degraded mode: set when a WAL append fails. The engine keeps
    /// serving exactly; the failed flip group (and every later one) is
    /// **quarantined** in [`PersistCtl::quarantine`] rather than dropped,
    /// and retried with exponential backoff on subsequent drains. Cleared
    /// when the quarantine fully replays or a checkpoint — which rewrites
    /// the WAL wholesale and re-covers every flip — succeeds.
    degraded: AtomicBool,
    /// Human-readable cause of the current degraded mode (the first
    /// failure's error text); empty when healthy. Surfaced through
    /// [`EngineStats::degraded_reason`].
    degraded_reason: Mutex<String>,
    /// Encoded-but-unappended flip groups in flip order: `(seq, bytes)`
    /// pairs held after an append failure so durability is restored —
    /// not merely resumed — once the store recovers. All I/O on these
    /// happens under `wal_lock`, preserving append order.
    quarantine: Mutex<VecDeque<(u64, Vec<u8>)>>,
    /// Earliest instant the next quarantine retry may run (exponential
    /// backoff between failed retries, so a dead disk is not hammered on
    /// every flip).
    retry_not_before: Mutex<Option<Instant>>,
    /// Consecutive failed retry rounds; drives the backoff exponent.
    retry_strikes: AtomicU64,
    /// Set when a failed append may have left a partial record at the end
    /// of the on-disk log: appending more before repairing would turn a
    /// tolerable torn tail into a mid-log hole recovery must reject. The
    /// retry path first rewrites the log minus the torn bytes
    /// ([`persist::compact_wal_with`] at seq 0), then replays the
    /// quarantine.
    tail_suspect: AtomicBool,
}

/// Backoff floor/ceiling between quarantine retry rounds.
const WAL_RETRY_FLOOR: Duration = Duration::from_millis(50);
const WAL_RETRY_CEIL: Duration = Duration::from_secs(5);

/// What [`Engine::import_entries`] did with each input entry. Every entry
/// is accounted for: `admitted + skipped_capacity + skipped_invalid`
/// equals the input length — nothing is dropped silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportReport {
    /// Entries admitted into the cache (in input order).
    pub admitted: usize,
    /// Valid entries skipped because the batch exceeded the cache
    /// capacity; the skipped entries are the **tail** of the valid input.
    pub skipped_capacity: usize,
    /// Entries rejected because an answer id lies outside this engine's
    /// dataset (they cannot be correct here).
    pub skipped_invalid: usize,
}

/// The unified, concurrently shareable iGQ engine; see the module docs.
/// Use the [`IgqEngine`] / [`crate::IgqSuperEngine`] aliases.
pub struct Engine<D: QueryDirection> {
    method: D::Method,
    config: IgqConfig,
    /// Engine-global mutable state; always acquired before any shard.
    ctl: RwLock<Control>,
    /// The sharded mutable trio (`config.shards` cells; one = unsharded).
    shards: Box<[ShardCell]>,
    /// Deterministic canonical-code → shard routing.
    router: ShardRouter,
    /// Captured-but-not-yet-appended WAL flip groups (one group of
    /// per-shard records per flip), in flip order — the persistence twin
    /// of the shard outboxes: pushed under the full write view (group
    /// order = flip order), appended to the store in
    /// [`Engine::drain_outbox`] after the locks are released, so storage
    /// I/O never sits on a state lock. Empty for engines without a
    /// [`CacheStore`].
    wal_outbox: Mutex<VecDeque<Vec<persist::WalRecord>>>,
    /// Serializes WAL appends (and compaction) so groups land in exactly
    /// their outbox (= flip) order; never acquired while holding any
    /// state write lock.
    wal_lock: Mutex<()>,
    /// `Some` iff the engine was attached to a [`CacheStore`] via
    /// [`Engine::open`].
    persist: Option<PersistCtl>,
    /// Primary-side replication fan-out. Inert (and cost-free on the
    /// flip path) until the first [`Engine::subscribe_replication`]
    /// activates it; from then on every committed flip group is
    /// published through it, post-append, in flip order.
    hub: ReplicationHub,
    /// `true` for a follower ([`Engine::open_follower`]): the engine
    /// replays delta groups from a primary, serves read-only queries
    /// (no window admission), and rejects write-path operations with a
    /// typed [`ReplicaError`]. Atomic because [`Engine::promote`] flips
    /// it to `false` at failover.
    follower: AtomicBool,
    /// Failover epoch: bumped by every [`Engine::promote`], persisted in
    /// checkpoints and the WAL header, and stamped on every published
    /// delta group so a deposed primary's stream is fenced
    /// ([`ReplicaError::EpochFenced`]) instead of silently applied.
    epoch: AtomicU64,
    /// Canonical-code keyed matching-plan cache, shared by the verify
    /// stage and both index probes. Internally sharded and lock-striped,
    /// so it lives outside the state lock; entries are evicted alongside
    /// their queries via [`WindowDelta::evicted_codes`].
    plan_cache: PlanCache,
    stats: AtomicEngineStats,
    _direction: PhantomData<fn() -> D>,
}

/// Engine state reconstituted from a checkpoint (or a cold start when
/// the store held none): the shared first half of [`Engine::open`] and
/// [`Engine::open_follower`].
struct Restored {
    caches: Vec<QueryCache>,
    alloc: SlotAlloc,
    slot_owner: Vec<usize>,
    isubs: Vec<IsubIndex>,
    isupers: Vec<IsuperIndex>,
    window: Vec<WindowEntry>,
    seq: u64,
}

impl<D: QueryDirection> Engine<D> {
    /// Wraps `method` with an (initially empty) iGQ cache.
    ///
    /// `config` is validated ([`IgqConfig::validate`]); an invalid
    /// combination — built by hand rather than through
    /// [`IgqConfig::builder`] — is rejected with the same [`ConfigError`]
    /// the builder would have raised.
    pub fn new(method: D::Method, config: IgqConfig) -> Result<Engine<D>, ConfigError> {
        config.validate()?;
        let labels = Self::resolve_labels(&method, &config);
        let ctl = Control {
            window: Vec::new(),
            window_signatures: Vec::new(),
            cost_model: CostModel::new(labels),
            seq: 0,
            alloc: SlotAlloc::default(),
            slot_owner: Vec::new(),
        };
        let cells: Vec<ShardCell> = (0..config.shards)
            .map(|_| ShardCell {
                state: RwLock::new(ShardState {
                    cache: QueryCache::with_policy(config.cache_capacity, config.policy),
                    isub: IsubIndex::new(config.path_config),
                    isuper: IsuperIndex::new(config.path_config),
                }),
                maintainer: BackgroundMaintainer::for_config(&config),
                outbox: Mutex::new(VecDeque::new()),
                submit_lock: Mutex::new(()),
            })
            .collect();
        Ok(Self::assemble(method, config, ctl, cells, None, false))
    }

    /// Label-universe size for the cost model: configured, or derived
    /// from the dataset.
    fn resolve_labels(method: &D::Method, config: &IgqConfig) -> usize {
        if config.label_universe > 0 {
            config.label_universe
        } else {
            DatasetStats::of(D::store(method)).vertex_labels.max(1)
        }
    }

    fn assemble(
        method: D::Method,
        config: IgqConfig,
        ctl: Control,
        cells: Vec<ShardCell>,
        persist: Option<PersistCtl>,
        follower: bool,
    ) -> Engine<D> {
        // Plans are cheap relative to cached answer sets: hold a few per
        // resident (distinct configs, probe-side patterns) with headroom
        // for small caches so repeated streams never thrash.
        let plan_capacity = (4 * config.cache_capacity).max(512);
        let router = ShardRouter::new(config.shards);
        Engine {
            method,
            config,
            ctl: RwLock::new(ctl),
            shards: cells.into_boxed_slice(),
            router,
            wal_outbox: Mutex::new(VecDeque::new()),
            wal_lock: Mutex::new(()),
            persist,
            hub: ReplicationHub::new(),
            follower: AtomicBool::new(follower),
            epoch: AtomicU64::new(0),
            plan_cache: PlanCache::new(plan_capacity),
            stats: AtomicEngineStats::default(),
            _direction: PhantomData,
        }
    }

    /// Acquires the full write view in the fixed lock order.
    fn lock_write(&self) -> WriteGuards<'_> {
        let ctl = self.ctl.write();
        let shards = self.shards.iter().map(|c| c.state.write()).collect();
        WriteGuards { ctl, shards }
    }

    /// Acquires the full read view in the fixed lock order. Flips take
    /// every write lock, so a read view is always flip-consistent.
    fn lock_read(&self) -> ReadGuards<'_> {
        let ctl = self.ctl.read();
        let shards = self.shards.iter().map(|c| c.state.read()).collect();
        ReadGuards { ctl, shards }
    }

    /// Opens a **durable** engine over `store`: recovers the cache, both
    /// query indexes, the pending admission window, and the replacement
    /// state from the last checkpoint plus the WAL tail, then keeps the
    /// store up to date — one WAL record per window flip (appended off
    /// the state lock, riding the maintenance outbox drain) and a fresh
    /// checkpoint every [`PersistenceConfig::checkpoint_every_windows`]
    /// flips (plus any explicit [`checkpoint`](Engine::checkpoint) call).
    ///
    /// A store written under a different config fingerprint (cache
    /// geometry, path features, policy, label universe) or dataset is
    /// rejected with a typed [`PersistError`] — recovered answers are
    /// only exact against the state that produced them. A torn final WAL
    /// record (crash mid-append) is dropped with a warning; any other
    /// damage is an error, never a silent cold start. An empty store
    /// yields a cold engine that is persistent from its first flip.
    ///
    /// The recovered engine is observationally identical to one that
    /// never restarted, as of the last persisted flip (see the
    /// [`persist`] module docs for the exact guarantee);
    /// [`EngineStats::recovery_replayed_windows`] reports the replayed
    /// tail length.
    ///
    /// [`PersistenceConfig::checkpoint_every_windows`]:
    ///     crate::config::PersistenceConfig::checkpoint_every_windows
    pub fn open(
        method: D::Method,
        config: IgqConfig,
        store: Arc<dyn CacheStore>,
    ) -> Result<Engine<D>, PersistError> {
        config.validate()?;
        let labels = Self::resolve_labels(&method, &config);
        let config_fp = persist::config_fingerprint(&config, D::direction_name());
        let dataset_fp = persist::dataset_fingerprint(D::store(&method));
        let check_fps = |found_config: u64, found_dataset: u64| -> Result<(), PersistError> {
            if found_config != config_fp {
                return Err(PersistError::ConfigMismatch {
                    expected: config_fp,
                    found: found_config,
                });
            }
            if found_dataset != dataset_fp {
                return Err(PersistError::DatasetMismatch {
                    expected: dataset_fp,
                    found: found_dataset,
                });
            }
            Ok(())
        };

        let checkpoint = match store.load_checkpoint()? {
            Some(bytes) => {
                let data = persist::decode_checkpoint(&bytes)?;
                check_fps(data.config_fp, data.dataset_fp)?;
                // The persisted label universe is derived from the same
                // config + dataset the fingerprints cover; a disagreement
                // means the artifact is internally inconsistent (the
                // replacement metadata was accumulated under a different
                // cost model).
                if data.labels != labels {
                    return Err(PersistError::Corrupt(format!(
                        "checkpoint label universe {} does not match the engine's {labels}",
                        data.labels
                    )));
                }
                // Routing is deterministic *per shard count*: a store
                // written under a different partition cannot be replayed
                // into this one (slots would land on the wrong shards).
                if data.shards != config.shards {
                    return Err(PersistError::ShardMismatch {
                        expected: config.shards,
                        found: data.shards,
                    });
                }
                Some(data)
            }
            None => None,
        };
        let wal = persist::parse_wal(&store.load_wal()?)?;
        if let Some(h) = &wal.header {
            check_fps(h.config_fp, h.dataset_fp)?;
            if h.shards != config.shards {
                return Err(PersistError::ShardMismatch {
                    expected: config.shards,
                    found: h.shards,
                });
            }
        }
        // The failover epoch survives restarts: a promoted-then-restarted
        // primary must keep fencing its predecessor's stream. Either
        // artifact may be the newer one (checkpoint cadence vs. WAL
        // header rewrite), so take the max.
        let epoch = checkpoint
            .as_ref()
            .map_or(0, |d| d.epoch)
            .max(wal.header.as_ref().map_or(0, |h| h.epoch));
        // Group the records into flip groups (a multi-shard flip appends
        // one record per shard, all carrying the flip's seq). A trailing
        // incomplete group is a torn tail, exactly like a torn final line.
        let (flip_groups, torn_group) = persist::split_flip_groups(wal.records)?;
        if wal.torn_tail || torn_group {
            eprintln!(
                "igq: warning: WAL ends in a torn record (crash mid-append); \
                 truncating to the last intact flip"
            );
        }

        // Reconstitute the cache partition and both index families from
        // the checkpoint — no re-enumeration, no re-canonicalization: the
        // persisted feature sets feed `insert_features` directly. With
        // more than one shard, entries land back on their owning shard by
        // re-running the deterministic router; with one, the original
        // restore path (and its validation) is untouched.
        let path_config = config.path_config;
        let n = config.shards;
        let router = ShardRouter::new(n);
        let Restored {
            mut caches,
            mut alloc,
            mut slot_owner,
            mut isubs,
            mut isupers,
            window,
            mut seq,
        } = Self::restore_from_checkpoint(&config, &router, checkpoint)?;

        // Replay the WAL tail flip group by flip group: recorded
        // evictions/admissions re-applied verbatim (the policy is not
        // re-run), indexes updated incrementally, the final flip's
        // metadata tables restored last. An unsharded group is one
        // record replayed through the cache's own free list; a sharded
        // group reconstructs the global allocator ([`shard::replay_group`]).
        let mut replayed = 0u64;
        let mut kept: Vec<persist::WalRecord> = Vec::new();
        let mut last_metas: Option<Vec<(usize, usize, crate::GraphMeta)>> = None;
        for mut group in flip_groups {
            let gseq = group[0].seq;
            if gseq <= seq {
                continue; // subsumed by the checkpoint
            }
            if gseq != seq + 1 {
                return Err(PersistError::Corrupt(format!(
                    "WAL sequence gap: expected flip {}, found {gseq}",
                    seq + 1
                )));
            }
            if n == 1 {
                let record = &group[0];
                let admitted: Vec<(usize, CacheEntry)> = record
                    .admitted
                    .iter()
                    .map(|p| (p.slot, p.entry.clone()))
                    .collect();
                caches[0]
                    .replay_window(&record.evicted, admitted)
                    .map_err(PersistError::Corrupt)?;
            } else {
                let mut refs: Vec<&mut QueryCache> = caches.iter_mut().collect();
                shard::replay_group(&mut alloc, &mut slot_owner, &mut refs, &group)
                    .map_err(PersistError::Corrupt)?;
            }
            for record in &group {
                if record.shard >= n {
                    return Err(PersistError::Corrupt(format!(
                        "WAL record for shard {} of {n}",
                        record.shard
                    )));
                }
                for &slot in &record.evicted {
                    isubs[record.shard].remove(slot);
                    isupers[record.shard].remove(slot);
                }
                for p in &record.admitted {
                    // WAL records carry no feature sets (they are the
                    // short tail); one enumeration feeds both indexes,
                    // exactly as a live flip would.
                    let features = enumerate_paths(&p.entry.graph, &path_config);
                    let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
                    isubs[record.shard].insert_features(
                        p.slot,
                        Arc::clone(&p.entry.graph),
                        &features,
                        Arc::clone(&keys),
                    );
                    isupers[record.shard].insert_features(
                        p.slot,
                        Arc::clone(&p.entry.graph),
                        &features,
                        keys,
                        p.entry.code.clone(),
                    );
                }
            }
            seq = gseq;
            replayed += 1;
            last_metas = Some(
                group
                    .iter()
                    .flat_map(|r| r.metas.iter().map(|&(slot, meta)| (r.shard, slot, meta)))
                    .collect(),
            );
            kept.append(&mut group);
        }
        if let Some(metas) = last_metas {
            for (owner, slot, meta) in metas {
                match caches[owner].get(slot) {
                    Some(_) => caches[owner].entry_mut(slot).meta = meta,
                    None => {
                        return Err(PersistError::Corrupt(format!(
                            "WAL metadata for slot {slot}, which is not occupied after replay"
                        )))
                    }
                }
            }
        }

        // Compact the WAL to exactly the replayed tail (drops records the
        // checkpoint subsumes and any torn bytes) and re-establish the
        // header, so the file is clean from here on.
        let header = persist::WalHeader {
            config_fp,
            dataset_fp,
            shards: n,
            epoch,
        };
        let kept_refs: Vec<&persist::WalRecord> = kept.iter().collect();
        store.replace_wal(&persist::encode_wal_with(
            &header,
            &kept_refs,
            config.persistence.codec,
        ))?;

        // The checkpoint's pending window is only current while no flip
        // followed it: the first replayed WAL record's admission batch
        // *contained* those entries (a flip drains the whole window), so
        // keeping them would admit them a second time at the next flip —
        // a duplicate resident the never-restarted engine does not have.
        // After any replay the true state is "window empty as of the last
        // flip" (entries enqueued after it are the documented loss
        // window).
        let mut window = window;
        if replayed > 0 {
            window.clear();
        }
        // Window signatures ride alongside the window entries; recompute
        // any an old artifact did not carry.
        let window_signatures: Vec<GraphSignature> = window
            .iter_mut()
            .map(|w| {
                let sig = w.signature.unwrap_or_else(|| GraphSignature::of(&w.graph));
                w.signature = Some(sig);
                sig
            })
            .collect();

        let cells = Self::build_cells(&config, caches, isubs, isupers);

        let ctl = Control {
            window,
            window_signatures,
            cost_model: CostModel::new(labels),
            seq,
            alloc,
            slot_owner,
        };
        let pctl = PersistCtl {
            store,
            config_fp,
            dataset_fp,
            codec: config.persistence.codec,
            checkpoint_every: config
                .persistence
                .checkpoint_every_windows
                .map(|w| w as u64),
            appends_since_checkpoint: AtomicU64::new(kept_refs.len() as u64),
            checkpoint_lock: Mutex::new(()),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(String::new()),
            quarantine: Mutex::new(VecDeque::new()),
            retry_not_before: Mutex::new(None),
            retry_strikes: AtomicU64::new(0),
            tail_suspect: AtomicBool::new(false),
        };
        let engine = Self::assemble(method, config, ctl, cells, Some(pctl), false);
        engine.epoch.store(epoch, Ordering::Relaxed);
        engine.stats.set_recovery_replayed_windows(replayed);
        Ok(engine)
    }

    /// The shared restore half of [`Engine::open`] and
    /// [`Engine::open_follower`]: reconstitutes the cache partition and
    /// both index families from a decoded checkpoint — no re-enumeration,
    /// no re-canonicalization (the persisted feature sets feed
    /// `insert_features` directly). With more than one shard, entries
    /// land back on their owning shard by re-running the deterministic
    /// router; with one, the original restore path (and its validation)
    /// is untouched. `None` yields a cold start.
    fn restore_from_checkpoint(
        config: &IgqConfig,
        router: &ShardRouter,
        checkpoint: Option<persist::CheckpointData>,
    ) -> Result<Restored, PersistError> {
        let path_config = config.path_config;
        let n = config.shards;
        let mut isubs: Vec<IsubIndex> = (0..n).map(|_| IsubIndex::new(path_config)).collect();
        let mut isupers: Vec<IsuperIndex> = (0..n).map(|_| IsuperIndex::new(path_config)).collect();
        let mut seq = 0u64;
        let feed = |isub: &mut IsubIndex, isuper: &mut IsuperIndex, p: &persist::PersistedEntry| {
            match &p.features {
                Some(f) => {
                    let mut features = PathFeatures {
                        complete_len: f.complete_len,
                        ..PathFeatures::default()
                    };
                    for (seq_key, count) in &f.counts {
                        features.counts.insert(seq_key.clone(), *count);
                    }
                    let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
                    isub.insert_features(
                        p.slot,
                        Arc::clone(&p.entry.graph),
                        &features,
                        Arc::clone(&keys),
                    );
                    isuper.insert_features(
                        p.slot,
                        Arc::clone(&p.entry.graph),
                        &features,
                        keys,
                        p.entry.code.clone(),
                    );
                }
                // Older/foreign checkpoints without feature sets:
                // fall back to enumeration.
                None => {
                    isub.insert(p.slot, Arc::clone(&p.entry.graph));
                    isuper.insert(p.slot, Arc::clone(&p.entry.graph));
                }
            }
        };
        let (caches, alloc, slot_owner, window) = match checkpoint {
            Some(data) => {
                seq = data.seq;
                let entries: Vec<(usize, CacheEntry)> = data
                    .entries
                    .iter()
                    .map(|p| (p.slot, p.entry.clone()))
                    .collect();
                let (caches, alloc, slot_owner) = if n == 1 {
                    let cache = QueryCache::restore(
                        config.cache_capacity,
                        config.policy,
                        data.round,
                        data.slot_count,
                        data.free,
                        entries,
                    )
                    .map_err(PersistError::Corrupt)?;
                    (vec![cache], SlotAlloc::default(), Vec::new())
                } else {
                    shard::restore_sharded(
                        config.cache_capacity,
                        config.policy,
                        data.round,
                        data.slot_count,
                        data.free,
                        entries,
                        router,
                    )
                    .map_err(PersistError::Corrupt)?
                };
                for p in &data.entries {
                    let owner = if n == 1 { 0 } else { slot_owner[p.slot] };
                    feed(&mut isubs[owner], &mut isupers[owner], p);
                }
                (caches, alloc, slot_owner, data.window)
            }
            None => (
                (0..n)
                    .map(|_| QueryCache::with_policy(config.cache_capacity, config.policy))
                    .collect(),
                SlotAlloc::default(),
                Vec::new(),
                Vec::new(),
            ),
        };
        Ok(Restored {
            caches,
            alloc,
            slot_owner,
            isubs,
            isupers,
            window,
            seq,
        })
    }

    /// Wraps restored per-shard state into live [`ShardCell`]s. Under
    /// background maintenance each shard's maintainer owns that shard's
    /// authoritative indexes: it is seeded with the recovered pair (warm
    /// state published immediately) and the engine-owned copies stay
    /// empty, exactly as in steady-state operation.
    fn build_cells(
        config: &IgqConfig,
        caches: Vec<QueryCache>,
        isubs: Vec<IsubIndex>,
        isupers: Vec<IsuperIndex>,
    ) -> Vec<ShardCell> {
        let path_config = config.path_config;
        let background = matches!(
            config.maintenance,
            crate::config::MaintenanceMode::Background
        );
        let mut cells: Vec<ShardCell> = Vec::with_capacity(caches.len());
        for (cache, (isub, isuper)) in caches.into_iter().zip(isubs.into_iter().zip(isupers)) {
            let (live_isub, live_isuper, maintainer) = if background {
                let pair = IndexPair { isub, isuper };
                let maintainer =
                    BackgroundMaintainer::spawn_seeded(path_config, config.max_lag_windows, pair);
                (
                    IsubIndex::new(path_config),
                    IsuperIndex::new(path_config),
                    Some(maintainer),
                )
            } else {
                (isub, isuper, None)
            };
            cells.push(ShardCell {
                state: RwLock::new(ShardState {
                    cache,
                    isub: live_isub,
                    isuper: live_isuper,
                }),
                maintainer,
                outbox: Mutex::new(VecDeque::new()),
                submit_lock: Mutex::new(()),
            });
        }
        cells
    }

    /// Opens a **follower** read replica from a primary's snapshot — the
    /// `checkpoint` payload of [`Subscription::Snapshot`] (any durable
    /// checkpoint of the same engine works too). The follower serves
    /// read-only queries over the replicated cache: its state advances
    /// only through [`Engine::apply_replica_delta`], local queries are
    /// never admitted to a window, and write-path operations are rejected
    /// with a typed [`ReplicaError`].
    ///
    /// `method` and `config` must match the primary's: the snapshot's
    /// config/dataset fingerprints, label universe, and shard count are
    /// validated exactly as [`Engine::open`] validates a store. The
    /// follower keeps no store of its own — crash recovery is a
    /// re-bootstrap from the primary — and its pending window is always
    /// empty (admissions arrive pre-flipped inside delta groups; the
    /// snapshot's window tail materializes in a later group if the
    /// primary ever admits it).
    pub fn open_follower(
        method: D::Method,
        config: IgqConfig,
        snapshot: &[u8],
    ) -> Result<Engine<D>, PersistError> {
        config.validate()?;
        let labels = Self::resolve_labels(&method, &config);
        let config_fp = persist::config_fingerprint(&config, D::direction_name());
        let dataset_fp = persist::dataset_fingerprint(D::store(&method));
        let data = persist::decode_checkpoint(snapshot)?;
        if data.config_fp != config_fp {
            return Err(PersistError::ConfigMismatch {
                expected: config_fp,
                found: data.config_fp,
            });
        }
        if data.dataset_fp != dataset_fp {
            return Err(PersistError::DatasetMismatch {
                expected: dataset_fp,
                found: data.dataset_fp,
            });
        }
        if data.labels != labels {
            return Err(PersistError::Corrupt(format!(
                "snapshot label universe {} does not match the engine's {labels}",
                data.labels
            )));
        }
        if data.shards != config.shards {
            return Err(PersistError::ShardMismatch {
                expected: config.shards,
                found: data.shards,
            });
        }
        let router = ShardRouter::new(config.shards);
        // The follower starts at the primary's failover epoch: older
        // streams (a deposed primary) are fenced from the first group.
        let epoch = data.epoch;
        let Restored {
            caches,
            alloc,
            slot_owner,
            isubs,
            isupers,
            seq,
            ..
        } = Self::restore_from_checkpoint(&config, &router, Some(data))?;
        let cells = Self::build_cells(&config, caches, isubs, isupers);
        let ctl = Control {
            window: Vec::new(),
            window_signatures: Vec::new(),
            cost_model: CostModel::new(labels),
            seq,
            alloc,
            slot_owner,
        };
        let engine = Self::assemble(method, config, ctl, cells, None, true);
        engine.epoch.store(epoch, Ordering::Relaxed);
        engine.stats.set_last_applied_seq(seq);
        engine.stats.note_replica_heard(seq);
        Ok(engine)
    }

    /// Subscribes a replica to this engine's committed window flips,
    /// activating the replication hub on first use (from then on every
    /// flip group is published through it, post-WAL-append, in flip
    /// order — the hub stays active for the engine's lifetime).
    ///
    /// `from_seq` is the subscriber's last applied flip: when the hub can
    /// prove the stream from there onward is gap-free (`from_seq` is
    /// current, or every later group is still in the replay ring) the
    /// result is [`Subscription::Live`] — the feed resumes mid-stream
    /// with no snapshot transfer. Otherwise (fresh follower, or one that
    /// fell further behind than
    /// [`REPLICATION_RING_GROUPS`](crate::replicate::REPLICATION_RING_GROUPS))
    /// the result is [`Subscription::Snapshot`]: a checkpoint captured
    /// under the same lock the feed is registered under, so the feed
    /// carries exactly the flips after it (a duplicate at the boundary is
    /// possible and skipped by [`Engine::apply_replica_delta`]).
    ///
    /// Works on any engine — durable or purely in-memory (an in-memory
    /// primary starts sequencing flips at activation) — and on a
    /// follower, which republishes every group it applies (chaining).
    pub fn subscribe_replication(&self, from_seq: Option<u64>) -> Subscription {
        // Under the ctl read lock no flip can land (flips hold the write
        // lock), so activation, the resume check, and snapshot/feed
        // registration all see one consistent seq — and every later flip
        // observes the active hub. The drain (safe under read guards: it
        // takes only the outbox/WAL locks) clears any committed-but-
        // unpublished groups first, so nothing committed before
        // activation is re-published after it.
        let g = self.lock_read();
        self.drain_outbox();
        self.hub.activate(g.ctl.seq);
        if let Some(after) = from_seq {
            if let Some(feed) = self.hub.try_resume(after) {
                return Subscription::Live { feed };
            }
            // The subscriber is older than the in-memory resume ring. On
            // a durable primary the missing groups are usually still in
            // the WAL: replay them from disk and splice them in front of
            // the live ring, so the follower catches up over the stream
            // instead of re-transferring a full snapshot.
            if let Some(feed) = self.wal_backlog_feed(after) {
                self.stats.count_replica_wal_catchup();
                return Subscription::Live { feed };
            }
        }
        // Same discipline as `checkpoint`: sync the maintainers so the
        // snapshot can read feature sets from their published state.
        self.sync_maintenance();
        let config_fp = persist::config_fingerprint(&self.config, D::direction_name());
        let dataset_fp = persist::dataset_fingerprint(D::store(&self.method));
        let data = self.capture_state(&g, config_fp, dataset_fp);
        let seq = data.seq;
        let feed = self.hub.attach_after(seq);
        let codec = self.persist.as_ref().map(|p| p.codec).unwrap_or_default();
        Subscription::Snapshot {
            seq,
            checkpoint: persist::encode_checkpoint_with(&data, codec),
            feed,
        }
    }

    /// WAL-backed catch-up (the resume path beyond the in-memory ring):
    /// reads the attached store's WAL, re-derives the flip groups after
    /// `after`, and asks the hub to splice them in front of the live
    /// ring. `None` — meaning the caller must fall back to a snapshot —
    /// when the engine has no store, the log is degraded (quarantined
    /// flips are missing from disk), the checkpoint already subsumed a
    /// needed flip, or the hub cannot prove the splice gap-free.
    fn wal_backlog_feed(&self, after: u64) -> Option<crate::replicate::ReplicaFeed> {
        let p = self.persist.as_ref()?;
        if p.degraded.load(Ordering::Relaxed) {
            return None;
        }
        // Under the WAL lock no appender is concurrently writing, so the
        // log read here is a clean prefix of the stream; the caller holds
        // the ctl *read* lock (never a write lock), matching the
        // `wal_lock` ordering rule.
        let _appending = self.wal_lock.lock();
        let wal = persist::parse_wal(&p.store.load_wal().ok()?).ok()?;
        // A torn tail only drops the final (never-committed) group;
        // the intact prefix is still a valid backlog source.
        let (groups, _torn) = persist::split_flip_groups(wal.records).ok()?;
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut backlog = Vec::new();
        let mut next = after + 1;
        for group in groups {
            let seq = group[0].seq;
            if seq <= after {
                continue;
            }
            if seq != next {
                // The checkpoint subsumed a flip the subscriber still
                // needs; only a snapshot can cover it.
                return None;
            }
            next += 1;
            backlog.push(DeltaGroup {
                seq,
                bytes: persist::encode_group_binary(&group, epoch).into(),
            });
        }
        if backlog.is_empty() {
            return None;
        }
        self.hub.attach_with_backlog(after, backlog)
    }

    /// Applies one replicated flip group (the `bytes` of a
    /// [`DeltaGroup`]) to this follower. Groups apply whole-or-not-at-all
    /// in strict seq order: a group at or below the last applied flip is
    /// a duplicate redelivery (resume overlap) and is skipped with `Ok`;
    /// a gap means lost groups and returns [`ReplicaError::SeqGap`] — the
    /// caller should re-subscribe with `from_seq` or re-bootstrap. A
    /// decode or replay failure is [`ReplicaError::Corrupt`]; after a
    /// replay failure the follower must be re-bootstrapped.
    ///
    /// Returns the follower's last applied seq.
    pub fn apply_replica_delta(&self, bytes: &[u8]) -> Result<u64, ReplicaError> {
        if !self.follower.load(Ordering::Relaxed) {
            return Err(ReplicaError::NotFollower);
        }
        let (stream_epoch, records) = persist::decode_group_binary(bytes)?;
        // Seq fencing: a group stamped with an older failover epoch comes
        // from a deposed primary (this replica promoted, or follows a
        // promoted one) and must never apply — its flips were not
        // sequenced by the current primary. A *newer* epoch is the new
        // primary announcing itself: adopt it.
        let local = self.epoch.load(Ordering::Relaxed);
        if stream_epoch < local {
            return Err(ReplicaError::EpochFenced {
                stream: stream_epoch,
                local,
            });
        }
        if stream_epoch > local {
            self.epoch.store(stream_epoch, Ordering::Relaxed);
        }
        let n = self.shards.len();
        let seq = records[0].seq;
        if records.len() != n
            || records
                .iter()
                .any(|r| r.seq != seq || r.group != n || r.shard >= n)
        {
            return Err(ReplicaError::Corrupt(format!(
                "delta group at flip {seq} does not match this replica's {n}-shard layout"
            )));
        }
        self.stats.note_replica_heard(seq);
        {
            let mut g = self.lock_write();
            // Re-check under the write view: `promote` flips the flag
            // while holding it, so a group racing a promotion is rejected
            // rather than applied to a now-writable primary.
            if !self.follower.load(Ordering::Relaxed) {
                return Err(ReplicaError::NotFollower);
            }
            if seq <= g.ctl.seq {
                return Ok(g.ctl.seq);
            }
            if seq != g.ctl.seq + 1 {
                return Err(ReplicaError::SeqGap {
                    expected: g.ctl.seq + 1,
                    found: seq,
                });
            }
            // Snapshot the evicted entries' canonical codes *before*
            // replay frees their slots: plans die with their windows,
            // exactly as on the primary. (The primary's own delta omits
            // codes with a surviving isomorphic duplicate; evicting those
            // plans here too costs only a re-plan, never correctness.)
            let deltas: Vec<(usize, WindowDelta)> = records
                .iter()
                .map(|r| {
                    let cache = &g.shards[r.shard].cache;
                    let evicted_codes: Vec<CanonicalCode> = r
                        .evicted
                        .iter()
                        .filter_map(|&slot| cache.get(slot).and_then(|e| e.code.clone()))
                        .collect();
                    (
                        r.shard,
                        WindowDelta {
                            evicted: r.evicted.clone(),
                            admitted: r.admitted.iter().map(|p| p.slot).collect(),
                            evicted_codes,
                        },
                    )
                })
                .collect();
            // Replay through the same machinery recovery uses: recorded
            // evictions/admissions re-applied verbatim (the policy is not
            // re-run), so the follower makes bit-for-bit the primary's
            // slot decisions.
            if n == 1 {
                let record = &records[0];
                let admitted: Vec<(usize, CacheEntry)> = record
                    .admitted
                    .iter()
                    .map(|p| (p.slot, p.entry.clone()))
                    .collect();
                g.shards[0]
                    .cache
                    .replay_window(&record.evicted, admitted)
                    .map_err(ReplicaError::Corrupt)?;
            } else {
                let ctl = &mut *g.ctl;
                let mut caches: Vec<&mut QueryCache> =
                    g.shards.iter_mut().map(|sh| &mut sh.cache).collect();
                shard::replay_group(&mut ctl.alloc, &mut ctl.slot_owner, &mut caches, &records)
                    .map_err(ReplicaError::Corrupt)?;
            }
            // The group carries each shard's full replacement-metadata
            // table as of the flip; applying it keeps follower evictions
            // (in later groups) trivially consistent, since the primary
            // replays its own decisions into the stream anyway.
            for record in &records {
                for &(slot, meta) in &record.metas {
                    match g.shards[record.shard].cache.get(slot) {
                        Some(_) => g.shards[record.shard].cache.entry_mut(slot).meta = meta,
                        None => {
                            return Err(ReplicaError::Corrupt(format!(
                                "delta metadata for slot {slot}, which is not occupied \
                                 after replay"
                            )))
                        }
                    }
                }
            }
            for code in deltas.iter().flat_map(|(_, d)| d.evicted_codes.iter()) {
                self.plan_cache.evict_key(code);
            }
            // Index maintenance dispatches exactly like a live flip:
            // captured for the background maintainer, or applied inline
            // per the configured mode.
            for (shard, delta) in &deltas {
                if delta.is_empty() {
                    continue;
                }
                let cell = &self.shards[*shard];
                let sh = &mut *g.shards[*shard];
                match &cell.maintainer {
                    Some(_) => {
                        cell.outbox
                            .lock()
                            .push_back(MaintenanceJob::capture(&sh.cache, delta));
                    }
                    None => {
                        let maint_start = Instant::now();
                        let outcome = crate::maintain::apply_delta(
                            self.config.maintenance,
                            self.config.path_config,
                            &sh.cache,
                            delta,
                            &mut sh.isub,
                            &mut sh.isuper,
                        );
                        self.stats.record_maintenance_work(
                            outcome.postings_touched,
                            outcome.rebuilt,
                            maint_start.elapsed(),
                        );
                    }
                }
            }
            g.ctl.seq = seq;
            self.stats.set_last_applied_seq(seq);
        }
        // Off the state locks: submit captured maintenance jobs, then
        // republish the same bytes for any chained subscribers (a
        // follower can itself feed further replicas).
        self.drain_outbox();
        if self.hub.is_active() {
            self.hub.publish(DeltaGroup {
                seq,
                bytes: Arc::from(bytes),
            });
            self.stats.count_replica_group_published();
        }
        self.stats.record_replica_group_applied(bytes.len() as u64);
        Ok(seq)
    }

    /// `true` if this engine is a read-only follower replica
    /// ([`Engine::open_follower`]) that has not been
    /// [`promote`](Engine::promote)d.
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::Relaxed)
    }

    /// Promotes this follower into a writable primary (automatic
    /// failover). Under the full write view — so no delta group is
    /// mid-apply and no query mid-enqueue — the read-only flag drops and
    /// the failover epoch is bumped; from here the engine admits queries,
    /// flips windows, and publishes delta groups stamped with the new
    /// epoch, while any straggler group from the deposed primary is
    /// fenced by [`apply_replica_delta`](Engine::apply_replica_delta) on
    /// every replica that adopted the new epoch.
    ///
    /// Returns the new epoch. [`ReplicaError::NotFollower`] if the engine
    /// is already a primary (including a second `promote` call).
    pub fn promote(&self) -> Result<u64, ReplicaError> {
        let _g = self.lock_write();
        if !self.follower.load(Ordering::Relaxed) {
            return Err(ReplicaError::NotFollower);
        }
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        self.epoch.store(epoch, Ordering::Relaxed);
        self.follower.store(false, Ordering::Relaxed);
        Ok(epoch)
    }

    /// The current failover epoch: 0 until a promotion happens anywhere
    /// in the replication tree; bumped by [`promote`](Engine::promote),
    /// adopted from the stream by followers.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Follower staleness in window flips — the highest flip heard from
    /// the primary's stream minus the last flip applied locally. `None`
    /// on a primary. Cheap (two atomic loads): intended for per-request
    /// bounded-staleness admission checks.
    pub fn replication_lag(&self) -> Option<u64> {
        self.is_follower()
            .then(|| self.stats.replication_lag_windows())
    }

    /// Records that the primary's stream has reached `seq` without
    /// applying anything (e.g. a heartbeat, or a delta observed but still
    /// queued): the staleness gauge measures heard-vs-applied, so feeds
    /// should report both sides.
    pub fn note_replica_heard(&self, seq: u64) {
        self.stats.note_replica_heard(seq);
    }

    /// Moves the engine behind a cheap cloneable [`crate::EngineHandle`]
    /// for fan-out across threads.
    pub fn into_handle(self) -> crate::EngineHandle<Engine<D>> {
        crate::EngineHandle::new(self)
    }

    /// The wrapped method.
    pub fn method(&self) -> &D::Method {
        &self.method
    }

    /// Aggregate statistics so far (an owned snapshot, assembled from
    /// lock-free atomics — safe to call from any thread at any time).
    /// Under background maintenance the off-thread counters
    /// (`maintenance_time`, `maintenance_postings_touched`,
    /// `maintenance_lag_windows`, `snapshot_publishes`) are read from the
    /// maintenance thread at call time; call
    /// [`sync_maintenance`](Engine::sync_maintenance) first for fully
    /// settled numbers.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats.snapshot();
        // The plan cache's own counters are authoritative (they also see
        // index-probe lookups, which never flow through a
        // `VerifyBatchStats`); overlay them at snapshot time.
        let plans = self.plan_cache.stats();
        stats.plan_cache_hits = plans.hits;
        stats.plan_cache_misses = plans.misses;
        stats.plan_cache_evictions = plans.evictions;
        stats.epoch = self.epoch.load(Ordering::Relaxed);
        if let Some(p) = &self.persist {
            stats.wal_quarantined_groups = p.quarantine.lock().len() as u64;
            if p.degraded.load(Ordering::Relaxed) {
                stats.degraded = true;
                stats.degraded_reason = p.degraded_reason.lock().clone();
            }
        }
        for cell in self.shards.iter() {
            if let Some(m) = &cell.maintainer {
                stats.fold_maintainer(&m.stats());
            }
        }
        stats
    }

    /// Blocks until the background maintainer has applied and published
    /// every submitted window delta, so the next probe sees a snapshot in
    /// lockstep with the cache. No-op in the synchronous modes.
    pub fn sync_maintenance(&self) {
        for cell in self.shards.iter() {
            if let Some(m) = &cell.maintainer {
                m.sync();
            }
        }
    }

    /// Terminates one shard's background maintainer without joining the
    /// engine — a failure-injection hook for the concurrency test suite
    /// (a dead maintainer degrades only that shard's snapshot freshness,
    /// never exactness). No-op in the synchronous modes.
    #[doc(hidden)]
    pub fn kill_maintainer_for_test(&self, shard: usize) {
        if let Some(m) = &self.shards[shard].maintainer {
            m.kill_for_test();
        }
    }

    /// Engine configuration.
    pub fn config(&self) -> &IgqConfig {
        &self.config
    }

    /// Number of currently cached queries (across all shards).
    pub fn cached_queries(&self) -> usize {
        // The control read lock serializes against flips (which hold
        // every write lock), so the per-shard sum is flip-consistent.
        let _ctl = self.ctl.read();
        self.shards.iter().map(|c| c.state.read().cache.len()).sum()
    }

    /// Approximate footprint of iGQ's own structures (query graphs, answer
    /// sets, and both query indexes) — the iGQ bar of Figure 18. Under
    /// background maintenance the engine-owned indexes are empty, so the
    /// index share is read from the latest published snapshot (which may
    /// trail the cache by the lag bound).
    pub fn igq_index_size_bytes(&self) -> u64 {
        let g = self.lock_read();
        let mut total = self.plan_cache.heap_size_bytes();
        for (cell, st) in self.shards.iter().zip(g.shards.iter()) {
            total += st.cache.heap_size_bytes();
            total += match &cell.maintainer {
                Some(m) => {
                    let pair = m.snapshot();
                    pair.isub.heap_size_bytes() + pair.isuper.heap_size_bytes()
                }
                None => st.isub.heap_size_bytes() + st.isuper.heap_size_bytes(),
            };
        }
        total
    }

    /// Estimated cost (log space) of iso-testing `q` against each graph in
    /// `ids`, with the pattern/target roles ordered by the direction.
    fn cost_of(&self, model: &mut CostModel, q: &Graph, ids: &[GraphId]) -> LogValue {
        let n = q.vertex_count();
        let mut total = LogValue::ZERO;
        for &id in ids {
            let ni = D::store(&self.method).get(id).vertex_count();
            total = total.add(D::cost_ln(model, n, ni));
        }
        total
    }

    /// Processes one query, returning the exact answer set plus accounting
    /// (Theorems 1 and 2: no false positives, no false negatives).
    ///
    /// Takes `&self`: any number of threads may call this concurrently on
    /// one shared engine. Each call's answers are exact against the
    /// dataset regardless of interleaving; what concurrency can change is
    /// only the *accounting* (which caller's query flips a window, which
    /// cache entry serves a hit).
    pub fn query(&self, q: &Graph) -> QueryOutcome {
        self.run(q, &QueryOptions::default())
    }

    /// Processes a typed [`QueryRequest`] (per-query options: admission
    /// control, deadline observability). The response carries the
    /// engine-observed end-to-end latency ([`QueryResponse::elapsed`]) and
    /// counts toward [`EngineStats::requests_served`].
    pub fn execute(&self, request: &QueryRequest) -> QueryResponse {
        let start = Instant::now();
        let outcome = self.run(&request.graph, &request.options);
        let elapsed = start.elapsed();
        self.stats.count_request_served();
        let deadline_exceeded = request.options.deadline.is_some_and(|d| elapsed > d);
        QueryResponse {
            outcome,
            elapsed,
            deadline_exceeded,
        }
    }

    /// Fans `items` across worker threads sharing this engine
    /// ([`IgqConfig::batch_threads`]; `0` = available parallelism),
    /// returning per-item results index-aligned with the input — the
    /// engine shared by [`query_batch`](Engine::query_batch) and
    /// [`execute_batch`](Engine::execute_batch).
    fn fan_out<T: Sync, R: Send>(&self, items: &[T], run: impl Fn(&T) -> R + Sync) -> Vec<R> {
        let threads = match self.config.batch_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
        .min(items.len().max(1));
        if threads <= 1 {
            return items.iter().map(run).collect();
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
        let run = &run;
        let chunks = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, run(item)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker"))
                .collect::<Vec<_>>()
        })
        .expect("batch scope");
        for (i, out) in chunks.into_iter().flatten() {
            results[i] = Some(out);
        }
        results
            .into_iter()
            .map(|o| o.expect("every index claimed exactly once"))
            .collect()
    }

    /// Fans `queries` across worker threads sharing this engine
    /// ([`IgqConfig::batch_threads`]; `0` = available parallelism). The
    /// output is index-aligned with the input. Equivalent to calling
    /// [`query`](Engine::query) for each element — just concurrent.
    pub fn query_batch(&self, queries: &[Graph]) -> Vec<QueryOutcome> {
        self.fan_out(queries, |q| self.query(q))
    }

    /// Fans a batch of typed requests across worker threads, preserving
    /// each request's options and per-request accounting
    /// ([`execute`](Engine::execute) semantics, index-aligned output). A
    /// multi-request batch counts once toward
    /// [`EngineStats::batches_coalesced`]: this is the scatter/gather
    /// entry point a serving front end's micro-batcher amortizes its
    /// coalescing window through.
    pub fn execute_batch(&self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        if requests.len() >= 2 {
            self.stats.count_batch_coalesced();
        }
        self.fan_out(requests, |r| self.execute(r))
    }

    /// Windows currently submitted to background maintenance but not yet
    /// applied, maximized over shards — the instantaneous staleness signal
    /// for lag-gated admission control (the lifetime *peak* lives in
    /// [`EngineStats::maintenance_lag_windows`]). Zero in the synchronous
    /// maintenance modes, where maintenance never lags the cache.
    pub fn maintenance_lag(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|c| c.maintainer.as_ref())
            .map(BackgroundMaintainer::lag_windows)
            .max()
            .unwrap_or(0)
    }

    /// Records one request shed by lag-gated admission control into
    /// [`EngineStats::requests_rejected_overload`]. Called by the serving
    /// edge, which owns the shed decision; the engine only keeps the
    /// ledger.
    pub fn note_overload_rejection(&self) {
        self.stats.count_overload_rejection();
    }

    /// The shared pipeline behind [`query`](Engine::query) and
    /// [`execute`](Engine::execute).
    fn run(&self, q: &Graph, opts: &QueryOptions) -> QueryOutcome {
        let wall_start = Instant::now();
        let mut outcome = QueryOutcome::default();

        // Optimal case 1 fast path: a canonical-code hash lookup detects
        // exact repeats before any filtering or probing (see
        // [`IgqConfig::exact_fastpath`]). The probe path below still
        // catches repeats whose canonicalization exceeded its budget. The
        // canonicalization outcome is kept and threaded through to window
        // admission so maintenance never recomputes it. The common miss
        // pays only a read lock; a hit re-checks under the write lock (the
        // slot may have been evicted in between).
        let code: Option<Option<CanonicalCode>> = if self.config.exact_fastpath {
            Some(canonical_code(q))
        } else {
            None
        };
        if let Some(Some(c)) = &code {
            // Routing is deterministic, so only the owning shard can hold
            // this code — the common miss pays one shard's read lock, not
            // a full sweep.
            let home = self.router.route_code(c);
            let probable_hit = self.shards[home]
                .state
                .read()
                .cache
                .slot_with_code(c)
                .is_some();
            if probable_hit {
                let mut guards = self.lock_write();
                if let Some(slot) = guards.shards[home].cache.slot_with_code(c) {
                    for sh in guards.shards.iter_mut() {
                        sh.cache.tick_all();
                    }
                    let answers = guards.shards[home].cache.entry(slot).answers.clone();
                    // Credit: without running the filter the alleviated
                    // candidate set is unknown; the stored answers are a
                    // conservative lower bound on it.
                    let credit = self.cost_of(&mut guards.ctl.cost_model, q, &answers);
                    guards.shards[home]
                        .cache
                        .entry_mut(slot)
                        .meta
                        .record_hit(answers.len() as u64, credit);
                    outcome.answers = answers;
                    outcome.resolution = Resolution::ExactHit;
                    outcome.igq_time = wall_start.elapsed();
                    outcome.wall_time = wall_start.elapsed();
                    self.stats.absorb(&outcome);
                    return outcome;
                }
            }
        }

        // Single-pass feature extraction: the query's paths are enumerated
        // once here and shared by the base filter and both index probes.
        let extract_start = Instant::now();
        let qf = enumerate_paths(q, &self.config.path_config);
        let extract_time = extract_start.elapsed();
        self.stats.count_feature_extraction();

        // Stage 1+2: filtering and query-index probes — parallel threads
        // as in Fig. 6 when configured, scattered across every shard's
        // indexes. Under background maintenance the probes read each
        // shard's latest published snapshot lock-free; in the synchronous
        // modes they run under the state locks so the returned slots stay
        // valid through the answer algebra below. Shards hold disjoint
        // slot sets, so the per-shard hit lists merge exactly.
        let background = self.shards[0].maintainer.is_some();
        // The query's canonical code (when computed and within budget)
        // keys the plan cache for the `Isub` probe and the verify stage.
        let qcode: Option<&CanonicalCode> = code.as_ref().and_then(|c| c.as_ref());
        let mut snaps: Vec<Arc<IndexPair>> = Vec::new();
        let (filtered, mut per_shard, filter_time, probe_time, mut guards) = if background {
            // Background: filter and probes both run lock-free over the
            // per-shard snapshots.
            snaps = self
                .shards
                .iter()
                .map(|c| {
                    c.maintainer
                        .as_ref()
                        .expect("every shard has a maintainer in background mode")
                        .snapshot()
                })
                .collect();
            let pairs: Vec<(&IsubIndex, &IsuperIndex)> =
                snaps.iter().map(|p| (&p.isub, &p.isuper)).collect();
            let (f, ps, ft, pt) = self.filter_and_probe(&pairs, q, &qf, qcode);
            (f, ps, ft, pt, self.lock_write())
        } else if !self.config.parallel_probes {
            // Synchronous modes: the expensive filter still runs outside
            // the locks; only the probes need the live indexes.
            let f_start = Instant::now();
            let filtered = D::filter(&self.method, q, &qf);
            let filter_time = f_start.elapsed();
            let guards = self.lock_write();
            let p_start = Instant::now();
            let ps: Vec<ShardProbe> = guards
                .shards
                .iter()
                .map(|sh| probe_pair(&sh.isub, &sh.isuper, q, &qf, &self.plan_cache, qcode))
                .collect();
            let probe_time = p_start.elapsed();
            (filtered, ps, filter_time, probe_time, guards)
        } else {
            // Fig. 6 three-thread pipeline over the live indexes: the
            // guards lend the index refs to the probe threads, so the
            // filter thread runs inside the lock window here.
            let guards = self.lock_write();
            let pairs: Vec<(&IsubIndex, &IsuperIndex)> = guards
                .shards
                .iter()
                .map(|sh| (&sh.isub, &sh.isuper))
                .collect();
            let (f, ps, ft, pt) = self.filter_and_probe(&pairs, q, &qf, qcode);
            (f, ps, ft, pt, guards)
        };
        if !snaps.is_empty() {
            // A snapshot may trail its shard's cache — and under
            // concurrency the cache may even have moved between the
            // lock-free probe and this lock acquisition. Discard hits
            // whose slot the owning shard no longer backs with the probed
            // graph, so every surviving slot's stored answers really
            // belong to the verified graph. (A slot reassigned to another
            // shard in between fails the check on its probing shard —
            // the safe direction.)
            for (i, ((sub, _), (sup, _))) in per_shard.iter_mut().enumerate() {
                retain_current_slots(&guards.shards[i].cache, sub, |s| {
                    snaps[i].isub.slot_graph(s)
                });
                retain_current_slots(&guards.shards[i].cache, sup, |s| {
                    snaps[i].isuper.slot_graph(s)
                });
            }
        }
        let ((sub_slots, sub_stats), (super_slots, super_stats)) = merge_probes(per_shard);
        outcome.filter_time = filter_time;
        let mut igq_stats = IsoStats::new();
        igq_stats.merge(&sub_stats);
        igq_stats.merge(&super_stats);
        outcome.igq_iso_tests = igq_stats.tests;
        outcome.isub_hits = sub_slots.len();
        outcome.isuper_hits = super_slots.len();
        outcome.candidates_before = filtered.candidates.len();

        let bookkeeping_start = Instant::now();
        // Every cached entry has now seen one more query.
        for sh in guards.shards.iter_mut() {
            sh.cache.tick_all();
        }

        let cs = &filtered.candidates;

        // The direction decides which probe feeds the *known answers*
        // path and which the *bounding* path (Section 4.4 inversion).
        let (known_slots, bound_slots) = if D::KNOWN_IS_ISUB {
            (&sub_slots, &super_slots)
        } else {
            (&super_slots, &sub_slots)
        };

        // Optimal case 1: exact repeat — g isomorphic to a cached query.
        // g ⊆ G (or G ⊆ g) at equal vertex/edge counts is an isomorphism.
        let exact_slot = sub_slots
            .iter()
            .chain(super_slots.iter())
            .copied()
            .find(|&s| {
                let g = &slot_entry(&guards.ctl, &guards.shards, s).graph;
                g.vertex_count() == q.vertex_count() && g.edge_count() == q.edge_count()
            });
        if let Some(slot) = exact_slot {
            outcome.answers = slot_entry(&guards.ctl, &guards.shards, slot)
                .answers
                .clone();
            outcome.resolution = Resolution::ExactHit;
            outcome.candidates_after = 0;
            outcome.pruned_by_isub = cs.len();
            let credit = self.cost_of(&mut guards.ctl.cost_model, q, cs);
            credit_hits::<D>(
                self,
                &mut guards,
                q,
                cs,
                known_slots,
                bound_slots,
                Some((slot, credit)),
            );
            outcome.igq_time = extract_time + probe_time + bookkeeping_start.elapsed();
            outcome.wall_time = wall_start.elapsed();
            self.stats.absorb(&outcome);
            return outcome;
        }

        // Optimal case 2: a cached bounding query with an empty answer set
        // proves Answer(g) = ∅ (Section 4.3; roles inverted in the
        // supergraph direction, Section 4.4).
        if let Some(&slot) = bound_slots.iter().find(|&&s| {
            slot_entry(&guards.ctl, &guards.shards, s)
                .answers
                .is_empty()
        }) {
            outcome.answers = Vec::new();
            outcome.resolution = Resolution::EmptyAnswerShortcut;
            outcome.candidates_after = 0;
            if D::KNOWN_IS_ISUB {
                outcome.pruned_by_isuper = cs.len();
            } else {
                outcome.pruned_by_isub = cs.len();
            }
            let credit = self.cost_of(&mut guards.ctl.cost_model, q, cs);
            credit_hits::<D>(
                self,
                &mut guards,
                q,
                cs,
                known_slots,
                bound_slots,
                Some((slot, credit)),
            );
            // An empty-answer query is prime cache material.
            if !opts.skip_admission {
                self.enqueue(&mut guards.ctl, q, &[], code.clone());
            }
            outcome.igq_time = extract_time + probe_time + bookkeeping_start.elapsed();
            let maint_start = Instant::now();
            let maintained = self.maybe_maintain(&mut guards);
            drop(guards);
            if maintained {
                self.drain_outbox();
                outcome.igq_time += maint_start.elapsed();
                self.maybe_auto_checkpoint();
            }
            outcome.wall_time = wall_start.elapsed();
            self.stats.absorb(&outcome);
            return outcome;
        }

        // Formula (3) (or its Section 4.4 inverse): known answers. The
        // answer-set algebra below runs on two reused buffers (`pruned`
        // and `spare`, swapped per step) with galloping intersection /
        // subtraction — a handful of cached-answer probes against a large
        // candidate set costs O(hits · log |CS|), not O(|CS|) per slot.
        let mut known_answers: Vec<GraphId> = Vec::new();
        for &s in known_slots {
            known_answers.extend_from_slice(&slot_entry(&guards.ctl, &guards.shards, s).answers);
        }
        known_answers.sort_unstable();
        known_answers.dedup();
        let mut known_in_cs = Vec::new();
        intersect_into(cs, &known_answers, &mut known_in_cs);
        let mut pruned = Vec::new();
        let mut spare = Vec::new();
        subtract_into(cs, &known_answers, &mut pruned);
        let known_pruned = cs.len() - pruned.len();

        // Formula (5): candidates must appear in every bounding answer set.
        let before_bound = pruned.len();
        for &s in bound_slots {
            intersect_into(
                &pruned,
                &slot_entry(&guards.ctl, &guards.shards, s).answers,
                &mut spare,
            );
            std::mem::swap(&mut pruned, &mut spare);
            if pruned.is_empty() {
                break;
            }
        }
        let bound_pruned = before_bound - pruned.len();
        if D::KNOWN_IS_ISUB {
            outcome.pruned_by_isub = known_pruned;
            outcome.pruned_by_isuper = bound_pruned;
        } else {
            outcome.pruned_by_isuper = known_pruned;
            outcome.pruned_by_isub = bound_pruned;
        }
        outcome.candidates_after = pruned.len();

        // Metadata credit for every hit.
        credit_hits::<D>(self, &mut guards, q, cs, known_slots, bound_slots, None);
        outcome.igq_time = extract_time + probe_time + bookkeeping_start.elapsed();
        drop(guards); // verification runs outside the locks

        // Verification of the surviving candidates, with the engine's
        // plan cache keyed by the query's canonical code (a repeat query
        // reuses its matching plan instead of rebuilding it).
        let verify_start = Instant::now();
        let plan_source = PlanSource {
            cache: &self.plan_cache,
            key: qcode,
        };
        let (results, batch_stats) = D::verify(
            &self.method,
            q,
            &filtered.context,
            &pruned,
            Some(plan_source),
        );
        self.stats.record_verify_batch(&batch_stats);
        outcome.db_iso_tests = pruned.len() as u64;
        outcome.aborted_tests = results.iter().filter(|r| r.aborted).count() as u64;
        let mut answers: Vec<GraphId> = pruned
            .iter()
            .zip(results.iter())
            .filter(|(_, r)| r.contains)
            .map(|(&id, _)| id)
            .collect();
        outcome.verify_time = verify_start.elapsed();

        // Formula (4): add back the known answers.
        answers.extend_from_slice(&known_in_cs);
        answers.sort_unstable();
        answers.dedup();
        outcome.answers = answers;

        // Window admission and maintenance, under a fresh write lock. A
        // query whose verification hit the abort budget has a
        // possibly-incomplete answer set: caching it would let formulas
        // (3)–(5) turn one bounded verification into wrong answers for
        // *future* queries, so it is never admitted.
        let maint_start = Instant::now();
        let maintained = {
            let mut guards = self.lock_write();
            if outcome.aborted_tests == 0 && !opts.skip_admission {
                self.enqueue(&mut guards.ctl, q, &outcome.answers, code);
            }
            self.maybe_maintain(&mut guards)
        };
        if maintained {
            self.drain_outbox();
        }
        outcome.igq_time += maint_start.elapsed();
        if maintained {
            self.maybe_auto_checkpoint();
        }

        outcome.wall_time = wall_start.elapsed();
        self.stats.absorb(&outcome);
        outcome
    }

    /// Adds `(q, answers)` to the window unless `q` is an exact duplicate
    /// of a pending window entry (cache duplicates were already handled by
    /// the exact-hit path; two concurrent first-time callers of the same
    /// query can still both admit — duplicate residents are tolerated by
    /// the cache, see `duplicate_codes_survive_partial_eviction`). `code`
    /// is the query-path canonicalization outcome, reused at admission.
    fn enqueue(
        &self,
        ctl: &mut Control,
        q: &Graph,
        answers: &[GraphId],
        code: Option<Option<CanonicalCode>>,
    ) {
        // A follower's cache changes only by replaying the primary's
        // delta groups: local queries are answered (read-only) but never
        // admitted, or the replica would diverge from the primary.
        // (Callers hold the write view, so this is promotion-atomic.)
        if self.follower.load(Ordering::Relaxed) {
            return;
        }
        let sig = GraphSignature::of(q);
        let dup = ctl
            .window_signatures
            .iter()
            .zip(ctl.window.iter())
            .any(|(s, e)| *s == sig && igq_iso::are_isomorphic(q, &e.graph));
        if dup {
            return;
        }
        ctl.window.push(WindowEntry {
            graph: Arc::new(q.clone()),
            answers: answers.to_vec(),
            signature: Some(sig),
            code,
        });
        ctl.window_signatures.push(sig);
    }

    /// Runs window maintenance when `W` queries have accumulated: evict,
    /// admit, and bring both query indexes up to date.
    fn maybe_maintain(&self, g: &mut WriteGuards) -> bool {
        if g.ctl.window.len() < self.config.window {
            return false;
        }
        self.run_maintenance(g);
        true
    }

    /// Evicts/admits the pending window and brings `Isub`/`Isuper` in line
    /// with the resulting slot delta — incrementally on this thread
    /// (remove evicted slots, insert admitted ones; O(window delta)), by
    /// rebuilding both indexes over the whole cache under
    /// [`MaintenanceMode::ShadowRebuild`] as the paper's Section 5.2
    /// prescribes, or — under [`MaintenanceMode::Background`] — by
    /// capturing the delta into the outbox for a post-lock
    /// [`drain_outbox`](Engine::drain_outbox) to submit.
    ///
    /// [`MaintenanceMode::ShadowRebuild`]: crate::MaintenanceMode::ShadowRebuild
    /// [`MaintenanceMode::Background`]: crate::MaintenanceMode::Background
    fn run_maintenance(&self, g: &mut WriteGuards) {
        if g.ctl.window.is_empty() {
            return;
        }
        let incoming = std::mem::take(&mut g.ctl.window);
        g.ctl.window_signatures.clear();
        self.apply_incoming(g, incoming, true);
    }

    /// Applies one admission batch as a window flip: a single-shard
    /// engine calls [`QueryCache::apply_window`] directly (bit-for-bit
    /// the pre-sharding behavior); a sharded engine runs the unified flip
    /// over the global allocator ([`shard::apply_window_sharded`]), which
    /// makes the identical slot decisions and scatters them to the owning
    /// shards. Evicted plans are dropped, the flip is captured as one WAL
    /// group, and each touched shard's index delta is applied inline or
    /// queued for its maintainer. Returns whether anything changed.
    /// `record_stats` distinguishes regular maintenance from
    /// [`Engine::import_entries`], which never counted as maintenance.
    fn apply_incoming(
        &self,
        g: &mut WriteGuards,
        incoming: Vec<WindowEntry>,
        record_stats: bool,
    ) -> bool {
        let deltas: Vec<WindowDelta> = if self.shards.len() == 1 {
            vec![g.shards[0].cache.apply_window(incoming)]
        } else {
            let ctl = &mut *g.ctl;
            let mut caches: Vec<&mut QueryCache> =
                g.shards.iter_mut().map(|sh| &mut sh.cache).collect();
            shard::apply_window_sharded(
                &mut ctl.alloc,
                &mut ctl.slot_owner,
                &self.router,
                self.config.cache_capacity,
                self.config.policy,
                &mut caches,
                incoming,
            )
        };
        if deltas.iter().all(WindowDelta::is_empty) {
            return false;
        }
        // Cached plans die with their windows: drop every evicted query's
        // plans (codes with a surviving isomorphic duplicate are not
        // listed, so their plans correctly live on).
        for code in deltas.iter().flat_map(|d| d.evicted_codes.iter()) {
            self.plan_cache.evict_key(code);
        }
        if record_stats {
            self.stats.count_maintenance();
        }
        self.capture_wal(g, &deltas);
        for (shard, delta) in deltas.iter().enumerate() {
            if delta.is_empty() {
                continue;
            }
            let cell = &self.shards[shard];
            let sh = &mut *g.shards[shard];
            match &cell.maintainer {
                Some(_) => {
                    // Capture under the shard's lock (job order = cache
                    // order); the possibly lag-gated submit happens in
                    // drain_outbox, after the caller releases the locks.
                    cell.outbox
                        .lock()
                        .push_back(MaintenanceJob::capture(&sh.cache, delta));
                }
                None => {
                    let maint_start = Instant::now();
                    let outcome = crate::maintain::apply_delta(
                        self.config.maintenance,
                        self.config.path_config,
                        &sh.cache,
                        delta,
                        &mut sh.isub,
                        &mut sh.isuper,
                    );
                    if record_stats {
                        self.stats.record_maintenance_work(
                            outcome.postings_touched,
                            outcome.rebuilt,
                            maint_start.elapsed(),
                        );
                    }
                }
            }
        }
        true
    }

    /// Captures one window flip as a WAL flip group — one record per
    /// shard, all tagged with the flip's `seq` (a single record for the
    /// unsharded engine, encoded exactly as before sharding existed).
    /// Runs under the full write view — right after the caches changed,
    /// so the group reflects exactly this flip — but does **no I/O**: the
    /// records are self-contained (entry clones, `Arc` graphs) and wait
    /// in the WAL outbox for [`Engine::drain_outbox`]. Every shard
    /// appears in the group even when its delta is empty: each record
    /// also snapshots that shard's full replacement-metadata table
    /// (metadata advances globally on every query, so recovery needs
    /// every shard's table as of the last flip — exactly what the
    /// unsharded record always carried).
    fn capture_wal(&self, g: &mut WriteGuards, deltas: &[WindowDelta]) {
        if self.persist.is_none() && !self.hub.is_active() {
            return;
        }
        g.ctl.seq += 1;
        let seq = g.ctl.seq;
        self.stats.set_last_applied_seq(seq);
        let n = self.shards.len();
        let group: Vec<persist::WalRecord> = deltas
            .iter()
            .enumerate()
            .map(|(shard, delta)| {
                let cache = &g.shards[shard].cache;
                persist::WalRecord {
                    seq,
                    shard,
                    group: n,
                    evicted: delta.evicted.clone(),
                    admitted: delta
                        .admitted
                        .iter()
                        .map(|&slot| persist::PersistedEntry {
                            slot,
                            entry: cache.entry(slot).clone(),
                            features: None,
                        })
                        .collect(),
                    metas: cache.iter().map(|(slot, e)| (slot, e.meta)).collect(),
                }
            })
            .collect();
        self.wal_outbox.lock().push_back(group);
    }

    /// Submits every outbox job to the background maintainer, in capture
    /// order. Runs *without* the state lock: the bounded-lag gate inside
    /// [`BackgroundMaintainer::submit`] may sleep until the maintainer
    /// catches up, and during that sleep other threads' queries keep
    /// probing, verifying, and bookkeeping freely — only fellow window
    /// flippers queue here (on the submit lock), which is exactly the
    /// intended backpressure population. The outbox mutex itself is held
    /// only per pop, so even a flipper pushing a new job under the state
    /// write lock never waits behind a sleeping gate. Safe to call while
    /// holding the state *read* lock (the gate clears independently: the
    /// maintainer takes no engine lock). No-op in the synchronous modes.
    fn drain_outbox(&self) {
        for cell in self.shards.iter() {
            let Some(m) = &cell.maintainer else { continue };
            // One drainer per shard at a time: pops happen only under the
            // shard's submit lock, in FIFO order, so submission order is
            // the capture order. A lag-gated sleep here stalls only
            // flippers of this shard.
            let _submitting = cell.submit_lock.lock();
            loop {
                let job = cell.outbox.lock().pop_front();
                let Some(job) = job else { break };
                m.submit(job);
            }
        }
        if self.persist.is_some() || self.hub.is_active() {
            // One appender at a time: group pops happen only under the
            // WAL lock, in FIFO order, so append order is flip order —
            // and so is publication order on the replication hub.
            let _appending = self.wal_lock.lock();
            loop {
                let group = self.wal_outbox.lock().pop_front();
                let Some(group) = group else { break };
                if let Some(p) = &self.persist {
                    // The whole flip group is one append (and one fsync
                    // on disk-backed stores): a crash can tear at most
                    // the final group, which recovery truncates exactly
                    // like a torn single record.
                    let mut bytes = Vec::new();
                    for record in &group {
                        bytes.extend_from_slice(&persist::encode_wal_record_with(record, p.codec));
                    }
                    let seq = group.first().map_or(0, |r| r.seq);
                    if p.degraded.load(Ordering::Relaxed) {
                        // Degraded mode: appending past a possibly-torn
                        // tail would turn it into a mid-log hole recovery
                        // must reject, and groups must land in flip order
                        // behind the ones already quarantined. Quarantine
                        // this group too, then attempt a backoff-gated
                        // retry of the whole queue.
                        p.quarantine.lock().push_back((seq, bytes));
                        self.try_drain_quarantine(p);
                    } else {
                        match p.store.append_wal(&bytes) {
                            Ok(()) => {
                                self.stats.count_wal_append(bytes.len() as u64);
                                p.appends_since_checkpoint.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => self.enter_degraded(p, seq, bytes, &e),
                        }
                    }
                }
                // Replication tracks the *live* engine, not the disk: the
                // group is published even when the local WAL is degraded
                // (followers mirror memory; durability is the primary's
                // own problem). Publication after the append attempt keeps
                // "what followers saw" always ≤ "what the primary wrote"
                // on a healthy log.
                if self.hub.is_active() {
                    self.hub.publish(DeltaGroup {
                        seq: group.first().map_or(0, |r| r.seq),
                        bytes: persist::encode_group_binary(
                            &group,
                            self.epoch.load(Ordering::Relaxed),
                        )
                        .into(),
                    });
                    self.stats.count_replica_group_published();
                }
            }
        }
    }

    /// Enters degraded mode after a failed WAL append: the flip group is
    /// quarantined (not dropped), the reason recorded for
    /// [`EngineStats::degraded_reason`], and the on-disk tail marked
    /// suspect. Serving continues exactly; only durability of the
    /// quarantined flips is deferred until the store recovers or a
    /// checkpoint re-covers them. Caller holds `wal_lock`.
    fn enter_degraded(&self, p: &PersistCtl, seq: u64, bytes: Vec<u8>, cause: &PersistError) {
        eprintln!(
            "igq: warning: WAL append failed ({cause}); entering degraded mode — \
             quarantining flip {seq} and retrying with backoff"
        );
        *p.degraded_reason.lock() = format!("WAL append failed: {cause}");
        p.quarantine.lock().push_back((seq, bytes));
        p.tail_suspect.store(true, Ordering::Relaxed);
        p.retry_strikes.store(1, Ordering::Relaxed);
        *p.retry_not_before.lock() = Some(Instant::now() + WAL_RETRY_FLOOR);
        p.degraded.store(true, Ordering::Relaxed);
        self.stats.count_wal_retry_failure();
    }

    /// One backoff-gated retry round over the quarantine: repair the
    /// (possibly torn) on-disk tail first, then replay quarantined groups
    /// in flip order. Clears degraded mode when the queue fully drains; a
    /// failure anywhere re-arms the backoff and leaves the rest queued.
    /// Caller holds `wal_lock`.
    fn try_drain_quarantine(&self, p: &PersistCtl) {
        if !p.degraded.load(Ordering::Relaxed) {
            return;
        }
        {
            let not_before = p.retry_not_before.lock();
            if let Some(t) = *not_before {
                if Instant::now() < t {
                    return;
                }
            }
        }
        let fail = |e: &PersistError| {
            let strikes = p.retry_strikes.fetch_add(1, Ordering::Relaxed);
            let backoff = WAL_RETRY_FLOOR
                .saturating_mul(1u32 << strikes.min(10) as u32)
                .min(WAL_RETRY_CEIL);
            *p.retry_not_before.lock() = Some(Instant::now() + backoff);
            *p.degraded_reason.lock() = format!("WAL retry failed: {e}");
            self.stats.count_wal_retry_failure();
        };
        // Tail repair: a failed append may have left a partial record at
        // the end of the log. Rewriting the log minus the torn bytes
        // (compaction at seq 0 keeps every intact record) restores a
        // clean append point before any quarantined group lands.
        if p.tail_suspect.load(Ordering::Relaxed) {
            let repaired = (|| -> Result<(), PersistError> {
                let header = persist::WalHeader {
                    config_fp: p.config_fp,
                    dataset_fp: p.dataset_fp,
                    shards: self.config.shards,
                    epoch: self.epoch.load(Ordering::Relaxed),
                };
                let (compacted, _) =
                    persist::compact_wal_with(&p.store.load_wal()?, 0, &header, p.codec);
                p.store.replace_wal(&compacted)?;
                Ok(())
            })();
            match repaired {
                Ok(()) => p.tail_suspect.store(false, Ordering::Relaxed),
                Err(e) => {
                    fail(&e);
                    return;
                }
            }
        }
        loop {
            let front = p.quarantine.lock().front().cloned();
            let Some((_seq, bytes)) = front else { break };
            match p.store.append_wal(&bytes) {
                Ok(()) => {
                    self.stats.count_wal_append(bytes.len() as u64);
                    p.appends_since_checkpoint.fetch_add(1, Ordering::Relaxed);
                    p.quarantine.lock().pop_front();
                }
                Err(e) => {
                    // This retry itself may have torn the tail.
                    p.tail_suspect.store(true, Ordering::Relaxed);
                    fail(&e);
                    return;
                }
            }
        }
        self.clear_degraded(p);
        eprintln!("igq: info: degraded mode cleared — quarantined WAL flips replayed");
    }

    /// Leaves degraded mode: quarantine empty (drained or subsumed by a
    /// checkpoint), log healthy.
    fn clear_degraded(&self, p: &PersistCtl) {
        p.degraded.store(false, Ordering::Relaxed);
        *p.degraded_reason.lock() = String::new();
        *p.retry_not_before.lock() = None;
        p.retry_strikes.store(0, Ordering::Relaxed);
        p.tail_suspect.store(false, Ordering::Relaxed);
    }

    /// Forces maintenance regardless of window fill (used by harnesses at
    /// warm-up boundaries).
    pub fn flush_window(&self) {
        {
            let mut g = self.lock_write();
            self.run_maintenance(&mut g);
        }
        self.drain_outbox();
        self.maybe_auto_checkpoint();
    }

    /// Writes a checkpoint to the attached [`CacheStore`] and compacts
    /// the WAL to the post-checkpoint tail. The snapshot covers the full
    /// durable state — cache, indexes (as per-slot feature sets), pending
    /// window, replacement metadata, free-slot geometry — **without**
    /// flushing the window or otherwise perturbing engine behavior, so a
    /// checkpointed engine and an untouched one remain observationally
    /// identical.
    ///
    /// State capture runs under the state *read* lock (concurrent queries
    /// proceed; flips wait); encoding, storage I/O, and WAL compaction
    /// run with no engine lock held. A no-op `Ok(())` for engines
    /// constructed without a store ([`Engine::new`]).
    pub fn checkpoint(&self) -> Result<(), PersistError> {
        self.checkpoint_inner(true)
    }

    fn checkpoint_inner(&self, blocking: bool) -> Result<(), PersistError> {
        let Some(p) = &self.persist else {
            return Ok(());
        };
        let _one_at_a_time = if blocking {
            p.checkpoint_lock.lock()
        } else {
            match p.checkpoint_lock.try_lock() {
                Some(guard) => guard,
                // An auto-checkpoint is already in flight; this flip's
                // state will be covered by the next cadence hit.
                None => return Ok(()),
            }
        };
        let start = Instant::now();
        let data = {
            // Same discipline as `self_check`: under the read guards no
            // flip can land, and drain + sync (both lock-free w.r.t. the
            // state locks) bring the published snapshots to exactly this
            // cache state so feature sets can be read from them.
            let g = self.lock_read();
            self.drain_outbox();
            self.sync_maintenance();
            self.capture_state(&g, p.config_fp, p.dataset_fp)
        };
        let seq = data.seq;
        let bytes = persist::encode_checkpoint_with(&data, p.codec);
        p.store.save_checkpoint(&bytes)?;
        // Compact the WAL down to records the checkpoint does not cover.
        // Under the WAL lock no appender is concurrently writing, so
        // the rewrite cannot drop a record newer than the checkpoint;
        // captured-but-undrained records are safe either way (their seq
        // decides replay). The compaction works on raw bytes (each line's
        // seq read from its payload prefix, no per-record decode) because
        // this section blocks WAL appends. It is also the recovery path
        // for an unhealthy log (failed append earlier): every flip up to
        // `seq` is covered by the checkpoint just written, and the
        // rewrite drops the torn tail the failed append left behind.
        let kept_len = {
            let _appending = self.wal_lock.lock();
            let header = persist::WalHeader {
                config_fp: p.config_fp,
                dataset_fp: p.dataset_fp,
                shards: self.config.shards,
                epoch: self.epoch.load(Ordering::Relaxed),
            };
            let (compacted, kept) =
                persist::compact_wal_with(&p.store.load_wal()?, seq, &header, p.codec);
            p.store.replace_wal(&compacted)?;
            // The rewrite healed any torn tail, and every quarantined
            // flip at or below the checkpoint seq is covered by the
            // snapshot just written; later ones re-append onto the
            // freshly compacted log (still under the WAL lock, so order
            // holds). Degraded mode clears unless a re-append fails.
            {
                let mut q = p.quarantine.lock();
                while q.front().is_some_and(|(gseq, _)| *gseq <= seq) {
                    q.pop_front();
                }
            }
            p.tail_suspect.store(false, Ordering::Relaxed);
            let mut kept = kept;
            loop {
                let front = p.quarantine.lock().front().cloned();
                let Some((_gseq, bytes)) = front else {
                    if p.degraded.load(Ordering::Relaxed) {
                        self.clear_degraded(p);
                        eprintln!(
                            "igq: info: degraded mode cleared — checkpoint re-covered the \
                             quarantined WAL flips"
                        );
                    }
                    break;
                };
                match p.store.append_wal(&bytes) {
                    Ok(()) => {
                        self.stats.count_wal_append(bytes.len() as u64);
                        p.quarantine.lock().pop_front();
                        kept += 1;
                    }
                    Err(e) => {
                        // Store still faulty: the checkpoint itself
                        // succeeded, so durability is current up to `seq`;
                        // the rest stays quarantined for the next retry.
                        p.tail_suspect.store(true, Ordering::Relaxed);
                        *p.degraded_reason.lock() = format!("WAL retry failed: {e}");
                        self.stats.count_wal_retry_failure();
                        break;
                    }
                }
            }
            kept
        };
        p.appends_since_checkpoint
            .store(kept_len, Ordering::Relaxed);
        self.stats
            .record_checkpoint(start.elapsed(), bytes.len() as u64);
        Ok(())
    }

    /// Auto-checkpoint when the configured cadence has elapsed. Called
    /// off the state lock after outbox drains; failures are reported to
    /// stderr (the engine keeps serving — an explicit
    /// [`checkpoint`](Engine::checkpoint) call surfaces the error).
    fn maybe_auto_checkpoint(&self) {
        let Some(p) = &self.persist else { return };
        let Some(every) = p.checkpoint_every else {
            return;
        };
        // A degraded WAL (quarantined flips) checkpoints immediately —
        // the wholesale rewrite is the fastest path back to durability.
        if !p.degraded.load(Ordering::Relaxed)
            && p.appends_since_checkpoint.load(Ordering::Relaxed) < every
        {
            return;
        }
        if let Err(e) = self.checkpoint_inner(false) {
            eprintln!("igq: warning: auto-checkpoint failed: {e}");
        }
    }

    /// Snapshots the full durable state (the checkpoint payload and the
    /// single serialization path behind [`Engine::checkpoint`] and
    /// [`Engine::export_entries`]). Caller holds the state locks; under
    /// background maintenance the caller must have synced the maintainers
    /// first so per-slot feature sets can be read from the published
    /// snapshots (a slot missing there falls back to re-enumeration).
    ///
    /// The checkpoint stores one *global* slot namespace regardless of
    /// shard count: per-shard entries are merged and sorted by slot, and
    /// the slot/free geometry comes from the global allocator (from the
    /// single cache at `shards == 1`). Recovery re-partitions entries by
    /// the deterministic shard routing, so the payload itself carries no
    /// ownership map — only the shard *count*, to reject mismatched
    /// reopens.
    fn capture_state(
        &self,
        g: &ReadGuards<'_>,
        config_fp: u64,
        dataset_fp: u64,
    ) -> persist::CheckpointData {
        let mut entries: Vec<persist::PersistedEntry> = Vec::new();
        for (cell, sh) in self.shards.iter().zip(g.shards.iter()) {
            let snap = cell.maintainer.as_ref().map(|m| m.snapshot());
            let index = match &snap {
                Some(pair) => &pair.isub,
                None => &sh.isub,
            };
            entries.extend(sh.cache.iter().map(|(slot, e)| persist::PersistedEntry {
                slot,
                entry: e.clone(),
                features: Some(match index.slot_features(slot) {
                    Some((counts, complete_len)) => persist::SlotFeatureSet {
                        counts,
                        complete_len,
                    },
                    None => {
                        let f = enumerate_paths(&e.graph, &self.config.path_config);
                        persist::SlotFeatureSet {
                            counts: f.counts.iter().map(|(k, &v)| (k.clone(), v)).collect(),
                            complete_len: f.complete_len,
                        }
                    }
                }),
            }));
        }
        entries.sort_unstable_by_key(|p| p.slot);
        let (round, slot_count, free) = if self.shards.len() == 1 {
            let cache = &g.shards[0].cache;
            (
                cache.round(),
                cache.slot_count(),
                cache.free_slots().to_vec(),
            )
        } else {
            let alloc = &g.ctl.alloc;
            (alloc.round, alloc.slot_count, alloc.free.clone())
        };
        persist::CheckpointData {
            seq: g.ctl.seq,
            config_fp,
            dataset_fp,
            epoch: self.epoch.load(Ordering::Relaxed),
            shards: self.config.shards,
            labels: g.ctl.cost_model.label_universe(),
            round,
            slot_count,
            free,
            entries,
            window: g.ctl.window.clone(),
        }
    }

    /// Exports every cached `(query, answers)` pair — resident entries in
    /// slot order, then pending window entries in arrival order — through
    /// the same state capture the checkpoint uses. Does not mutate the
    /// engine (in particular, the window is *not* flushed).
    ///
    /// Note for full-cache round-trips: [`Engine::import_entries`]
    /// head-truncates at the target's capacity, so an export of `C`
    /// residents plus `w` window entries imported into a same-capacity
    /// engine reports the `w` window pairs as
    /// [`skipped_capacity`](ImportReport::skipped_capacity). Call
    /// [`flush_window`](Engine::flush_window) before exporting if the
    /// replacement policy should arbitrate between residents and the
    /// pending window instead.
    pub fn export_entries(&self) -> Vec<(Graph, Vec<GraphId>)> {
        let data = {
            let g = self.lock_read();
            self.drain_outbox();
            self.sync_maintenance();
            self.capture_state(&g, 0, 0)
        };
        data.entries
            .into_iter()
            .map(|p| (p.entry.graph.as_ref().clone(), p.entry.answers))
            .chain(
                data.window
                    .into_iter()
                    .map(|w| (w.graph.as_ref().clone(), w.answers)),
            )
            .collect()
    }

    /// Seeds the cache with previously exported `(query, answers)` pairs
    /// and updates the query indexes. Intended for warm starts; the
    /// caller is responsible for the answers matching this engine's
    /// dataset (a mismatched import would violate the correctness
    /// guarantees, so entries whose answer ids exceed the dataset are
    /// rejected and reported in
    /// [`skipped_invalid`](ImportReport::skipped_invalid)).
    ///
    /// **Truncation order**: valid entries are admitted in input order;
    /// once `cache_capacity` of them have been taken, the *tail* of the
    /// batch is skipped and reported in
    /// [`skipped_capacity`](ImportReport::skipped_capacity) — nothing is
    /// dropped silently. (Admitting into a non-empty cache may also evict
    /// current residents per the replacement policy; that is regular
    /// cache behavior, not a skip.) On a store-attached engine the import
    /// is persisted like any window flip.
    ///
    /// On a follower ([`Engine::open_follower`]) the call is rejected
    /// with [`ReplicaError::ReadOnly`]: a replica's cache changes only by
    /// replaying the primary's delta groups.
    pub fn import_entries(
        &self,
        entries: Vec<(Graph, Vec<GraphId>)>,
    ) -> Result<ImportReport, ReplicaError> {
        if self.is_follower() {
            return Err(ReplicaError::ReadOnly("import_entries"));
        }
        let n = D::store(&self.method).len() as u32;
        let total = entries.len();
        let admissible: Vec<WindowEntry> = entries
            .into_iter()
            .filter(|(_, answers)| answers.iter().all(|id| id.raw() < n))
            .map(|(g, answers)| WindowEntry::bare(Arc::new(g), answers))
            .collect();
        let skipped_invalid = total - admissible.len();
        let admitted = admissible.len().min(self.config.cache_capacity);
        let skipped_capacity = admissible.len() - admitted;
        {
            let mut g = self.lock_write();
            // `record_stats: false` — imports are seeding, not paid
            // maintenance; they neither count a window flip nor record
            // maintenance work, matching the pre-sharding behavior.
            self.apply_incoming(&mut g, admissible, false);
        }
        // Submit and synchronize so a warm start is immediately
        // probe-visible.
        self.drain_outbox();
        self.sync_maintenance();
        self.maybe_auto_checkpoint();
        Ok(ImportReport {
            admitted,
            skipped_capacity,
            skipped_invalid,
        })
    }

    /// Deprecated wrapper over [`Engine::export_entries`] that keeps the
    /// legacy contract exactly: the window is **flushed first** (window
    /// entries compete for cache slots under the replacement policy), so
    /// a full round-trip through a same-capacity engine preserves the
    /// freshest queries instead of head-truncating them away. The
    /// non-mutating `export_entries` appends the pending window after the
    /// residents instead; call `flush_window()` first if you want the
    /// policy to arbitrate.
    #[deprecated(note = "use `export_entries` (or `checkpoint` on a store-attached engine)")]
    pub fn export_cache(&self) -> Vec<(Graph, Vec<GraphId>)> {
        self.flush_window();
        self.export_entries()
    }

    /// Deprecated wrapper over [`Engine::import_entries`] that reports
    /// only the admitted count, silently discarding the skip breakdown
    /// (and, on a follower, the read-only rejection).
    #[deprecated(note = "use `import_entries`, which reports skipped entries")]
    pub fn import_cache(&self, entries: Vec<(Graph, Vec<GraphId>)>) -> usize {
        self.import_entries(entries).map_or(0, |r| r.admitted)
    }

    /// Debug/production sanity check: verifies the engine's internal
    /// invariants (cache within capacity, sorted answer sets), then diffs
    /// the incrementally maintained query indexes against a fresh shadow
    /// rebuild over the cache — any drift between delta maintenance and
    /// the ground-truth rebuild is reported. Under background maintenance
    /// the maintainer is synchronized first and its published snapshot is
    /// diffed. The invariant part is cheap; the index diff re-enumerates
    /// every cached graph, so call this at checkpoints rather than per
    /// query in large deployments.
    pub fn self_check(&self) -> Result<(), String> {
        // Take the read guards FIRST: every cache change visible under
        // them already has its maintenance job in its shard's outbox
        // (pushes happen under the same write locks as the cache change),
        // and no new change can land while we hold them. Draining and
        // syncing now — both safe under the read guards, since the
        // maintainers take no engine lock — brings each published
        // snapshot to *exactly* this cache state; a concurrent flipper's
        // captured-but-undrained job can no longer make a healthy engine
        // look diverged.
        let g = self.lock_read();
        self.drain_outbox();
        self.sync_maintenance();
        let total_len: usize = g.shards.iter().map(|sh| sh.cache.len()).sum();
        if total_len > self.config.cache_capacity {
            return Err(format!(
                "cache over capacity: {} > {}",
                total_len, self.config.cache_capacity
            ));
        }
        for sh in g.shards.iter() {
            for (slot, e) in sh.cache.iter() {
                if !e.answers.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("slot {slot}: answers not sorted/unique"));
                }
                let n = D::store(&self.method).len() as u32;
                if e.answers.iter().any(|id| id.raw() >= n) {
                    return Err(format!("slot {slot}: answer id out of dataset range"));
                }
            }
        }
        if g.ctl.window.len() != g.ctl.window_signatures.len() {
            return Err("window/signature length mismatch".into());
        }
        // Sharded geometry: the global allocator and ownership map must
        // agree with the per-shard caches (at one shard the cache keeps
        // its own free list and the allocator is unused).
        if self.shards.len() > 1 {
            let alloc = &g.ctl.alloc;
            if alloc.len != total_len {
                return Err(format!(
                    "allocator len {} != sum of shard lens {}",
                    alloc.len, total_len
                ));
            }
            let mut seen = vec![false; alloc.slot_count];
            for (shard, sh) in g.shards.iter().enumerate() {
                for (slot, _) in sh.cache.iter() {
                    if slot >= alloc.slot_count {
                        return Err(format!("slot {slot} beyond allocator slot_count"));
                    }
                    if g.ctl.slot_owner.get(slot) != Some(&shard) {
                        return Err(format!(
                            "slot {slot} held by shard {shard} but owner map says {:?}",
                            g.ctl.slot_owner.get(slot)
                        ));
                    }
                    seen[slot] = true;
                }
            }
            for &slot in &alloc.free {
                if slot >= alloc.slot_count {
                    return Err(format!("free slot {slot} beyond allocator slot_count"));
                }
                if seen[slot] {
                    return Err(format!("free slot {slot} is occupied by a shard"));
                }
            }
        }
        // Index ≡ cache, per shard: each shard's indexes must hold
        // exactly that shard's cached slots, with postings identical to a
        // from-scratch rebuild over that shard alone.
        for (shard, (cell, sh)) in self.shards.iter().zip(g.shards.iter()).enumerate() {
            let (isub_snapshot, isuper_snapshot) = match &cell.maintainer {
                Some(m) => {
                    let pair = m.snapshot();
                    (pair.isub.snapshot(), pair.isuper.snapshot())
                }
                None => (sh.isub.snapshot(), sh.isuper.snapshot()),
            };
            let graphs = || {
                sh.cache
                    .iter()
                    .map(|(slot, e)| (slot, Arc::clone(&e.graph)))
            };
            let fresh_isub = IsubIndex::build(graphs(), self.config.path_config);
            isub_snapshot
                .diff(&fresh_isub.snapshot())
                .map_err(|e| format!("shard {shard}: Isub drifted from shadow rebuild: {e}"))?;
            let fresh_isuper = IsuperIndex::build(graphs(), self.config.path_config);
            isuper_snapshot
                .diff(&fresh_isuper.snapshot())
                .map_err(|e| format!("shard {shard}: Isuper drifted from shadow rebuild: {e}"))?;
        }
        Ok(())
    }

    /// The filter + probe stage: the three-thread pipeline of Fig. 6 when
    /// [`IgqConfig::parallel_probes`] is set, inline otherwise. Each
    /// `(isub, isuper)` pair is one shard's indexes — either a published
    /// snapshot's (background maintenance — caller holds no lock) or the
    /// engine's own (synchronous modes — caller holds the state locks,
    /// whose guards lend the refs to the probe threads). Returns the
    /// per-shard probe results (merged later by [`merge_probes`]) plus
    /// the filter and probe wall times.
    fn filter_and_probe(
        &self,
        pairs: &[(&IsubIndex, &IsuperIndex)],
        q: &Graph,
        qf: &PathFeatures,
        qcode: Option<&CanonicalCode>,
    ) -> (
        Filtered,
        Vec<ShardProbe>,
        std::time::Duration,
        std::time::Duration,
    ) {
        if !self.config.parallel_probes {
            let f_start = Instant::now();
            let filtered = D::filter(&self.method, q, qf);
            let filter_time = f_start.elapsed();
            let p_start = Instant::now();
            let per_shard = pairs
                .iter()
                .map(|&(isub, isuper)| probe_pair(isub, isuper, q, qf, &self.plan_cache, qcode))
                .collect();
            return (filtered, per_shard, filter_time, p_start.elapsed());
        }
        let mut filtered = None;
        let mut subs = None;
        let mut sups = None;
        let mut filter_time = std::time::Duration::ZERO;
        let mut probe_time = std::time::Duration::ZERO;
        crossbeam::scope(|scope| {
            let filter_handle = scope.spawn(|_| {
                let t = Instant::now();
                let f = D::filter(&self.method, q, qf);
                (f, t.elapsed())
            });
            let sub_handle = scope.spawn(|_| {
                let t = Instant::now();
                let r: Vec<_> = pairs
                    .iter()
                    .map(|&(isub, _)| {
                        isub.supergraphs_of_with_plans(q, qf, qcode.map(|c| (&self.plan_cache, c)))
                    })
                    .collect();
                (r, t.elapsed())
            });
            let sup_handle = scope.spawn(|_| {
                let t = Instant::now();
                let r: Vec<_> = pairs
                    .iter()
                    .map(|&(_, isuper)| {
                        isuper.subgraphs_of_with_plans(q, qf, Some(&self.plan_cache))
                    })
                    .collect();
                (r, t.elapsed())
            });
            let (f, ft) = filter_handle.join().expect("filter thread");
            let (s, st) = sub_handle.join().expect("isub thread");
            let (p, pt) = sup_handle.join().expect("isuper thread");
            filter_time = ft;
            probe_time = st.max(pt);
            filtered = Some(f);
            subs = Some(s);
            sups = Some(p);
        })
        .expect("probe scope");
        let per_shard = subs
            .expect("isub results")
            .into_iter()
            .zip(sups.expect("isuper results"))
            .collect();
        (
            filtered.expect("filter result"),
            per_shard,
            filter_time,
            probe_time,
        )
    }
}

impl<D: QueryDirection> Drop for Engine<D> {
    /// Flushes any captured-but-unappended WAL records (and pending
    /// maintenance jobs) so a clean shutdown loses no persisted flip.
    /// Queries still in the window are covered only by an explicit
    /// [`checkpoint`](Engine::checkpoint) before drop.
    fn drop(&mut self) {
        self.drain_outbox();
    }
}

/// Records hit metadata: known-path hits are credited with the candidates
/// their answers *cover* (`CS ∩ Answer`), bounding hits with the
/// candidates their answers *exclude* (`CS \ Answer`). `bonus` optionally
/// awards one slot the full candidate-set prune credit (optimal-case
/// resolutions). A free function (not a method) so the disjoint borrows of
/// the guard fields stay obvious; slots are resolved to their owning
/// shard through the control block's ownership map.
fn credit_hits<D: QueryDirection>(
    engine: &Engine<D>,
    g: &mut WriteGuards<'_>,
    q: &Graph,
    cs: &[GraphId],
    known_slots: &[usize],
    bound_slots: &[usize],
    bonus: Option<(usize, LogValue)>,
) {
    for &s in known_slots {
        let prunes = intersect_sorted(cs, &slot_entry(&g.ctl, &g.shards, s).answers);
        let cost = engine.cost_of(&mut g.ctl.cost_model, q, &prunes);
        slot_entry_mut(&g.ctl, &mut g.shards, s)
            .meta
            .record_hit(prunes.len() as u64, cost);
    }
    for &s in bound_slots {
        let prunes = subtract_sorted(cs, &slot_entry(&g.ctl, &g.shards, s).answers);
        let cost = engine.cost_of(&mut g.ctl.cost_model, q, &prunes);
        slot_entry_mut(&g.ctl, &mut g.shards, s)
            .meta
            .record_hit(prunes.len() as u64, cost);
    }
    if let Some((slot, credit)) = bonus {
        slot_entry_mut(&g.ctl, &mut g.shards, slot)
            .meta
            .record_hit(cs.len() as u64, credit);
    }
}

/// One shard's probe results: `(Isub hits, Isuper hits)`, each a sorted
/// slot list plus the iso-test counters the probe spent producing it.
type ShardProbe = ((Vec<usize>, IsoStats), (Vec<usize>, IsoStats));

/// Sequentially probes one shard's query indexes — the shared body of the
/// non-parallel stage-2, whether the indexes come from a published
/// snapshot (background mode, lock-free) or the live state (synchronous
/// modes, caller holds the shard's state lock).
fn probe_pair(
    isub: &IsubIndex,
    isuper: &IsuperIndex,
    q: &Graph,
    qf: &PathFeatures,
    plan_cache: &PlanCache,
    qcode: Option<&CanonicalCode>,
) -> ShardProbe {
    (
        isub.supergraphs_of_with_plans(q, qf, qcode.map(|c| (plan_cache, c))),
        isuper.subgraphs_of_with_plans(q, qf, Some(plan_cache)),
    )
}

/// Gathers per-shard probe results into one global candidate view. The
/// single-shard case passes through untouched — bit-for-bit the
/// unsharded behavior. With several shards the slot lists concatenate and
/// sort (exact: shards hold disjoint slot sets, and each probe returns
/// its slots ascending) and the iso counters sum.
fn merge_probes(mut per_shard: Vec<ShardProbe>) -> ShardProbe {
    if per_shard.len() == 1 {
        return per_shard.pop().expect("one probe");
    }
    let mut sub_slots = Vec::new();
    let mut super_slots = Vec::new();
    let mut sub_stats = IsoStats::default();
    let mut super_stats = IsoStats::default();
    for ((sub, ss), (sup, ps)) in per_shard {
        sub_slots.extend(sub);
        super_slots.extend(sup);
        sub_stats.merge(&ss);
        super_stats.merge(&ps);
    }
    sub_slots.sort_unstable();
    super_slots.sort_unstable();
    ((sub_slots, sub_stats), (super_slots, super_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MaintenanceMode;
    use igq_graph::{graph_from, GraphStore};
    use igq_methods::{Ggsx, GgsxConfig, NaiveMethod, SubgraphMethod};
    use std::sync::Arc;

    fn store() -> Arc<GraphStore> {
        Arc::new(
            vec![
                graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),            // g0
                graph_from(&[0, 1], &[(0, 1)]),                       // g1
                graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]),    // g2
                graph_from(&[0, 1, 2, 0], &[(0, 1), (1, 2), (2, 3)]), // g3
            ]
            .into_iter()
            .collect(),
        )
    }

    fn engine() -> IgqEngine<Ggsx> {
        let s = store();
        let method = Ggsx::build(&s, GgsxConfig::default());
        IgqEngine::new(
            method,
            IgqConfig::builder()
                .cache_capacity(8)
                .window(2)
                .build()
                .expect("valid config"),
        )
        .expect("valid engine")
    }

    fn ids(raw: &[u32]) -> Vec<GraphId> {
        raw.iter().map(|&r| GraphId::new(r)).collect()
    }

    #[test]
    fn answers_match_method_and_oracle() {
        let s = store();
        let naive = NaiveMethod::build(&s);
        let e = engine();
        for q in [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[0, 1], &[(0, 1)]), // repeat
            graph_from(&[9], &[]),
        ] {
            let out = e.query(&q);
            let (truth, _) = naive.query(&q);
            assert_eq!(out.answers, truth, "query {q:?}");
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let s = store();
        let method = Ggsx::build(&s, GgsxConfig::default());
        let bad = IgqConfig {
            cache_capacity: 4,
            window: 9,
            ..Default::default()
        };
        assert_eq!(
            IgqEngine::new(method, bad).err(),
            Some(ConfigError::WindowExceedsCapacity {
                window: 9,
                cache_capacity: 4
            })
        );
    }

    #[test]
    fn exact_repeat_hits_after_maintenance() {
        let e = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = e.query(&q);
        assert_eq!(first.resolution, Resolution::Verified);
        // Window = 2: a second distinct query flushes the window.
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.db_iso_tests, 0);
        assert_eq!(repeat.answers, first.answers);
        assert_eq!(e.stats().exact_hits, 1);
    }

    #[test]
    fn exact_fastpath_skips_probe_iso_tests() {
        let s = store();
        let mk = |fastpath| {
            let method = Ggsx::build(&s, GgsxConfig::default());
            IgqEngine::new(
                method,
                IgqConfig {
                    cache_capacity: 8,
                    window: 1,
                    exact_fastpath: fastpath,
                    ..Default::default()
                },
            )
            .expect("valid engine")
        };
        let q = graph_from(&[0, 1], &[(0, 1)]);
        for fastpath in [true, false] {
            let e = mk(fastpath);
            let first = e.query(&q);
            let repeat = e.query(&q);
            assert_eq!(
                repeat.resolution,
                Resolution::ExactHit,
                "fastpath={fastpath}"
            );
            assert_eq!(repeat.answers, first.answers);
            assert_eq!(repeat.db_iso_tests, 0);
            if fastpath {
                // The fast path resolves repeats without probing the query
                // indexes at all.
                assert_eq!(repeat.igq_iso_tests, 0, "no probe tests on the fast path");
            } else {
                assert!(repeat.igq_iso_tests > 0, "probe path pays iso tests");
            }
        }
    }

    #[test]
    fn isomorphic_not_identical_repeat_also_hits() {
        let e = engine();
        let q1 = graph_from(&[0, 1], &[(0, 1)]);
        let q2 = graph_from(&[1, 0], &[(0, 1)]); // same graph, relabeled
        let first = e.query(&q1);
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        let repeat = e.query(&q2);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.answers, first.answers);
    }

    #[test]
    fn empty_answer_shortcut_fires() {
        let e = engine();
        // 9-9 edge: no dataset graph contains it → empty answer cached.
        let empty_q = graph_from(&[9, 9], &[(0, 1)]);
        let first = e.query(&empty_q);
        assert!(first.answers.is_empty());
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        // A supergraph of the cached empty-answer query.
        let bigger = graph_from(&[9, 9, 9], &[(0, 1), (1, 2)]);
        let out = e.query(&bigger);
        assert_eq!(out.resolution, Resolution::EmptyAnswerShortcut);
        assert!(out.answers.is_empty());
        assert_eq!(out.db_iso_tests, 0);
    }

    #[test]
    fn subgraph_case_prunes_and_restores_answers() {
        let e = engine();
        // Cache the big query first: 0-1-0 path answered by {g0}.
        let big = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let big_out = e.query(&big);
        assert_eq!(big_out.answers, ids(&[0]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        // Now the smaller query 0-1: g ⊆ big, so Answer(big) = {g0} must be
        // skipped during verification yet appear in the final answer.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let out = e.query(&small);
        assert!(out.isub_hits >= 1);
        assert!(out.pruned_by_isub >= 1);
        assert_eq!(out.answers, ids(&[0, 1, 3]));
        assert!(out.db_iso_tests < out.candidates_before as u64);
    }

    #[test]
    fn supergraph_case_prunes_non_answers() {
        let e = engine();
        // Cache the small query: 0-1 edge → answers {g0, g1, g3}.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let small_out = e.query(&small);
        assert_eq!(small_out.answers, ids(&[0, 1, 3]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        // Bigger query containing the cached one: candidates outside
        // Answer(small) are pruned by formula (5).
        let big = graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let out = e.query(&big);
        assert!(out.isuper_hits >= 1);
        assert_eq!(out.answers, ids(&[3]));
    }

    #[test]
    fn window_and_cache_mechanics() {
        let e = engine();
        assert_eq!(e.cached_queries(), 0);
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        assert_eq!(e.cached_queries(), 0); // still in window
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert_eq!(e.cached_queries(), 2); // window flushed at W=2
        assert_eq!(e.stats().maintenances, 1);
    }

    #[test]
    fn duplicate_window_entries_are_not_double_cached() {
        let e = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let _ = e.query(&q);
        let _ = e.query(&q); // same query again, still in window
        e.flush_window();
        assert_eq!(e.cached_queries(), 1);
    }

    #[test]
    fn skip_admission_option_keeps_query_out_of_cache() {
        let e = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let resp = e.execute(&QueryRequest::new(q.clone()).skip_admission());
        assert_eq!(resp.outcome.resolution, Resolution::Verified);
        e.flush_window();
        assert_eq!(e.cached_queries(), 0, "skip-admission query never cached");
        // The same query through the plain path does get cached.
        let _ = e.query(&q);
        e.flush_window();
        assert_eq!(e.cached_queries(), 1);
    }

    #[test]
    fn deadline_is_reported_not_enforced() {
        let e = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let strict = e.execute(&QueryRequest::new(q.clone()).deadline(std::time::Duration::ZERO));
        assert!(strict.deadline_exceeded, "zero deadline always exceeded");
        let (truth, _) = NaiveMethod::build(&store()).query(&q);
        assert_eq!(
            strict.outcome.answers, truth,
            "answers stay exact regardless of deadline"
        );
        let lax = e.execute(&QueryRequest::new(q).deadline(std::time::Duration::from_secs(3600)));
        assert!(!lax.deadline_exceeded);
    }

    #[test]
    fn parallel_probes_agree_with_sequential() {
        let s = store();
        let mk = |parallel| {
            let method = Ggsx::build(&s, GgsxConfig::default());
            IgqEngine::new(
                method,
                IgqConfig {
                    cache_capacity: 8,
                    window: 2,
                    parallel_probes: parallel,
                    ..Default::default()
                },
            )
            .expect("valid engine")
        };
        let seq = mk(false);
        let par = mk(true);
        for q in [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[0, 1], &[(0, 1)]),
        ] {
            assert_eq!(seq.query(&q).answers, par.query(&q).answers);
        }
    }

    #[test]
    fn igq_index_size_grows_with_cache() {
        let e = engine();
        let empty = e.igq_index_size_bytes();
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert!(e.igq_index_size_bytes() > empty);
    }

    #[test]
    fn export_import_warm_start() {
        let warm = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = warm.query(&q);
        let exported = warm.export_entries();
        assert_eq!(exported.len(), 1, "window entries are exported too");

        let cold = engine();
        let report = cold.import_entries(exported).expect("primary import");
        assert_eq!(report.admitted, 1);
        assert_eq!(report.skipped_capacity, 0);
        assert_eq!(report.skipped_invalid, 0);
        let out = cold.query(&q);
        assert_eq!(out.resolution, Resolution::ExactHit);
        assert_eq!(out.answers, first.answers);
        cold.self_check().expect("invariants hold after import");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_export_import_wrappers_still_work() {
        let warm = engine();
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = warm.query(&q);
        let exported = warm.export_cache();
        assert_eq!(exported.len(), 1);
        let cold = engine();
        assert_eq!(cold.import_cache(exported), 1);
        assert_eq!(cold.query(&q).answers, first.answers);
    }

    #[test]
    fn import_rejects_out_of_range_answers() {
        let e = engine();
        let alien = vec![(graph_from(&[0, 1], &[(0, 1)]), vec![GraphId::new(999)])];
        let report = e.import_entries(alien).expect("primary import");
        assert_eq!(report.admitted, 0);
        assert_eq!(report.skipped_invalid, 1);
        assert_eq!(e.cached_queries(), 0);
    }

    #[test]
    fn import_reports_capacity_truncation_in_order() {
        // Capacity 2, four valid entries: the first two are admitted, the
        // tail is reported skipped — the documented truncation order.
        let s = store();
        let method = Ggsx::build(&s, GgsxConfig::default());
        let e = IgqEngine::new(
            method,
            IgqConfig {
                cache_capacity: 2,
                window: 1,
                ..Default::default()
            },
        )
        .expect("valid engine");
        let mk = |l: u32| (graph_from(&[l, l + 1], &[(0, 1)]), vec![GraphId::new(0)]);
        let report = e
            .import_entries(vec![mk(0), mk(10), mk(20), mk(30)])
            .expect("primary import");
        assert_eq!(
            report,
            ImportReport {
                admitted: 2,
                skipped_capacity: 2,
                skipped_invalid: 0
            }
        );
        assert_eq!(e.cached_queries(), 2);
        // The residents are the *head* of the batch.
        let sigs: Vec<GraphSignature> = {
            let exported = e.export_entries();
            exported
                .iter()
                .map(|(g, _)| GraphSignature::of(g))
                .collect()
        };
        assert!(sigs.contains(&GraphSignature::of(&mk(0).0)));
        assert!(sigs.contains(&GraphSignature::of(&mk(10).0)));
    }

    fn workload() -> Vec<Graph> {
        vec![
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]),
            graph_from(&[9, 9], &[(0, 1)]),
            graph_from(&[0, 1], &[(0, 1)]), // repeat
            graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]),
            graph_from(&[1, 0], &[(0, 1)]), // isomorphic repeat
            graph_from(&[0], &[]),
            graph_from(&[2], &[]),
        ]
    }

    fn engine_with_mode(mode: MaintenanceMode, capacity: usize, window: usize) -> IgqEngine<Ggsx> {
        let s = store();
        let method = Ggsx::build(&s, GgsxConfig::default());
        IgqEngine::new(
            method,
            IgqConfig {
                cache_capacity: capacity,
                window,
                maintenance: mode,
                ..Default::default()
            },
        )
        .expect("valid engine")
    }

    #[test]
    fn incremental_mode_performs_no_full_rebuild() {
        // Tiny capacity + window force heavy churn: every window must
        // evict. Steady-state maintenance still never rebuilds.
        let e = engine_with_mode(MaintenanceMode::Incremental, 2, 1);
        for q in workload() {
            let _ = e.query(&q);
        }
        assert!(
            e.stats().maintenances >= 5,
            "windows of 1 maintain almost every query"
        );
        assert_eq!(
            e.stats().full_rebuilds,
            0,
            "incremental mode never rebuilds"
        );
        assert!(e.stats().maintenance_postings_touched > 0);
        e.self_check()
            .expect("incremental indexes match a fresh rebuild");
    }

    #[test]
    fn shadow_mode_rebuilds_every_maintenance() {
        let e = engine_with_mode(MaintenanceMode::ShadowRebuild, 2, 1);
        for q in workload() {
            let _ = e.query(&q);
        }
        assert!(e.stats().maintenances >= 5);
        assert_eq!(e.stats().full_rebuilds, e.stats().maintenances);
        assert_eq!(e.stats().maintenance_postings_touched, 0);
        e.self_check()
            .expect("rebuilt indexes are trivially consistent");
    }

    #[test]
    fn maintenance_modes_agree_on_answers_and_hits() {
        let inc = engine_with_mode(MaintenanceMode::Incremental, 3, 2);
        let shadow = engine_with_mode(MaintenanceMode::ShadowRebuild, 3, 2);
        for q in workload() {
            let a = inc.query(&q);
            let b = shadow.query(&q);
            assert_eq!(a.answers, b.answers, "answers diverge for {q:?}");
            assert_eq!(a.resolution, b.resolution, "resolution diverges for {q:?}");
            assert_eq!(a.isub_hits, b.isub_hits, "isub hits diverge for {q:?}");
            assert_eq!(
                a.isuper_hits, b.isuper_hits,
                "isuper hits diverge for {q:?}"
            );
        }
        assert_eq!(inc.cached_queries(), shadow.cached_queries());
    }

    #[test]
    fn query_features_are_extracted_exactly_once() {
        // Window larger than the workload so no maintenance (whose
        // admissions legitimately re-enumerate) runs mid-measurement.
        let e = engine_with_mode(MaintenanceMode::Incremental, 8, 8);
        let warm = graph_from(&[0, 1], &[(0, 1)]);
        let _ = e.query(&warm);
        for q in [
            graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]),
            graph_from(&[2, 2], &[(0, 1)]),
        ] {
            let before = igq_features::thread_enumeration_count();
            let queries_before = e.stats().queries;
            let extractions_before = e.stats().feature_extractions;
            let _ = e.query(&q);
            let enumerations = igq_features::thread_enumeration_count() - before;
            assert_eq!(
                enumerations, 1,
                "filter + both probes must share one path enumeration for {q:?}"
            );
            assert_eq!(e.stats().queries - queries_before, 1);
            assert_eq!(e.stats().feature_extractions - extractions_before, 1);
        }
    }

    #[test]
    fn exact_fastpath_skips_extraction_entirely() {
        let e = engine_with_mode(MaintenanceMode::Incremental, 8, 1);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let _ = e.query(&q);
        let before = igq_features::thread_enumeration_count();
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(
            igq_features::thread_enumeration_count() - before,
            0,
            "canonical-code repeats resolve with zero enumerations"
        );
    }

    #[test]
    fn verify_stage_amortization_counters() {
        let e = engine();
        let q1 = graph_from(&[0, 1], &[(0, 1)]);
        let q2 = graph_from(&[2, 2], &[(0, 1)]);
        assert_eq!(e.query(&q1).resolution, Resolution::Verified);
        assert_eq!(e.query(&q2).resolution, Resolution::Verified);
        let st = e.stats();
        assert_eq!(
            st.plan_builds, 2,
            "subgraph direction: exactly one plan per verified query"
        );
        // Exact repeats never reach the verify stage: no new plan.
        assert_eq!(e.query(&q1).resolution, Resolution::ExactHit);
        assert_eq!(e.stats().plan_builds, 2);
        // Warm the thread scratch to 3-vertex queries, then another
        // 3-vertex query must verify allocation-free.
        let _ = e.query(&graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]));
        let before = e.stats().scratch_allocs;
        let out = e.query(&graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]));
        assert!(out.db_iso_tests > 0, "the steady-state probe must verify");
        assert_eq!(
            e.stats().scratch_allocs,
            before,
            "steady-state verification is allocation-free"
        );
    }

    #[test]
    fn self_check_passes_through_lifecycle() {
        let e = engine();
        e.self_check().expect("fresh engine");
        for q in [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
        ] {
            let _ = e.query(&q);
            e.self_check().expect("mid-stream");
        }
    }

    #[test]
    fn query_batch_matches_sequential_answers() {
        let s = store();
        let naive = NaiveMethod::build(&s);
        let method = Ggsx::build(&s, GgsxConfig::default());
        let e = IgqEngine::new(
            method,
            IgqConfig::builder()
                .cache_capacity(8)
                .window(2)
                .batch_threads(4)
                .build()
                .expect("valid config"),
        )
        .expect("valid engine");
        let queries = workload();
        let outs = e.query_batch(&queries);
        assert_eq!(outs.len(), queries.len());
        for (q, out) in queries.iter().zip(outs.iter()) {
            let (truth, _) = naive.query(q);
            assert_eq!(out.answers, truth, "batch answer diverges for {q:?}");
        }
        assert_eq!(e.stats().queries, queries.len() as u64);
    }

    #[test]
    fn background_mode_answers_match_oracle() {
        let s = store();
        let naive = NaiveMethod::build(&s);
        let e = engine_with_mode(MaintenanceMode::Background, 3, 1);
        for q in workload() {
            let out = e.query(&q);
            let (truth, _) = naive.query(&q);
            assert_eq!(out.answers, truth, "query {q:?}");
        }
        let st = e.stats();
        assert!(st.maintenances >= 5, "windows of 1 maintain frequently");
        assert_eq!(st.full_rebuilds, 0, "background mode never rebuilds");
        e.self_check()
            .expect("published snapshot matches a fresh rebuild after sync");
        let st = e.stats();
        assert!(st.snapshot_publishes >= 1, "snapshots were published");
        assert!(st.maintenance_postings_touched > 0);
        assert!(
            st.maintenance_lag_windows <= e.config().max_lag_windows as u64,
            "peak lag {} exceeded the configured bound {}",
            st.maintenance_lag_windows,
            e.config().max_lag_windows
        );
    }

    #[test]
    fn background_exact_repeat_still_hits_via_cache_code_index() {
        // The exact-repeat fast path reads the cache's code index, which
        // lives under the state lock and is always current — repeats hit
        // even while the index snapshot lags.
        let e = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = e.query(&q);
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.answers, first.answers);
    }

    #[test]
    fn background_probes_hit_after_sync() {
        let e = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let big = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let _ = e.query(&big);
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)])); // flush W=2
        e.sync_maintenance();
        // With the snapshot caught up, the cached supergraph prunes the
        // smaller query exactly as Incremental would.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let out = e.query(&small);
        assert!(out.isub_hits >= 1, "synced snapshot serves probe hits");
        assert_eq!(out.answers, ids(&[0, 1, 3]));
    }

    #[test]
    fn background_parallel_probes_agree_with_sequential() {
        let s = store();
        let mk = |parallel| {
            let method = Ggsx::build(&s, GgsxConfig::default());
            IgqEngine::new(
                method,
                IgqConfig {
                    cache_capacity: 8,
                    window: 2,
                    parallel_probes: parallel,
                    maintenance: MaintenanceMode::Background,
                    ..Default::default()
                },
            )
            .expect("valid engine")
        };
        let seq = mk(false);
        let par = mk(true);
        for q in workload() {
            assert_eq!(seq.query(&q).answers, par.query(&q).answers);
        }
    }

    #[test]
    fn background_export_import_warm_start() {
        let warm = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first = warm.query(&q);
        let exported = warm.export_entries();
        assert_eq!(exported.len(), 1);

        let cold = engine_with_mode(MaintenanceMode::Background, 8, 2);
        assert_eq!(
            cold.import_entries(exported)
                .expect("primary import")
                .admitted,
            1
        );
        // import_entries syncs, so the warm entries are immediately
        // probe-visible even with the exact fast path disabled.
        let out = cold.query(&q);
        assert_eq!(out.resolution, Resolution::ExactHit);
        assert_eq!(out.answers, first.answers);
        cold.self_check().expect("invariants hold after import");
    }

    #[test]
    fn background_index_size_reads_published_snapshot() {
        // The engine-owned indexes stay empty under background
        // maintenance; the footprint must come from the published
        // snapshot, matching what the synchronous mode reports.
        let queries = [
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
        ];
        let bg = engine_with_mode(MaintenanceMode::Background, 8, 2);
        let inc = engine_with_mode(MaintenanceMode::Incremental, 8, 2);
        let empty = bg.igq_index_size_bytes();
        for q in &queries {
            let _ = bg.query(q);
            let _ = inc.query(q);
        }
        bg.sync_maintenance();
        assert!(bg.igq_index_size_bytes() > empty);
        assert_eq!(
            bg.igq_index_size_bytes(),
            inc.igq_index_size_bytes(),
            "same cache contents must report the same iGQ footprint"
        );
    }

    fn open_engine(
        s: &Arc<GraphStore>,
        store: &Arc<crate::MemStore>,
        mode: MaintenanceMode,
    ) -> IgqEngine<Ggsx> {
        let method = Ggsx::build(s, GgsxConfig::default());
        IgqEngine::open(
            method,
            IgqConfig {
                cache_capacity: 8,
                window: 2,
                maintenance: mode,
                persistence: crate::PersistenceConfig::manual(),
                ..Default::default()
            },
            Arc::clone(store) as Arc<dyn crate::CacheStore>,
        )
        .expect("open")
    }

    #[test]
    fn open_checkpoint_reopen_serves_warm_state() {
        let s = store();
        let mem = Arc::new(crate::MemStore::new());
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let first_answers;
        {
            let e1 = open_engine(&s, &mem, MaintenanceMode::Incremental);
            first_answers = e1.query(&q).answers.clone();
            let _ = e1.query(&graph_from(&[2, 2], &[(0, 1)])); // flip W=2
            assert!(e1.stats().wal_appends >= 1, "flip appended a WAL record");
            e1.checkpoint().expect("checkpoint");
            assert!(e1.stats().checkpoint_time > std::time::Duration::ZERO);
        }
        assert!(mem.checkpoint_bytes() > 0);

        let e2 = open_engine(&s, &mem, MaintenanceMode::Incremental);
        assert_eq!(
            e2.stats().recovery_replayed_windows,
            0,
            "checkpoint covered every flip; WAL tail empty"
        );
        assert_eq!(e2.cached_queries(), 2);
        let repeat = e2.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.answers, first_answers);
        e2.self_check().expect("recovered engine invariants");
    }

    #[test]
    fn wal_only_recovery_replays_flips_without_a_checkpoint() {
        let s = store();
        let mem = Arc::new(crate::MemStore::new());
        {
            let e1 = open_engine(&s, &mem, MaintenanceMode::Incremental);
            for q in workload() {
                let _ = e1.query(&q);
            }
            // Dropped without ever checkpointing: durability rides on the
            // WAL alone (the Drop drains pending appends).
        }
        assert_eq!(mem.checkpoint_bytes(), 0);
        assert!(mem.wal_bytes() > 0);
        let e2 = open_engine(&s, &mem, MaintenanceMode::Incremental);
        assert!(e2.stats().recovery_replayed_windows >= 1);
        assert!(e2.cached_queries() >= 1);
        e2.self_check().expect("replayed engine invariants");
    }

    #[test]
    fn open_rejects_foreign_config_and_dataset() {
        let s = store();
        let mem = Arc::new(crate::MemStore::new());
        {
            let e = open_engine(&s, &mem, MaintenanceMode::Incremental);
            let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
            let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
            e.checkpoint().expect("checkpoint");
        }
        // Different cache geometry → config fingerprint mismatch.
        let method = Ggsx::build(&s, GgsxConfig::default());
        let err = IgqEngine::<Ggsx>::open(
            method,
            IgqConfig {
                cache_capacity: 16,
                window: 2,
                persistence: crate::PersistenceConfig::manual(),
                ..Default::default()
            },
            Arc::clone(&mem) as Arc<dyn crate::CacheStore>,
        )
        .err()
        .expect("mismatched config rejected");
        assert!(matches!(err, PersistError::ConfigMismatch { .. }), "{err}");
        // Different dataset → dataset fingerprint mismatch.
        let other: Arc<GraphStore> =
            Arc::new(vec![graph_from(&[5, 6], &[(0, 1)])].into_iter().collect());
        let err = open_engine_err(&other, &mem);
        assert!(matches!(err, PersistError::DatasetMismatch { .. }), "{err}");
    }

    fn open_engine_err(s: &Arc<GraphStore>, mem: &Arc<crate::MemStore>) -> PersistError {
        let method = Ggsx::build(s, GgsxConfig::default());
        IgqEngine::<Ggsx>::open(
            method,
            IgqConfig {
                cache_capacity: 8,
                window: 2,
                persistence: crate::PersistenceConfig::manual(),
                ..Default::default()
            },
            Arc::clone(mem) as Arc<dyn crate::CacheStore>,
        )
        .err()
        .expect("open must fail")
    }

    #[test]
    fn auto_checkpoint_fires_on_cadence() {
        let s = store();
        let mem = Arc::new(crate::MemStore::new());
        let method = Ggsx::build(&s, GgsxConfig::default());
        let e = IgqEngine::<Ggsx>::open(
            method,
            IgqConfig {
                cache_capacity: 8,
                window: 1,
                persistence: crate::PersistenceConfig::every(2),
                ..Default::default()
            },
            Arc::clone(&mem) as Arc<dyn crate::CacheStore>,
        )
        .expect("open");
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        assert_eq!(mem.checkpoint_bytes(), 0, "below cadence: WAL only");
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert!(
            mem.checkpoint_bytes() > 0,
            "second flip crossed the cadence and auto-checkpointed"
        );
        // Compaction keeps the WAL to the post-checkpoint tail.
        let parsed_wal = mem.raw_wal();
        assert!(parsed_wal.len() < 2048, "compacted WAL stays small");
    }

    #[test]
    fn background_mode_recovers_with_published_snapshot() {
        let s = store();
        let mem = Arc::new(crate::MemStore::new());
        {
            let e1 = open_engine(&s, &mem, MaintenanceMode::Background);
            let big = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
            let _ = e1.query(&big);
            let _ = e1.query(&graph_from(&[2, 2], &[(0, 1)])); // flip
            e1.checkpoint().expect("checkpoint");
        }
        let e2 = open_engine(&s, &mem, MaintenanceMode::Background);
        // The recovered indexes are published before any job: probes hit
        // without any sync.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let out = e2.query(&small);
        assert!(out.isub_hits >= 1, "warm snapshot serves probe hits");
        assert_eq!(out.answers, ids(&[0, 1, 3]));
        e2.self_check().expect("recovered background engine");
    }

    #[test]
    fn background_engine_drop_joins_cleanly_with_pending_work() {
        let e = engine_with_mode(MaintenanceMode::Background, 4, 1);
        for q in workload() {
            let _ = e.query(&q);
        }
        drop(e); // must drain the delta queue and join without panicking
    }

    fn replication_queries() -> Vec<Graph> {
        vec![
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[2, 2], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[2, 2, 2], &[(0, 1), (1, 2)]),
            graph_from(&[0, 1, 2], &[(0, 1), (1, 2)]),
        ]
    }

    fn replication_pair(
        config: &IgqConfig,
    ) -> (IgqEngine<Ggsx>, IgqEngine<Ggsx>, crate::ReplicaFeed) {
        let s = store();
        let primary =
            IgqEngine::new(Ggsx::build(&s, GgsxConfig::default()), *config).expect("valid primary");
        let (checkpoint, feed) = match primary.subscribe_replication(None) {
            Subscription::Snapshot {
                checkpoint, feed, ..
            } => (checkpoint, feed),
            Subscription::Live { .. } => panic!("fresh subscriber must get a snapshot"),
        };
        let follower =
            IgqEngine::open_follower(Ggsx::build(&s, GgsxConfig::default()), *config, &checkpoint)
                .expect("valid follower");
        (primary, follower, feed)
    }

    fn drain_feed(feed: &crate::ReplicaFeed, follower: &IgqEngine<Ggsx>) -> u64 {
        let mut applied = 0;
        while let Some(d) = feed.try_recv() {
            follower.apply_replica_delta(&d.bytes).expect("apply delta");
            applied += 1;
        }
        applied
    }

    #[test]
    fn follower_converges_with_in_memory_primary() {
        for shards in [1usize, 2] {
            let config = IgqConfig::builder()
                .cache_capacity(8)
                .window(1)
                .shards(shards)
                .build()
                .expect("valid config");
            let (primary, follower, feed) = replication_pair(&config);
            let queries = replication_queries();
            let truths: Vec<Vec<GraphId>> =
                queries.iter().map(|q| primary.query(q).answers).collect();
            assert!(drain_feed(&feed, &follower) > 0, "shards={shards}");
            assert_eq!(
                follower.cached_queries(),
                primary.cached_queries(),
                "shards={shards}"
            );
            assert_eq!(follower.replication_lag(), Some(0));
            follower.self_check().expect("follower invariants");
            for (q, truth) in queries.iter().zip(&truths) {
                let out = follower.query(q);
                assert_eq!(&out.answers, truth, "shards={shards}");
                assert_eq!(
                    out.resolution,
                    Resolution::ExactHit,
                    "replicated resident must exact-hit (shards={shards})"
                );
            }
        }
    }

    #[test]
    fn apply_replica_delta_skips_duplicates_and_detects_gaps() {
        let config = IgqConfig::builder()
            .cache_capacity(8)
            .window(1)
            .build()
            .expect("valid config");
        let (primary, follower, feed) = replication_pair(&config);
        for q in replication_queries().iter().take(3) {
            let _ = primary.query(q);
        }
        let d1 = feed.try_recv().expect("first group");
        let d2 = feed.try_recv().expect("second group");
        let d3 = feed.try_recv().expect("third group");
        assert_eq!(follower.apply_replica_delta(&d1.bytes), Ok(d1.seq));
        // Duplicate redelivery (resume overlap) is an idempotent skip.
        assert_eq!(follower.apply_replica_delta(&d1.bytes), Ok(d1.seq));
        // A gap is typed — the caller must resume or re-bootstrap.
        assert_eq!(
            follower.apply_replica_delta(&d3.bytes),
            Err(ReplicaError::SeqGap {
                expected: d1.seq + 1,
                found: d3.seq,
            })
        );
        assert_eq!(follower.apply_replica_delta(&d2.bytes), Ok(d2.seq));
        assert_eq!(follower.apply_replica_delta(&d3.bytes), Ok(d3.seq));
        // Truncated group bytes never partially apply.
        let cached_before = follower.cached_queries();
        let seq_before = follower.stats().last_applied_seq;
        assert!(matches!(
            follower.apply_replica_delta(&d3.bytes[..d3.bytes.len() - 1]),
            Err(ReplicaError::Corrupt(_))
        ));
        assert_eq!(follower.cached_queries(), cached_before);
        assert_eq!(follower.stats().last_applied_seq, seq_before);
    }

    #[test]
    fn follower_rejects_writes_and_tracks_staleness() {
        let config = IgqConfig::builder()
            .cache_capacity(8)
            .window(1)
            .build()
            .expect("valid config");
        let (primary, follower, feed) = replication_pair(&config);
        assert!(!primary.is_follower());
        assert!(follower.is_follower());
        assert_eq!(primary.replication_lag(), None);
        assert_eq!(
            follower.import_entries(vec![(graph_from(&[0], &[]), vec![])]),
            Err(ReplicaError::ReadOnly("import_entries"))
        );
        assert_eq!(
            primary.apply_replica_delta(b"whatever"),
            Err(ReplicaError::NotFollower)
        );
        // Local queries on a follower are answered but never admitted.
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let out = follower.query(&q);
        assert!(!out.answers.is_empty());
        let _ = follower.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert_eq!(follower.cached_queries(), 0);
        // Staleness = heard − applied; a heartbeat alone raises it.
        let _ = primary.query(&q);
        let d = feed.try_recv().expect("group");
        follower.note_replica_heard(d.seq);
        assert_eq!(follower.replication_lag(), Some(1));
        follower.apply_replica_delta(&d.bytes).expect("apply");
        assert_eq!(follower.replication_lag(), Some(0));
        let s = follower.stats();
        assert_eq!(s.replica_groups_applied, 1);
        assert!(s.replica_bytes_applied > 0);
        assert_eq!(primary.stats().replica_groups_published, 1);
    }

    #[test]
    fn resume_within_ring_is_live_and_beyond_requires_snapshot() {
        let config = IgqConfig::builder()
            .cache_capacity(8)
            .window(1)
            .build()
            .expect("valid config");
        let (primary, follower, feed) = replication_pair(&config);
        for q in replication_queries().iter().take(2) {
            let _ = primary.query(q);
        }
        drain_feed(&feed, &follower);
        let at = follower.stats().last_applied_seq;
        let _ = primary.query(&replication_queries()[2]);
        // Everything after `at` is still in the replay ring: live resume.
        match primary.subscribe_replication(Some(at)) {
            Subscription::Live { feed } => {
                let d = feed.try_recv().expect("ring replay");
                assert_eq!(d.seq, at + 1);
                follower.apply_replica_delta(&d.bytes).expect("apply");
            }
            Subscription::Snapshot { .. } => panic!("in-ring resume must be live"),
        }
        // A seq before the hub ever existed is not provably gap-free.
        assert!(matches!(
            primary.subscribe_replication(Some(9999)),
            Subscription::Snapshot { .. }
        ));
    }

    #[test]
    fn follower_chains_groups_to_downstream_subscribers() {
        let config = IgqConfig::builder()
            .cache_capacity(8)
            .window(1)
            .build()
            .expect("valid config");
        let (primary, follower, feed) = replication_pair(&config);
        let downstream_feed = match follower.subscribe_replication(None) {
            Subscription::Snapshot { feed, .. } => feed,
            Subscription::Live { .. } => panic!("fresh subscriber must get a snapshot"),
        };
        let _ = primary.query(&graph_from(&[0, 1], &[(0, 1)]));
        let d = feed.try_recv().expect("group");
        follower.apply_replica_delta(&d.bytes).expect("apply");
        let chained = downstream_feed.try_recv().expect("chained group");
        assert_eq!(chained.seq, d.seq);
        assert_eq!(chained.bytes, d.bytes);
    }
}
