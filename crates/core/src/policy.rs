//! Pluggable cache-replacement policies.
//!
//! The paper's policy (Section 5.1) evicts by *utility* `U(g) = C(g)/M(g)`
//! and explicitly argues it "differs fundamentally from standard
//! replacement policies" because different cached graphs alleviate
//! different amounts of isomorphism work. To let that claim be measured
//! rather than assumed, the cache accepts any [`ReplacementPolicy`]:
//! classic baselines (LRU-style recency, FIFO age, popularity-only LFU,
//! deterministic pseudo-random) are provided for the `replacement`
//! ablation benchmark.

use crate::metadata::GraphMeta;

/// Which eviction rule the query cache applies at window maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// The paper's utility policy: evict smallest `U(g) = C(g)/M(g)`.
    #[default]
    Utility,
    /// Least-recently-*hit*: evict the entry whose last hit is oldest
    /// (entries never hit are oldest of all). The closest analogue of LRU
    /// in this setting, where a "use" is a sub/supergraph hit.
    Lru,
    /// First-in-first-out: evict the longest-resident entries
    /// (largest `M(g)`), ignoring usefulness entirely.
    Fifo,
    /// Popularity only (LFU-style): evict the smallest hit *rate*
    /// `H(g)/M(g)`, ignoring how much work each hit saved.
    Lfu,
    /// Deterministic pseudo-random eviction (hash of slot index and a
    /// round counter), the classic do-nothing baseline.
    Random,
}

impl ReplacementPolicy {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicy::Utility => "utility",
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Lfu => "lfu",
            ReplacementPolicy::Random => "random",
        }
    }

    /// Selects `k` victim slots among `metas` under this policy; `round`
    /// seeds the pseudo-random policy so successive maintenances differ.
    /// Returned slots are sorted ascending.
    pub fn victims(&self, metas: &[GraphMeta], k: usize, round: u64) -> Vec<usize> {
        let k = k.min(metas.len());
        let mut order: Vec<usize> = (0..metas.len()).collect();
        match self {
            ReplacementPolicy::Utility => {
                return crate::metadata::lowest_utility_slots(metas, k);
            }
            ReplacementPolicy::Lru => {
                // "Age since last hit" = queries_seen − last_hit_at.
                order.sort_by(|&a, &b| {
                    let age = |m: &GraphMeta| m.queries_seen.saturating_sub(m.last_hit_at);
                    age(&metas[b]).cmp(&age(&metas[a])).then(a.cmp(&b))
                });
            }
            ReplacementPolicy::Fifo => {
                order.sort_by(|&a, &b| {
                    metas[b]
                        .queries_seen
                        .cmp(&metas[a].queries_seen)
                        .then(a.cmp(&b))
                });
            }
            ReplacementPolicy::Lfu => {
                order.sort_by(|&a, &b| {
                    metas[a]
                        .popularity()
                        .partial_cmp(&metas[b].popularity())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
            ReplacementPolicy::Random => {
                order.sort_by_key(|&i| igq_graph::fxhash::hash_u64((i as u64) << 32 | round));
            }
        }
        let mut out: Vec<usize> = order.into_iter().take(k).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_iso::LogValue;

    fn metas() -> Vec<GraphMeta> {
        // Slot 0: old, hit long ago, low value.
        // Slot 1: old, recently hit, high value.
        // Slot 2: fresh, never hit.
        let mut m0 = GraphMeta::new();
        for _ in 0..100 {
            m0.tick();
        }
        m0.record_hit(1, LogValue::from_linear(10.0));
        // Manually age the hit: pretend it happened at query 5.
        m0.last_hit_at = 5;

        let mut m1 = GraphMeta::new();
        for _ in 0..100 {
            m1.tick();
        }
        m1.record_hit(20, LogValue::from_linear(1e9));
        m1.last_hit_at = 99;

        let mut m2 = GraphMeta::new();
        m2.tick();
        vec![m0, m1, m2]
    }

    #[test]
    fn utility_evicts_never_hit_first() {
        let v = ReplacementPolicy::Utility.victims(&metas(), 1, 0);
        assert_eq!(v, vec![2]);
    }

    #[test]
    fn lru_evicts_stalest_hit() {
        let v = ReplacementPolicy::Lru.victims(&metas(), 1, 0);
        // Slot 0's last hit is 95 queries old; slot 2 is 1 query old with
        // no hit (age 1); slot 1 hit recently. Slot 0 goes.
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn fifo_evicts_longest_resident() {
        let v = ReplacementPolicy::Fifo.victims(&metas(), 2, 0);
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn lfu_ranks_by_hit_rate() {
        let v = ReplacementPolicy::Lfu.victims(&metas(), 1, 0);
        assert_eq!(v, vec![2]); // zero popularity
    }

    #[test]
    fn random_is_deterministic_per_round_but_varies_across_rounds() {
        let m = metas();
        let a = ReplacementPolicy::Random.victims(&m, 2, 1);
        let b = ReplacementPolicy::Random.victims(&m, 2, 1);
        assert_eq!(a, b);
        let seen: std::collections::HashSet<Vec<usize>> = (0..16)
            .map(|r| ReplacementPolicy::Random.victims(&m, 2, r))
            .collect();
        assert!(seen.len() > 1, "rounds should vary victims");
    }

    #[test]
    fn victims_never_exceed_population() {
        let m = metas();
        for p in [
            ReplacementPolicy::Utility,
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Lfu,
            ReplacementPolicy::Random,
        ] {
            assert_eq!(p.victims(&m, 99, 0).len(), 3, "{}", p.name());
            assert!(p.victims(&m, 0, 0).is_empty());
        }
    }
}
