//! Primary → follower replication: stream the window-delta WAL to
//! read-only replica engines.
//!
//! A durable engine already externalizes every state change as a WAL
//! **flip group** (one [`crate::persist`] record per shard, all sharing
//! the flip's `seq`). Replication reuses that exact artifact as its wire
//! unit: after a flip group has been handed to the store (post-fsync on
//! disk-backed stores), the primary's `ReplicationHub` publishes the
//! group — encoded in the binary WAL codec — to every subscribed
//! follower. A follower engine
//! ([`Engine::open_follower`](crate::Engine::open_follower)) bootstraps
//! from a primary checkpoint snapshot and then replays delta groups
//! through the same `replay_window` path recovery uses, so a drained
//! follower is observationally identical to the primary as of the last
//! applied flip — the restart-equivalence guarantee, applied remotely.
//!
//! # Topology and flow
//!
//! ```text
//!   primary Engine ──flip──▶ wal_outbox ──drain──▶ CacheStore (WAL)
//!                                  │ (post-append)
//!                                  ▼
//!                          ReplicationHub ──▶ ring buffer (resume window)
//!                                  │
//!                      ┌───────────┼───────────┐
//!                      ▼           ▼           ▼
//!                 ReplicaFeed  ReplicaFeed  ReplicaFeed
//!                      │           │           │
//!                 follower     follower     follower
//!                 (apply_replica_delta, read-only queries)
//! ```
//!
//! # Consistency and staleness
//!
//! * Delta groups are applied **whole or not at all**: a truncated or
//!   damaged group fails with [`ReplicaError::Corrupt`] before any state
//!   changes (the same "whole flip group" rule recovery applies to a torn
//!   WAL tail).
//! * Seqs are contiguous: a group that is neither the next flip nor a
//!   duplicate fails with [`ReplicaError::SeqGap`]; the follower must
//!   resume from its `last_applied_seq` or re-bootstrap from a fresh
//!   snapshot.
//! * Followers serve reads at a bounded, observable staleness:
//!   `replication_lag_windows` (highest seq heard from the primary minus
//!   last applied seq) feeds the serving edge's lag-gated admission
//!   control, exactly like maintenance lag does on a primary.
//! * Replication follows the **live** engine, not the disk: a primary
//!   whose WAL went unhealthy (failed append) keeps publishing groups —
//!   followers track the in-memory truth the primary itself serves.
//!
//! Subscribing is cheap and races are closed by construction: the hub is
//! activated under the primary's control read lock (so no flip can
//! commit concurrently), and registration and ring-replay happen under
//! one hub lock, so every group is delivered exactly once — through the
//! backlog or through the live channel.

use crate::persist::PersistError;
pub use crossbeam::channel::RecvTimeoutError;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Flip groups the hub retains for resuming followers. A follower whose
/// `last_applied_seq` has fallen further behind than this must
/// re-bootstrap from a snapshot instead of resuming the stream.
pub const REPLICATION_RING_GROUPS: usize = 256;

/// Typed failures of the replication subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// A follower-only operation was invoked on a primary engine.
    NotFollower,
    /// A write-path operation was invoked on a read-only follower; the
    /// payload names the rejected operation.
    ReadOnly(&'static str),
    /// The delta stream skipped a flip: the follower must resume from its
    /// `last_applied_seq` (the primary's ring may still cover it) or
    /// re-bootstrap from a fresh snapshot.
    SeqGap {
        /// The flip the follower needed next.
        expected: u64,
        /// The flip the stream delivered instead.
        found: u64,
    },
    /// The delta group or snapshot failed to decode or validate; the
    /// follower state is unchanged (groups apply whole or not at all).
    Corrupt(String),
    /// The delta group carries an older failover epoch than the engine:
    /// its sender is a deposed primary (a follower was promoted past it)
    /// and its flips must not be applied. The stream should be dropped —
    /// resubscribing to the stale sender cannot help.
    EpochFenced {
        /// Epoch the rejected group was stamped with.
        stream: u64,
        /// The engine's current epoch.
        local: u64,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::NotFollower => {
                write!(f, "engine is not a follower (no replica source attached)")
            }
            ReplicaError::ReadOnly(op) => {
                write!(f, "follower engines are read-only: {op} rejected")
            }
            ReplicaError::SeqGap { expected, found } => write!(
                f,
                "replication stream gap: expected flip {expected}, found {found}"
            ),
            ReplicaError::Corrupt(why) => write!(f, "replication payload corrupt: {why}"),
            ReplicaError::EpochFenced { stream, local } => write!(
                f,
                "replication stream fenced: group epoch {stream} is older than local epoch \
                 {local} (sender is a deposed primary)"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<PersistError> for ReplicaError {
    fn from(e: PersistError) -> ReplicaError {
        ReplicaError::Corrupt(e.to_string())
    }
}

/// One committed window flip, encoded for the replication stream: the
/// flip's WAL records (one per shard) as binary `R` frames, exactly as
/// the binary WAL codec writes them. The bytes are `Arc`-shared so the
/// hub can fan one group out to N followers and its ring without copying.
#[derive(Debug, Clone)]
pub struct DeltaGroup {
    /// The flip ordinal every record of this group carries.
    pub seq: u64,
    /// Binary WAL `R` frames, one per shard of the flip.
    pub bytes: Arc<[u8]>,
}

/// A follower's live end of the replication stream. Messages arrive in
/// flip order with no gaps relative to the subscription point; the feed
/// disconnects when the primary engine drops.
#[derive(Debug)]
pub struct ReplicaFeed {
    rx: Receiver<DeltaGroup>,
}

impl ReplicaFeed {
    /// Blocks until the next delta group arrives; `None` once the
    /// primary is gone.
    pub fn recv(&self) -> Option<DeltaGroup> {
        self.rx.recv().ok()
    }

    /// Takes a queued group without blocking (`None` when the queue is
    /// currently empty *or* the primary is gone — use
    /// [`recv_timeout`](Self::recv_timeout) to distinguish).
    pub fn try_recv(&self) -> Option<DeltaGroup> {
        self.rx.try_recv().ok()
    }

    /// Blocks for at most `timeout`; distinguishes a quiet stream
    /// (`Err(Timeout)`) from a dropped primary (`Err(Disconnected)`).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<DeltaGroup, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }
}

/// What [`subscribe_replication`](crate::api::QueryEngine::subscribe_replication)
/// hands a new follower.
#[derive(Debug)]
pub enum Subscription {
    /// The requested resume point is still covered: the feed continues
    /// exactly after the follower's `last_applied_seq`, no re-bootstrap
    /// needed.
    Live {
        /// Delta groups from the resume point onward.
        feed: ReplicaFeed,
    },
    /// Bootstrap (or fallen-behind resume): install the checkpoint
    /// snapshot first, then drain the feed, which continues exactly
    /// after the snapshot's flip.
    Snapshot {
        /// Flip ordinal the snapshot covers.
        seq: u64,
        /// Encoded engine checkpoint (binary codec), for
        /// [`Engine::open_follower`](crate::Engine::open_follower).
        checkpoint: Vec<u8>,
        /// Delta groups from `seq` onward.
        feed: ReplicaFeed,
    },
}

/// The primary side: retains a ring of recent flip groups for resuming
/// followers and fans each published group out to every live subscriber.
/// Inert (and free) until the first subscription activates it; once
/// active it stays active for the engine's lifetime, so the committed
/// seq stream is published without holes.
#[derive(Debug)]
pub(crate) struct ReplicationHub {
    /// Lock-free mirror of `HubInner::active` for the flip path's cheap
    /// "is anyone listening" check. Set under the engine's control read
    /// lock, read under its write lock, so every flip after activation
    /// observes it.
    active: AtomicBool,
    inner: Mutex<HubInner>,
}

#[derive(Debug)]
struct HubInner {
    active: bool,
    /// Seq of the newest published group; groups at or below
    /// `last - ring.len()` have been dropped from the ring.
    last: u64,
    ring: VecDeque<DeltaGroup>,
    subs: Vec<Sender<DeltaGroup>>,
}

impl ReplicationHub {
    pub(crate) fn new() -> ReplicationHub {
        ReplicationHub {
            active: AtomicBool::new(false),
            inner: Mutex::new(HubInner {
                active: false,
                last: 0,
                ring: VecDeque::new(),
                subs: Vec::new(),
            }),
        }
    }

    /// Whether any subscription has ever activated this hub. A `true`
    /// obliges the engine to build and publish every subsequent flip
    /// group.
    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Activates the hub at the engine's current flip `seq`. Must run
    /// while the caller holds the control read lock: no flip can commit
    /// concurrently, so `seq` is exact and every later flip sees the
    /// active flag. Idempotent after the first call.
    pub(crate) fn activate(&self, seq: u64) {
        let mut inner = self.inner.lock();
        if !inner.active {
            inner.active = true;
            inner.last = seq;
            self.active.store(true, Ordering::Release);
        }
    }

    /// Publishes one committed flip group: appends it to the resume ring
    /// and delivers it to every live subscriber (dead subscribers — feed
    /// dropped — are pruned here). Called post-append in flip order.
    pub(crate) fn publish(&self, group: DeltaGroup) {
        let mut inner = self.inner.lock();
        if !inner.active {
            return;
        }
        inner.last = inner.last.max(group.seq);
        inner.ring.push_back(group.clone());
        while inner.ring.len() > REPLICATION_RING_GROUPS {
            inner.ring.pop_front();
        }
        inner.subs.retain(|tx| tx.send(group.clone()).is_ok());
    }

    /// Attaches a resuming follower that has applied every flip up to and
    /// including `after`. Returns `None` when the ring no longer covers
    /// `after + 1` (or the follower claims flips the primary never
    /// published) — the caller falls back to a snapshot. Registration
    /// and backlog replay are atomic under the hub lock, so no group is
    /// missed or duplicated around the attach point.
    pub(crate) fn try_resume(&self, after: u64) -> Option<ReplicaFeed> {
        let mut inner = self.inner.lock();
        let covered = after == inner.last
            || (after < inner.last && inner.ring.front().is_some_and(|g| g.seq <= after + 1));
        if !covered {
            return None;
        }
        Some(attach(&mut inner, after))
    }

    /// Attaches a bootstrapping follower that holds a snapshot of flip
    /// `after`: backlog-replays any already-published newer groups and
    /// registers for the rest. Always succeeds.
    pub(crate) fn attach_after(&self, after: u64) -> ReplicaFeed {
        attach(&mut self.inner.lock(), after)
    }

    /// Attaches a resuming follower whose gap the ring no longer covers,
    /// splicing a caller-supplied backlog (flip groups `after + 1 ..`,
    /// re-encoded from the primary's WAL) in front of the ring. Succeeds
    /// only when the backlog's end connects to the ring — its last seq is
    /// the newest published flip, or the ring still holds the next one —
    /// so the spliced stream is provably gap-free; `None` sends the
    /// caller to the snapshot path. Splice and registration are atomic
    /// under the hub lock, so no group is missed or duplicated around the
    /// seam.
    pub(crate) fn attach_with_backlog(
        &self,
        after: u64,
        backlog: Vec<DeltaGroup>,
    ) -> Option<ReplicaFeed> {
        let mut inner = self.inner.lock();
        let backlog_last = backlog.last().map(|g| g.seq).unwrap_or(after);
        let covered = backlog_last == inner.last
            || (backlog_last < inner.last
                && inner
                    .ring
                    .front()
                    .is_some_and(|g| g.seq <= backlog_last + 1));
        if !covered {
            return None;
        }
        let (tx, rx) = channel::unbounded();
        for g in backlog.into_iter().filter(|g| g.seq > after) {
            // Sending to our own fresh channel cannot fail.
            let _ = tx.send(g);
        }
        for g in inner.ring.iter().filter(|g| g.seq > backlog_last) {
            let _ = tx.send(g.clone());
        }
        inner.subs.push(tx);
        Some(ReplicaFeed { rx })
    }

    /// Live subscriber count (post-prune accuracy is best-effort: dead
    /// feeds are only pruned on publish).
    #[cfg(test)]
    pub(crate) fn subscribers(&self) -> usize {
        self.inner.lock().subs.len()
    }
}

fn attach(inner: &mut HubInner, after: u64) -> ReplicaFeed {
    let (tx, rx) = channel::unbounded();
    for g in inner.ring.iter().filter(|g| g.seq > after) {
        // Sending to our own fresh channel cannot fail.
        let _ = tx.send(g.clone());
    }
    inner.subs.push(tx);
    ReplicaFeed { rx }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(seq: u64) -> DeltaGroup {
        DeltaGroup {
            seq,
            bytes: vec![seq as u8].into(),
        }
    }

    #[test]
    fn inactive_hub_drops_publishes() {
        let hub = ReplicationHub::new();
        assert!(!hub.is_active());
        hub.publish(group(1));
        hub.activate(0);
        // Nothing published while inactive is replayable.
        assert!(hub.try_resume(0).is_some());
        let feed = hub.try_resume(0).unwrap();
        assert!(feed.try_recv().is_none());
    }

    #[test]
    fn resume_replays_ring_backlog_exactly_once() {
        let hub = ReplicationHub::new();
        hub.activate(0);
        for s in 1..=5 {
            hub.publish(group(s));
        }
        let feed = hub.try_resume(2).expect("ring covers 3..=5");
        let got: Vec<u64> = std::iter::from_fn(|| feed.try_recv().map(|g| g.seq)).collect();
        assert_eq!(got, vec![3, 4, 5]);
        hub.publish(group(6));
        assert_eq!(feed.try_recv().map(|g| g.seq), Some(6));
        assert!(feed.try_recv().is_none());
    }

    #[test]
    fn resume_beyond_ring_or_future_requires_snapshot() {
        let hub = ReplicationHub::new();
        hub.activate(0);
        for s in 1..=(REPLICATION_RING_GROUPS as u64 + 10) {
            hub.publish(group(s));
        }
        // Seq 1 has been popped from the ring.
        assert!(hub.try_resume(0).is_none(), "fell out of the ring");
        assert!(hub.try_resume(9).is_none(), "fell out of the ring");
        assert!(
            hub.try_resume(REPLICATION_RING_GROUPS as u64 + 100)
                .is_none(),
            "claims flips never published"
        );
        assert!(hub
            .try_resume(REPLICATION_RING_GROUPS as u64 + 10)
            .is_some());
    }

    #[test]
    fn activation_floor_blocks_pre_activation_resume() {
        let hub = ReplicationHub::new();
        // Engine already at flip 7 when the first follower arrives (e.g.
        // flips 1..=7 committed under persistence before replication).
        hub.activate(7);
        assert!(
            hub.try_resume(3).is_none(),
            "pre-activation flips unavailable"
        );
        assert!(hub.try_resume(7).is_some(), "caught-up resume is fine");
    }

    #[test]
    fn dead_subscribers_are_pruned_on_publish() {
        let hub = ReplicationHub::new();
        hub.activate(0);
        let feed = hub.attach_after(0);
        drop(feed);
        let live = hub.attach_after(0);
        assert_eq!(hub.subscribers(), 2);
        hub.publish(group(1));
        assert_eq!(hub.subscribers(), 1);
        assert_eq!(live.recv_timeout(Duration::from_secs(1)).unwrap().seq, 1);
    }

    #[test]
    fn backlog_splice_is_gap_free_or_refused() {
        let hub = ReplicationHub::new();
        hub.activate(0);
        for s in 1..=(REPLICATION_RING_GROUPS as u64 + 10) {
            hub.publish(group(s));
        }
        // Ring holds 11..=266; a follower at 4 splices a WAL backlog
        // 5..=12 that overlaps the ring seam.
        let backlog: Vec<DeltaGroup> = (5..=12).map(group).collect();
        let feed = hub.attach_with_backlog(4, backlog).expect("splices");
        let got: Vec<u64> = std::iter::from_fn(|| feed.try_recv().map(|g| g.seq)).collect();
        let want: Vec<u64> = (5..=(REPLICATION_RING_GROUPS as u64 + 10)).collect();
        assert_eq!(got, want, "backlog + ring, exactly once each");
        hub.publish(group(REPLICATION_RING_GROUPS as u64 + 11));
        assert_eq!(
            feed.try_recv().map(|g| g.seq),
            Some(REPLICATION_RING_GROUPS as u64 + 11)
        );

        // A backlog that stops short of the ring leaves a gap: refused.
        let short: Vec<DeltaGroup> = (5..=8).map(group).collect();
        assert!(hub.attach_with_backlog(4, short).is_none());
        // An empty backlog degenerates to try_resume semantics.
        assert!(hub.attach_with_backlog(4, Vec::new()).is_none());
    }

    #[test]
    fn errors_display_their_shape() {
        let gap = ReplicaError::SeqGap {
            expected: 4,
            found: 9,
        };
        assert!(gap.to_string().contains("expected flip 4"));
        assert!(gap.to_string().contains("found 9"));
        assert!(ReplicaError::NotFollower
            .to_string()
            .contains("not a follower"));
        assert!(ReplicaError::ReadOnly("import_entries")
            .to_string()
            .contains("import_entries"));
        let fenced = ReplicaError::EpochFenced {
            stream: 1,
            local: 2,
        };
        assert!(fenced.to_string().contains("epoch 1"));
        assert!(fenced.to_string().contains("local epoch 2"));
    }
}
