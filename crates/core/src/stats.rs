//! Engine-lifetime aggregate statistics.
//!
//! The engines accumulate their counters in `AtomicEngineStats` (crate
//! private) — plain atomics, so the `&self` query path and
//! [`crate::Engine::stats`] need no lock and no `&mut` — and hand callers
//! owned [`EngineStats`] snapshots.

use crate::outcome::{QueryOutcome, Resolution};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Totals across every query an engine has processed.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Queries processed.
    pub queries: u64,
    /// DB-side subgraph isomorphism tests (the paper's headline metric).
    pub db_iso_tests: u64,
    /// iGQ-internal iso tests (query-vs-cached-query overhead).
    pub igq_iso_tests: u64,
    /// Budget-aborted verifications (see [`QueryOutcome::aborted_tests`]).
    pub aborted_tests: u64,
    /// Candidates produced by the base method, summed.
    pub candidates_before: u64,
    /// Candidates surviving iGQ pruning, summed.
    pub candidates_after: u64,
    /// Candidates removed via the subgraph path.
    pub pruned_by_isub: u64,
    /// Candidates removed via the supergraph path.
    pub pruned_by_isuper: u64,
    /// Optimal case 1 resolutions (exact repeats).
    pub exact_hits: u64,
    /// Optimal case 2 resolutions (empty-answer shortcuts).
    pub empty_shortcuts: u64,
    /// Window maintenances performed: index delta applications or rebuilds
    /// in the synchronous modes, window deltas *submitted* to the
    /// maintenance thread under `MaintenanceMode::Background`.
    pub maintenances: u64,
    /// Full shadow rebuilds of the query indexes. Zero in steady state
    /// under `MaintenanceMode::Incremental` and `Background`; equals
    /// `maintenances` under `ShadowRebuild`.
    pub full_rebuilds: u64,
    /// Index postings inserted or removed during incremental delta
    /// application — on the query thread (`Incremental`) or the
    /// maintenance thread (`Background`). Zero under `ShadowRebuild`.
    pub maintenance_postings_touched: u64,
    /// Wall-clock spent applying index updates, **reported from the thread
    /// that did the work**: the query thread in the synchronous modes
    /// (where it is also part of `igq_time`), the maintenance thread under
    /// `MaintenanceMode::Background` (where it overlaps query processing
    /// and is *not* part of any query's wall-clock). Cache
    /// eviction/admission stays on the query thread in every mode and is
    /// accounted under `igq_time`, not here.
    pub maintenance_time: Duration,
    /// Peak lag of the background maintainer, in submitted-but-unapplied
    /// windows. Bounded by `IgqConfig::max_lag_windows`; zero in the
    /// synchronous modes.
    pub maintenance_lag_windows: u64,
    /// Index snapshots atomically published by the background maintainer.
    /// Zero in the synchronous modes.
    pub snapshot_publishes: u64,
    /// WAL records appended to the attached
    /// [`CacheStore`](crate::persist::CacheStore) — one per persisted
    /// window flip. Zero for engines without a store.
    pub wal_appends: u64,
    /// Bytes of encoded WAL flip groups appended to the store — the
    /// codec-visible WAL footprint ([`StoreCodec`](crate::StoreCodec)
    /// decides how small a flip encodes).
    pub wal_bytes_appended: u64,
    /// Bytes of encoded checkpoints written (explicit and auto),
    /// cumulative.
    pub checkpoint_bytes_written: u64,
    /// Wall-clock spent encoding and writing checkpoints (explicit and
    /// auto), including post-checkpoint WAL compaction. Runs off the
    /// state lock, so it overlaps query processing.
    pub checkpoint_time: Duration,
    /// The engine's flip ordinal: flips committed on a primary, flips
    /// applied from the replication stream on a follower. A gauge, not a
    /// counter.
    pub last_applied_seq: u64,
    /// On a follower: how many flips the primary is known to be ahead
    /// (highest seq heard from the replication stream minus
    /// [`last_applied_seq`](Self::last_applied_seq)) — the staleness a
    /// lag-gated serving edge sheds on. Zero on a primary. A gauge.
    pub replication_lag_windows: u64,
    /// Flip groups published to the replication hub (primary side; zero
    /// until the first follower subscribes).
    pub replica_groups_published: u64,
    /// Delta groups applied from the replication stream (follower side).
    pub replica_groups_applied: u64,
    /// Encoded bytes of the applied delta groups (follower side).
    pub replica_bytes_applied: u64,
    /// WAL records replayed by [`Engine::open`](crate::Engine::open) to
    /// recover this engine — the delta tail between the last checkpoint
    /// and the crash/shutdown point. Zero for cold starts.
    pub recovery_replayed_windows: u64,
    /// Resuming followers served from the primary's on-disk WAL because
    /// their gap had fallen out of the in-memory resume ring — each one
    /// is a full snapshot bootstrap avoided.
    pub replica_wal_catchups: u64,
    /// The engine's failover epoch: bumped by every
    /// [`promote`](crate::api::QueryEngine::promote), carried in the
    /// replication group header so a deposed primary's stream is fenced.
    /// A gauge.
    pub epoch: u64,
    /// `true` while the engine serves in degraded mode: the attached
    /// store is failing writes, so WAL flip groups are quarantined in
    /// memory (and retried with backoff) instead of persisted. Serving
    /// and answer exactness are unaffected; durability of the
    /// quarantined flips is deferred until the store heals.
    pub degraded: bool,
    /// Why the engine degraded (the store's last write error), empty
    /// when healthy.
    pub degraded_reason: String,
    /// Encoded flip groups currently quarantined in memory awaiting a
    /// store retry. A gauge; zero when healthy.
    pub wal_quarantined_groups: u64,
    /// Quarantine flush attempts that re-failed (the store was still
    /// unhealthy at retry time).
    pub wal_retry_failures: u64,
    /// Query path-feature extractions performed by the engine. On the
    /// filter+probe path this is exactly one per query: the same
    /// `PathFeatures` is shared by the base method's filter and both
    /// query-index probes.
    pub feature_extractions: u64,
    /// Matching plans built in the verification stage. In the subgraph
    /// direction: one per verified query with a non-empty candidate batch
    /// (the plan is shared by the whole batch), plus one per large
    /// (≥128-vertex) candidate, which gets its own target-ordered plan.
    /// In the supergraph direction: one per candidate (the pattern
    /// varies). Zero for fully-pruned queries.
    pub plan_builds: u64,
    /// Scratch-buffer allocations/growths in the verification stage.
    /// Flat (zero per candidate) once the per-thread workspaces have
    /// warmed to the workload's largest query and target.
    pub scratch_allocs: u64,
    /// Candidates rejected by the pre-verify screen (label-count /
    /// degree-sequence dominance) without starting an iso search. These
    /// still count as `db_iso_tests` — the screen makes tests cheaper, it
    /// does not change the paper's headline test counts.
    pub preverify_rejections: u64,
    /// Canonical-code plan-cache lookups answered by a fresh cached plan
    /// (the query skipped its plan build). Covers the verify stage and
    /// both query-index probes.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that had to build — cold codes, staleness
    /// rebuilds after label-frequency drift, and config mismatches.
    pub plan_cache_misses: u64,
    /// Plans dropped from the plan cache: capacity replacement plus
    /// window-eviction of their queries from the query cache.
    pub plan_cache_evictions: u64,
    /// Wall-clock spent in the columnar (struct-of-arrays) pre-verify
    /// screen, across all verification batches.
    pub columnar_screen_time: Duration,
    /// Typed requests answered through [`crate::Engine::execute`] /
    /// [`crate::Engine::execute_batch`] — the serving-edge request count.
    /// Plain [`crate::Engine::query`] calls are *not* requests; they show
    /// up only in `queries`.
    pub requests_served: u64,
    /// Requests shed by admission control before reaching the query
    /// pipeline (the serving edge observed maintenance lag above its
    /// configured threshold and returned a typed `overloaded` reply
    /// instead of queueing the work). Recorded via
    /// [`crate::Engine::note_overload_rejection`]; such requests appear
    /// neither in `queries` nor in `requests_served`.
    pub requests_rejected_overload: u64,
    /// Multi-request batches executed by
    /// [`crate::Engine::execute_batch`] — each counts one batch whose ≥ 2
    /// requests were coalesced (by a serving front end's micro-batching
    /// window, or by an explicit client batch) into a single scatter/gather
    /// fan-out. Single-request batches are not coalescement and are not
    /// counted.
    pub batches_coalesced: u64,
    /// Wall-clock in the base method's filter stage.
    pub filter_time: Duration,
    /// Wall-clock in iGQ probes and bookkeeping.
    pub igq_time: Duration,
    /// Wall-clock in verification.
    pub verify_time: Duration,
    /// End-to-end wall-clock.
    pub wall_time: Duration,
}

impl EngineStats {
    /// Merges one background maintainer's off-thread counters. In
    /// `MaintenanceMode::Background` these four fields are owned entirely
    /// by the maintenance threads (the query thread never touches them,
    /// and the atomic snapshot zeroes them), so folding each shard's
    /// maintainer in turn reconstructs the engine totals: work counters
    /// (`postings_touched`, `maintenance_time`, `snapshot_publishes`)
    /// **sum** across shards, while `maintenance_lag_windows` is a peak —
    /// the worst lag any single shard has exhibited — and takes the
    /// **max** (per-shard lags are concurrent, not additive; each shard's
    /// bound is `max_lag_windows` independently).
    pub fn fold_maintainer(&mut self, ms: &crate::background::MaintainerStats) {
        self.maintenance_postings_touched += ms.postings_touched;
        self.maintenance_time += ms.maintenance_time;
        self.maintenance_lag_windows = self.maintenance_lag_windows.max(ms.peak_lag_windows);
        self.snapshot_publishes += ms.snapshot_publishes;
    }

    /// Merges another engine's snapshot into this one — for aggregating
    /// a replication fleet (a primary plus its followers, or several
    /// followers) into one view. Work counters **sum**; the staleness
    /// gauges follow the [`fold_maintainer`](Self::fold_maintainer)
    /// convention: `maintenance_lag_windows` and
    /// `replication_lag_windows` take the **max** (the fleet is as stale
    /// as its worst member), and `last_applied_seq` takes the **min** of
    /// the engines that have a flip history at all (the fleet has served
    /// every flip only up to its slowest member; an engine still at zero
    /// has no history and does not drag the floor down).
    pub fn merge(&mut self, other: &EngineStats) {
        self.queries += other.queries;
        self.db_iso_tests += other.db_iso_tests;
        self.igq_iso_tests += other.igq_iso_tests;
        self.aborted_tests += other.aborted_tests;
        self.candidates_before += other.candidates_before;
        self.candidates_after += other.candidates_after;
        self.pruned_by_isub += other.pruned_by_isub;
        self.pruned_by_isuper += other.pruned_by_isuper;
        self.exact_hits += other.exact_hits;
        self.empty_shortcuts += other.empty_shortcuts;
        self.maintenances += other.maintenances;
        self.full_rebuilds += other.full_rebuilds;
        self.maintenance_postings_touched += other.maintenance_postings_touched;
        self.maintenance_time += other.maintenance_time;
        self.maintenance_lag_windows = self
            .maintenance_lag_windows
            .max(other.maintenance_lag_windows);
        self.snapshot_publishes += other.snapshot_publishes;
        self.wal_appends += other.wal_appends;
        self.wal_bytes_appended += other.wal_bytes_appended;
        self.checkpoint_bytes_written += other.checkpoint_bytes_written;
        self.checkpoint_time += other.checkpoint_time;
        self.last_applied_seq = match (self.last_applied_seq, other.last_applied_seq) {
            (0, s) | (s, 0) => s,
            (a, b) => a.min(b),
        };
        self.replication_lag_windows = self
            .replication_lag_windows
            .max(other.replication_lag_windows);
        self.replica_groups_published += other.replica_groups_published;
        self.replica_groups_applied += other.replica_groups_applied;
        self.replica_bytes_applied += other.replica_bytes_applied;
        self.recovery_replayed_windows += other.recovery_replayed_windows;
        self.replica_wal_catchups += other.replica_wal_catchups;
        // Failover/degradation gauges: the fleet view reports the newest
        // epoch anyone has adopted, and is degraded if any member is
        // (first non-empty reason wins — one member's story is better
        // than none).
        self.epoch = self.epoch.max(other.epoch);
        if other.degraded && !self.degraded {
            self.degraded = true;
        }
        if self.degraded_reason.is_empty() && !other.degraded_reason.is_empty() {
            self.degraded_reason = other.degraded_reason.clone();
        }
        self.wal_quarantined_groups += other.wal_quarantined_groups;
        self.wal_retry_failures += other.wal_retry_failures;
        self.feature_extractions += other.feature_extractions;
        self.plan_builds += other.plan_builds;
        self.scratch_allocs += other.scratch_allocs;
        self.preverify_rejections += other.preverify_rejections;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.plan_cache_evictions += other.plan_cache_evictions;
        self.columnar_screen_time += other.columnar_screen_time;
        self.requests_served += other.requests_served;
        self.requests_rejected_overload += other.requests_rejected_overload;
        self.batches_coalesced += other.batches_coalesced;
        self.filter_time += other.filter_time;
        self.igq_time += other.igq_time;
        self.verify_time += other.verify_time;
        self.wall_time += other.wall_time;
    }

    /// Folds one query outcome into the totals.
    pub fn absorb(&mut self, o: &QueryOutcome) {
        self.queries += 1;
        self.db_iso_tests += o.db_iso_tests;
        self.igq_iso_tests += o.igq_iso_tests;
        self.aborted_tests += o.aborted_tests;
        self.candidates_before += o.candidates_before as u64;
        self.candidates_after += o.candidates_after as u64;
        self.pruned_by_isub += o.pruned_by_isub as u64;
        self.pruned_by_isuper += o.pruned_by_isuper as u64;
        match o.resolution {
            Resolution::ExactHit => self.exact_hits += 1,
            Resolution::EmptyAnswerShortcut => self.empty_shortcuts += 1,
            Resolution::Verified => {}
        }
        self.filter_time += o.filter_time;
        self.igq_time += o.igq_time;
        self.verify_time += o.verify_time;
        self.wall_time += o.total_time();
    }

    /// Average DB iso tests per query.
    pub fn avg_db_iso_tests(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.db_iso_tests as f64 / self.queries as f64
        }
    }

    /// Average end-to-end wall-clock per query.
    pub fn avg_wall_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.wall_time / self.queries as u32
        }
    }
}

/// Lock-free accumulator behind [`EngineStats`]: every counter is an
/// `AtomicU64` (durations as nanoseconds) so concurrent `query(&self)`
/// callers fold their outcomes in without serializing on the engine's
/// state lock, and [`snapshot`](AtomicEngineStats::snapshot) reads need no
/// `&mut`. Counters are independent relaxed atomics: a snapshot taken
/// while queries are in flight is per-field accurate but not a single
/// instant's cut — the same semantics engine stats always had under
/// background maintenance.
#[derive(Debug, Default)]
pub(crate) struct AtomicEngineStats {
    queries: AtomicU64,
    db_iso_tests: AtomicU64,
    igq_iso_tests: AtomicU64,
    aborted_tests: AtomicU64,
    candidates_before: AtomicU64,
    candidates_after: AtomicU64,
    pruned_by_isub: AtomicU64,
    pruned_by_isuper: AtomicU64,
    exact_hits: AtomicU64,
    empty_shortcuts: AtomicU64,
    maintenances: AtomicU64,
    full_rebuilds: AtomicU64,
    maintenance_postings_touched: AtomicU64,
    maintenance_nanos: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes_appended: AtomicU64,
    checkpoint_bytes_written: AtomicU64,
    checkpoint_nanos: AtomicU64,
    last_applied_seq: AtomicU64,
    replica_last_heard: AtomicU64,
    replica_groups_published: AtomicU64,
    replica_groups_applied: AtomicU64,
    replica_bytes_applied: AtomicU64,
    recovery_replayed_windows: AtomicU64,
    replica_wal_catchups: AtomicU64,
    wal_retry_failures: AtomicU64,
    feature_extractions: AtomicU64,
    plan_builds: AtomicU64,
    scratch_allocs: AtomicU64,
    preverify_rejections: AtomicU64,
    requests_served: AtomicU64,
    requests_rejected_overload: AtomicU64,
    batches_coalesced: AtomicU64,
    columnar_screen_nanos: AtomicU64,
    filter_nanos: AtomicU64,
    igq_nanos: AtomicU64,
    verify_nanos: AtomicU64,
    wall_nanos: AtomicU64,
}

impl AtomicEngineStats {
    /// Folds one query outcome into the totals (the atomic counterpart of
    /// [`EngineStats::absorb`]).
    pub(crate) fn absorb(&self, o: &QueryOutcome) {
        const R: Ordering = Ordering::Relaxed;
        self.queries.fetch_add(1, R);
        self.db_iso_tests.fetch_add(o.db_iso_tests, R);
        self.igq_iso_tests.fetch_add(o.igq_iso_tests, R);
        self.aborted_tests.fetch_add(o.aborted_tests, R);
        self.candidates_before
            .fetch_add(o.candidates_before as u64, R);
        self.candidates_after
            .fetch_add(o.candidates_after as u64, R);
        self.pruned_by_isub.fetch_add(o.pruned_by_isub as u64, R);
        self.pruned_by_isuper
            .fetch_add(o.pruned_by_isuper as u64, R);
        match o.resolution {
            Resolution::ExactHit => {
                self.exact_hits.fetch_add(1, R);
            }
            Resolution::EmptyAnswerShortcut => {
                self.empty_shortcuts.fetch_add(1, R);
            }
            Resolution::Verified => {}
        }
        self.filter_nanos
            .fetch_add(o.filter_time.as_nanos() as u64, R);
        self.igq_nanos.fetch_add(o.igq_time.as_nanos() as u64, R);
        self.verify_nanos
            .fetch_add(o.verify_time.as_nanos() as u64, R);
        self.wall_nanos
            .fetch_add(o.total_time().as_nanos() as u64, R);
    }

    /// Counts one feature extraction.
    pub(crate) fn count_feature_extraction(&self) {
        self.feature_extractions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one window maintenance (submitted or applied).
    pub(crate) fn count_maintenance(&self) {
        self.maintenances.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one synchronous maintenance's index work.
    pub(crate) fn record_maintenance_work(
        &self,
        postings_touched: u64,
        rebuilt: bool,
        elapsed: Duration,
    ) {
        const R: Ordering = Ordering::Relaxed;
        self.maintenance_postings_touched
            .fetch_add(postings_touched, R);
        self.full_rebuilds.fetch_add(rebuilt as u64, R);
        self.maintenance_nanos
            .fetch_add(elapsed.as_nanos() as u64, R);
    }

    /// Counts one WAL flip-group append of `bytes` encoded bytes.
    pub(crate) fn count_wal_append(&self, bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes_appended.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records the engine's flip ordinal after a committed (or applied)
    /// flip — a monotone gauge behind
    /// [`EngineStats::last_applied_seq`].
    pub(crate) fn set_last_applied_seq(&self, seq: u64) {
        self.last_applied_seq.fetch_max(seq, Ordering::Relaxed);
    }

    /// Records the highest primary flip a follower has heard of (via its
    /// delta stream or an explicit heartbeat); the snapshot derives
    /// [`EngineStats::replication_lag_windows`] from it.
    pub(crate) fn note_replica_heard(&self, seq: u64) {
        self.replica_last_heard.fetch_max(seq, Ordering::Relaxed);
    }

    /// Current replication staleness (heard − applied, saturating) from
    /// two atomic loads — no full snapshot, cheap enough for per-request
    /// bounded-staleness checks.
    pub(crate) fn replication_lag_windows(&self) -> u64 {
        self.replica_last_heard
            .load(Ordering::Relaxed)
            .saturating_sub(self.last_applied_seq.load(Ordering::Relaxed))
    }

    /// Counts one flip group published to the replication hub.
    pub(crate) fn count_replica_group_published(&self) {
        self.replica_groups_published
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one delta group of `bytes` encoded bytes applied from the
    /// replication stream.
    pub(crate) fn record_replica_group_applied(&self, bytes: u64) {
        self.replica_groups_applied.fetch_add(1, Ordering::Relaxed);
        self.replica_bytes_applied
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Folds one verification batch's amortization counters. Plan-cache
    /// hit/miss/eviction totals are *not* folded here: the cache's own
    /// atomic counters are authoritative (they also see the index-probe
    /// lookups) and are overlaid at snapshot time by
    /// [`crate::Engine::stats`].
    pub(crate) fn record_verify_batch(&self, b: &igq_methods::VerifyBatchStats) {
        const R: Ordering = Ordering::Relaxed;
        self.plan_builds.fetch_add(b.plan_builds, R);
        self.scratch_allocs.fetch_add(b.scratch_allocs, R);
        self.preverify_rejections
            .fetch_add(b.preverify_rejections, R);
        self.columnar_screen_nanos
            .fetch_add(b.columnar_screen_ns, R);
    }

    /// Counts one typed request served (`execute` / `execute_batch`).
    pub(crate) fn count_request_served(&self) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed by lag-gated admission control.
    pub(crate) fn count_overload_rejection(&self) {
        self.requests_rejected_overload
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one multi-request batch coalesced into a single fan-out.
    pub(crate) fn count_batch_coalesced(&self) {
        self.batches_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one checkpoint's wall-clock and encoded size.
    pub(crate) fn record_checkpoint(&self, elapsed: Duration, bytes: u64) {
        self.checkpoint_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.checkpoint_bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records how many WAL windows recovery replayed (set once at open).
    pub(crate) fn set_recovery_replayed_windows(&self, windows: u64) {
        self.recovery_replayed_windows
            .store(windows, Ordering::Relaxed);
    }

    /// Counts one resuming follower served from the on-disk WAL instead
    /// of a snapshot re-bootstrap.
    pub(crate) fn count_replica_wal_catchup(&self) {
        self.replica_wal_catchups.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one quarantine flush attempt that re-failed (the store was
    /// still unhealthy).
    pub(crate) fn count_wal_retry_failure(&self) {
        self.wal_retry_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// An owned [`EngineStats`] snapshot of the current totals.
    pub(crate) fn snapshot(&self) -> EngineStats {
        const R: Ordering = Ordering::Relaxed;
        EngineStats {
            queries: self.queries.load(R),
            db_iso_tests: self.db_iso_tests.load(R),
            igq_iso_tests: self.igq_iso_tests.load(R),
            aborted_tests: self.aborted_tests.load(R),
            candidates_before: self.candidates_before.load(R),
            candidates_after: self.candidates_after.load(R),
            pruned_by_isub: self.pruned_by_isub.load(R),
            pruned_by_isuper: self.pruned_by_isuper.load(R),
            exact_hits: self.exact_hits.load(R),
            empty_shortcuts: self.empty_shortcuts.load(R),
            maintenances: self.maintenances.load(R),
            full_rebuilds: self.full_rebuilds.load(R),
            maintenance_postings_touched: self.maintenance_postings_touched.load(R),
            maintenance_time: Duration::from_nanos(self.maintenance_nanos.load(R)),
            maintenance_lag_windows: 0,
            snapshot_publishes: 0,
            wal_appends: self.wal_appends.load(R),
            wal_bytes_appended: self.wal_bytes_appended.load(R),
            checkpoint_bytes_written: self.checkpoint_bytes_written.load(R),
            checkpoint_time: Duration::from_nanos(self.checkpoint_nanos.load(R)),
            last_applied_seq: self.last_applied_seq.load(R),
            replication_lag_windows: self
                .replica_last_heard
                .load(R)
                .saturating_sub(self.last_applied_seq.load(R)),
            replica_groups_published: self.replica_groups_published.load(R),
            replica_groups_applied: self.replica_groups_applied.load(R),
            replica_bytes_applied: self.replica_bytes_applied.load(R),
            recovery_replayed_windows: self.recovery_replayed_windows.load(R),
            replica_wal_catchups: self.replica_wal_catchups.load(R),
            // Failover/degradation gauges live outside the atomic ledger
            // (engine epoch atomic, persist-layer quarantine) and are
            // overlaid by `Engine::stats`.
            epoch: 0,
            degraded: false,
            degraded_reason: String::new(),
            wal_quarantined_groups: 0,
            wal_retry_failures: self.wal_retry_failures.load(R),
            feature_extractions: self.feature_extractions.load(R),
            plan_builds: self.plan_builds.load(R),
            scratch_allocs: self.scratch_allocs.load(R),
            preverify_rejections: self.preverify_rejections.load(R),
            requests_served: self.requests_served.load(R),
            requests_rejected_overload: self.requests_rejected_overload.load(R),
            batches_coalesced: self.batches_coalesced.load(R),
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_cache_evictions: 0,
            columnar_screen_time: Duration::from_nanos(self.columnar_screen_nanos.load(R)),
            filter_time: Duration::from_nanos(self.filter_nanos.load(R)),
            igq_time: Duration::from_nanos(self.igq_nanos.load(R)),
            verify_time: Duration::from_nanos(self.verify_nanos.load(R)),
            wall_time: Duration::from_nanos(self.wall_nanos.load(R)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = EngineStats::default();
        let o = QueryOutcome {
            db_iso_tests: 5,
            candidates_before: 10,
            candidates_after: 5,
            resolution: Resolution::ExactHit,
            ..Default::default()
        };
        s.absorb(&o);
        s.absorb(&o);
        assert_eq!(s.queries, 2);
        assert_eq!(s.db_iso_tests, 10);
        assert_eq!(s.exact_hits, 2);
        assert_eq!(s.avg_db_iso_tests(), 5.0);
    }

    #[test]
    fn fold_maintainer_sums_work_and_maxes_lag() {
        // Pin the per-shard merge semantics: work counters sum across
        // maintainers, peak lag is a max (concurrent per-shard bounds,
        // not additive), and folding is order-independent.
        let shard_a = crate::background::MaintainerStats {
            applied: 10,
            peak_lag_windows: 3,
            snapshot_publishes: 7,
            postings_touched: 100,
            maintenance_time: Duration::from_micros(40),
        };
        let shard_b = crate::background::MaintainerStats {
            applied: 4,
            peak_lag_windows: 5,
            snapshot_publishes: 2,
            postings_touched: 30,
            maintenance_time: Duration::from_micros(10),
        };
        let mut forward = EngineStats::default();
        forward.fold_maintainer(&shard_a);
        forward.fold_maintainer(&shard_b);
        assert_eq!(forward.maintenance_postings_touched, 130);
        assert_eq!(forward.maintenance_time, Duration::from_micros(50));
        assert_eq!(forward.maintenance_lag_windows, 5);
        assert_eq!(forward.snapshot_publishes, 9);
        let mut reverse = EngineStats::default();
        reverse.fold_maintainer(&shard_b);
        reverse.fold_maintainer(&shard_a);
        assert_eq!(
            reverse.maintenance_postings_touched,
            forward.maintenance_postings_touched
        );
        assert_eq!(reverse.maintenance_time, forward.maintenance_time);
        assert_eq!(
            reverse.maintenance_lag_windows,
            forward.maintenance_lag_windows
        );
        assert_eq!(reverse.snapshot_publishes, forward.snapshot_publishes);
        // A single maintainer folded into fresh stats reproduces its own
        // counters exactly — the shards == 1 behavior is unchanged.
        let mut single = EngineStats::default();
        single.fold_maintainer(&shard_a);
        assert_eq!(single.maintenance_postings_touched, 100);
        assert_eq!(single.maintenance_time, Duration::from_micros(40));
        assert_eq!(single.maintenance_lag_windows, 3);
        assert_eq!(single.snapshot_publishes, 7);
    }

    #[test]
    fn empty_stats_averages() {
        let s = EngineStats::default();
        assert_eq!(s.avg_db_iso_tests(), 0.0);
        assert_eq!(s.avg_wall_time(), Duration::ZERO);
    }

    #[test]
    fn atomic_stats_match_sequential_absorb() {
        let atomic = AtomicEngineStats::default();
        let mut plain = EngineStats::default();
        let o = QueryOutcome {
            db_iso_tests: 3,
            igq_iso_tests: 2,
            candidates_before: 9,
            candidates_after: 4,
            pruned_by_isub: 3,
            pruned_by_isuper: 2,
            resolution: Resolution::EmptyAnswerShortcut,
            filter_time: Duration::from_micros(5),
            igq_time: Duration::from_micros(7),
            verify_time: Duration::from_micros(11),
            ..Default::default()
        };
        for _ in 0..3 {
            atomic.absorb(&o);
            plain.absorb(&o);
        }
        atomic.count_feature_extraction();
        atomic.count_maintenance();
        atomic.record_maintenance_work(17, true, Duration::from_micros(13));
        atomic.count_wal_append(120);
        atomic.count_wal_append(80);
        atomic.record_checkpoint(Duration::from_micros(21), 900);
        atomic.set_recovery_replayed_windows(4);
        atomic.record_verify_batch(&igq_methods::VerifyBatchStats {
            plan_builds: 2,
            scratch_allocs: 1,
            preverify_rejections: 5,
            columnar_screen_ns: 100,
            ..Default::default()
        });
        atomic.record_verify_batch(&igq_methods::VerifyBatchStats {
            plan_builds: 1,
            scratch_allocs: 0,
            preverify_rejections: 2,
            columnar_screen_ns: 50,
            ..Default::default()
        });
        let snap = atomic.snapshot();
        assert_eq!(snap.queries, plain.queries);
        assert_eq!(snap.db_iso_tests, plain.db_iso_tests);
        assert_eq!(snap.empty_shortcuts, plain.empty_shortcuts);
        assert_eq!(snap.candidates_before, plain.candidates_before);
        assert_eq!(snap.wall_time, plain.wall_time);
        assert_eq!(snap.feature_extractions, 1);
        assert_eq!(snap.maintenances, 1);
        assert_eq!(snap.full_rebuilds, 1);
        assert_eq!(snap.maintenance_postings_touched, 17);
        assert_eq!(snap.maintenance_time, Duration::from_micros(13));
        assert_eq!(snap.wal_appends, 2);
        assert_eq!(snap.wal_bytes_appended, 200);
        assert_eq!(snap.checkpoint_bytes_written, 900);
        assert_eq!(snap.checkpoint_time, Duration::from_micros(21));
        assert_eq!(snap.recovery_replayed_windows, 4);
        assert_eq!(snap.plan_builds, 3);
        assert_eq!(snap.scratch_allocs, 1);
        assert_eq!(snap.preverify_rejections, 7);
        assert_eq!(snap.columnar_screen_time, Duration::from_nanos(150));
    }

    #[test]
    fn serving_counters_flow_through_snapshot() {
        let atomic = AtomicEngineStats::default();
        atomic.count_request_served();
        atomic.count_request_served();
        atomic.count_request_served();
        atomic.count_overload_rejection();
        atomic.count_batch_coalesced();
        let snap = atomic.snapshot();
        assert_eq!(snap.requests_served, 3);
        assert_eq!(snap.requests_rejected_overload, 1);
        assert_eq!(snap.batches_coalesced, 1);
        // Rejected requests never enter the query pipeline.
        assert_eq!(snap.queries, 0);
    }

    #[test]
    fn replication_gauges_and_counters_flow_through_snapshot() {
        let atomic = AtomicEngineStats::default();
        // A follower that has applied 5 flips and heard of 8.
        atomic.set_last_applied_seq(5);
        atomic.note_replica_heard(8);
        atomic.record_replica_group_applied(64);
        atomic.record_replica_group_applied(36);
        atomic.count_replica_group_published();
        let snap = atomic.snapshot();
        assert_eq!(snap.last_applied_seq, 5);
        assert_eq!(snap.replication_lag_windows, 3);
        assert_eq!(snap.replica_groups_applied, 2);
        assert_eq!(snap.replica_bytes_applied, 100);
        assert_eq!(snap.replica_groups_published, 1);
        // Gauges are monotone: a stale heartbeat or duplicate seq never
        // regresses them.
        atomic.note_replica_heard(2);
        atomic.set_last_applied_seq(4);
        let snap = atomic.snapshot();
        assert_eq!(snap.last_applied_seq, 5);
        assert_eq!(snap.replication_lag_windows, 3);
        // A caught-up follower reports zero lag, not underflow.
        atomic.set_last_applied_seq(9);
        assert_eq!(atomic.snapshot().replication_lag_windows, 0);
    }

    #[test]
    fn merge_sums_counters_and_takes_worst_case_gauges() {
        let primary = EngineStats {
            queries: 10,
            wal_appends: 4,
            wal_bytes_appended: 400,
            last_applied_seq: 9,
            replica_groups_published: 9,
            maintenance_lag_windows: 2,
            ..Default::default()
        };
        let follower = EngineStats {
            queries: 6,
            last_applied_seq: 7,
            replication_lag_windows: 2,
            replica_groups_applied: 7,
            replica_bytes_applied: 700,
            maintenance_lag_windows: 5,
            ..Default::default()
        };
        let mut fleet = EngineStats::default();
        fleet.merge(&primary);
        fleet.merge(&follower);
        assert_eq!(fleet.queries, 16);
        assert_eq!(fleet.wal_appends, 4);
        assert_eq!(fleet.wal_bytes_appended, 400);
        assert_eq!(fleet.replica_groups_published, 9);
        assert_eq!(fleet.replica_groups_applied, 7);
        assert_eq!(fleet.replica_bytes_applied, 700);
        // Worst-case gauges: lag maxes, applied-seq floors over engines
        // with history (the fresh `fleet` zero does not drag it down).
        assert_eq!(fleet.maintenance_lag_windows, 5);
        assert_eq!(fleet.replication_lag_windows, 2);
        assert_eq!(fleet.last_applied_seq, 7);
        // Merge order does not matter.
        let mut reversed = EngineStats::default();
        reversed.merge(&follower);
        reversed.merge(&primary);
        assert_eq!(reversed.last_applied_seq, fleet.last_applied_seq);
        assert_eq!(reversed.queries, fleet.queries);
        assert_eq!(
            reversed.replication_lag_windows,
            fleet.replication_lag_windows
        );
    }

    #[test]
    fn atomic_stats_absorb_concurrently() {
        let atomic = AtomicEngineStats::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let o = QueryOutcome {
                        db_iso_tests: 1,
                        ..Default::default()
                    };
                    for _ in 0..250 {
                        atomic.absorb(&o);
                    }
                });
            }
        });
        let snap = atomic.snapshot();
        assert_eq!(snap.queries, 1000);
        assert_eq!(snap.db_iso_tests, 1000);
    }
}
