//! Engine-lifetime aggregate statistics.

use crate::outcome::{QueryOutcome, Resolution};
use std::time::Duration;

/// Totals across every query an engine has processed.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Queries processed.
    pub queries: u64,
    /// DB-side subgraph isomorphism tests (the paper's headline metric).
    pub db_iso_tests: u64,
    /// iGQ-internal iso tests (query-vs-cached-query overhead).
    pub igq_iso_tests: u64,
    /// Budget-aborted verifications (see [`QueryOutcome::aborted_tests`]).
    pub aborted_tests: u64,
    /// Candidates produced by the base method, summed.
    pub candidates_before: u64,
    /// Candidates surviving iGQ pruning, summed.
    pub candidates_after: u64,
    /// Candidates removed via the subgraph path.
    pub pruned_by_isub: u64,
    /// Candidates removed via the supergraph path.
    pub pruned_by_isuper: u64,
    /// Optimal case 1 resolutions (exact repeats).
    pub exact_hits: u64,
    /// Optimal case 2 resolutions (empty-answer shortcuts).
    pub empty_shortcuts: u64,
    /// Window maintenances performed: index delta applications or rebuilds
    /// in the synchronous modes, window deltas *submitted* to the
    /// maintenance thread under `MaintenanceMode::Background`.
    pub maintenances: u64,
    /// Full shadow rebuilds of the query indexes. Zero in steady state
    /// under `MaintenanceMode::Incremental` and `Background`; equals
    /// `maintenances` under `ShadowRebuild`.
    pub full_rebuilds: u64,
    /// Index postings inserted or removed during incremental delta
    /// application — on the query thread (`Incremental`) or the
    /// maintenance thread (`Background`). Zero under `ShadowRebuild`.
    pub maintenance_postings_touched: u64,
    /// Wall-clock spent applying index updates, **reported from the thread
    /// that did the work**: the query thread in the synchronous modes
    /// (where it is also part of `igq_time`), the maintenance thread under
    /// `MaintenanceMode::Background` (where it overlaps query processing
    /// and is *not* part of any query's wall-clock). Cache
    /// eviction/admission stays on the query thread in every mode and is
    /// accounted under `igq_time`, not here.
    pub maintenance_time: Duration,
    /// Peak lag of the background maintainer, in submitted-but-unapplied
    /// windows. Bounded by `IgqConfig::max_lag_windows`; zero in the
    /// synchronous modes.
    pub maintenance_lag_windows: u64,
    /// Index snapshots atomically published by the background maintainer.
    /// Zero in the synchronous modes.
    pub snapshot_publishes: u64,
    /// Query path-feature extractions performed by the engine. On the
    /// filter+probe path this is exactly one per query: the same
    /// `PathFeatures` is shared by the base method's filter and both
    /// query-index probes.
    pub feature_extractions: u64,
    /// Wall-clock in the base method's filter stage.
    pub filter_time: Duration,
    /// Wall-clock in iGQ probes and bookkeeping.
    pub igq_time: Duration,
    /// Wall-clock in verification.
    pub verify_time: Duration,
    /// End-to-end wall-clock.
    pub wall_time: Duration,
}

impl EngineStats {
    /// Overlays the background maintainer's off-thread counters. In
    /// `MaintenanceMode::Background` these four fields are owned entirely
    /// by the maintenance thread (the query thread never touches them),
    /// so a straight assignment is the merge.
    pub fn fold_maintainer(&mut self, ms: &crate::background::MaintainerStats) {
        self.maintenance_postings_touched = ms.postings_touched;
        self.maintenance_time = ms.maintenance_time;
        self.maintenance_lag_windows = ms.peak_lag_windows;
        self.snapshot_publishes = ms.snapshot_publishes;
    }

    /// Folds one query outcome into the totals.
    pub fn absorb(&mut self, o: &QueryOutcome) {
        self.queries += 1;
        self.db_iso_tests += o.db_iso_tests;
        self.igq_iso_tests += o.igq_iso_tests;
        self.aborted_tests += o.aborted_tests;
        self.candidates_before += o.candidates_before as u64;
        self.candidates_after += o.candidates_after as u64;
        self.pruned_by_isub += o.pruned_by_isub as u64;
        self.pruned_by_isuper += o.pruned_by_isuper as u64;
        match o.resolution {
            Resolution::ExactHit => self.exact_hits += 1,
            Resolution::EmptyAnswerShortcut => self.empty_shortcuts += 1,
            Resolution::Verified => {}
        }
        self.filter_time += o.filter_time;
        self.igq_time += o.igq_time;
        self.verify_time += o.verify_time;
        self.wall_time += o.total_time();
    }

    /// Average DB iso tests per query.
    pub fn avg_db_iso_tests(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.db_iso_tests as f64 / self.queries as f64
        }
    }

    /// Average end-to-end wall-clock per query.
    pub fn avg_wall_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.wall_time / self.queries as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = EngineStats::default();
        let o = QueryOutcome {
            db_iso_tests: 5,
            candidates_before: 10,
            candidates_after: 5,
            resolution: Resolution::ExactHit,
            ..Default::default()
        };
        s.absorb(&o);
        s.absorb(&o);
        assert_eq!(s.queries, 2);
        assert_eq!(s.db_iso_tests, 10);
        assert_eq!(s.exact_hits, 2);
        assert_eq!(s.avg_db_iso_tests(), 5.0);
    }

    #[test]
    fn empty_stats_averages() {
        let s = EngineStats::default();
        assert_eq!(s.avg_db_iso_tests(), 0.0);
        assert_eq!(s.avg_wall_time(), Duration::ZERO);
    }
}
