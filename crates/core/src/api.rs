//! The shared-service query API: the [`QueryEngine`] trait both engine
//! directions implement, typed [`QueryRequest`]/[`QueryResponse`]
//! wrappers, and the cheap cloneable [`EngineHandle`] for fanning one
//! engine out across threads.
//!
//! # Serving model
//!
//! An iGQ engine is a shared, concurrently queryable service:
//! [`QueryEngine::query`] takes `&self` and every implementor is
//! `Send + Sync`, so N threads can drive one engine through clones of an
//! [`EngineHandle`] (or plain `Arc`/scoped borrows). For whole batches,
//! [`QueryEngine::query_batch`] does the fan-out internally across
//! [`IgqConfig::batch_threads`](crate::IgqConfig::batch_threads) workers.
//!
//! ```
//! use igq_core::{IgqConfig, IgqEngine, MaintenanceMode, QueryEngine};
//! use igq_graph::{graph_from, GraphStore};
//! use igq_methods::{Ggsx, GgsxConfig};
//! use std::sync::Arc;
//!
//! let store: Arc<GraphStore> = Arc::new(
//!     vec![graph_from(&[0, 1], &[(0, 1)])].into_iter().collect(),
//! );
//! let method = Ggsx::build(&store, GgsxConfig::default());
//! let config = IgqConfig::builder()
//!     .cache_capacity(100)
//!     .window(10)
//!     .maintenance(MaintenanceMode::Background)
//!     .build()
//!     .expect("valid config");
//! let handle = IgqEngine::new(method, config).expect("valid engine").into_handle();
//!
//! // Fan the same engine out across threads; answers stay exact.
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let h = handle.clone();
//!         s.spawn(move || {
//!             let out = h.query(&graph_from(&[0, 1], &[(0, 1)]));
//!             assert_eq!(out.answers.len(), 1);
//!         });
//!     }
//! });
//! assert_eq!(handle.stats().queries, 4);
//! ```

use crate::config::IgqConfig;
use crate::engine::Engine;
use crate::outcome::QueryOutcome;
use crate::stats::EngineStats;
use igq_graph::{Graph, GraphId};
use std::sync::Arc;
use std::time::Duration;

/// Per-query options carried by a [`QueryRequest`] — the growth point for
/// request-scoped behavior that plain [`QueryEngine::query`] has no room
/// for.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Do not consider this query for window admission: it is answered
    /// exactly but leaves no trace in the cache. For one-off exploratory
    /// queries that should not displace residents serving the steady
    /// workload.
    pub skip_admission: bool,
    /// Soft latency target. Exceeding it is *reported*
    /// ([`QueryResponse::deadline_exceeded`]), never enforced by
    /// truncating work: iGQ's contract is exact answers, and a cached
    /// partial answer would poison future queries. Callers that want to
    /// shed load can combine the report with `skip_admission` or their own
    /// admission control.
    pub deadline: Option<Duration>,
}

/// A typed query: the pattern graph plus per-query [`QueryOptions`].
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query graph.
    pub graph: Graph,
    /// Request-scoped options.
    pub options: QueryOptions,
}

impl QueryRequest {
    /// A request for `graph` with default options — equivalent to
    /// [`QueryEngine::query`].
    pub fn new(graph: Graph) -> QueryRequest {
        QueryRequest {
            graph,
            options: QueryOptions::default(),
        }
    }

    /// Excludes this query from window admission (see
    /// [`QueryOptions::skip_admission`]).
    pub fn skip_admission(mut self) -> QueryRequest {
        self.options.skip_admission = true;
        self
    }

    /// Sets the soft deadline (see [`QueryOptions::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> QueryRequest {
        self.options.deadline = Some(deadline);
        self
    }
}

/// The outcome of a [`QueryRequest`]: the full [`QueryOutcome`] plus
/// request-level verdicts.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The exact answers and per-stage accounting.
    pub outcome: QueryOutcome,
    /// End-to-end wall-clock of the request as the engine observed it,
    /// measured around the whole pipeline *including* lock waits — the
    /// per-request latency a serving edge should report without
    /// re-measuring around the call. Always ≥ the outcome's stage times.
    pub elapsed: Duration,
    /// True when the request carried a [`QueryOptions::deadline`] and
    /// [`elapsed`](Self::elapsed) exceeded it. The answers are exact
    /// either way (iGQ never truncates work; see
    /// [`QueryOptions::deadline`]).
    pub deadline_exceeded: bool,
}

impl QueryResponse {
    /// The answer set (sorted dataset graph ids).
    pub fn answers(&self) -> &[GraphId] {
        &self.outcome.answers
    }
}

/// The unified engine interface implemented by both query directions
/// ([`crate::IgqEngine`] and [`crate::IgqSuperEngine`] — both aliases of
/// [`crate::Engine`]).
///
/// Every implementor is a shared-handle concurrent service: all methods
/// take `&self`, and the `Send + Sync` supertrait bound means a reference
/// (or [`EngineHandle`] clone) can cross threads freely. Generic clients —
/// harnesses, servers, benches — can drive either direction through this
/// trait without caring which algebra runs underneath.
pub trait QueryEngine: Send + Sync {
    /// Processes one query, returning the exact answer set plus
    /// accounting.
    fn query(&self, q: &Graph) -> QueryOutcome;

    /// Processes a typed request with per-query options.
    fn execute(&self, request: &QueryRequest) -> QueryResponse;

    /// Fans a batch of queries across worker threads sharing this engine;
    /// output index-aligned with the input.
    fn query_batch(&self, queries: &[Graph]) -> Vec<QueryOutcome>;

    /// Fans a batch of typed requests (per-request options preserved)
    /// across worker threads; output index-aligned with the input. A
    /// multi-request batch counts once toward
    /// [`EngineStats::batches_coalesced`] — the serving front end's
    /// micro-batcher funnels coalesced windows through this.
    fn execute_batch(&self, requests: &[QueryRequest]) -> Vec<QueryResponse>;

    /// Windows currently submitted to background maintenance but not yet
    /// applied, maximized over shards — the *instantaneous* staleness an
    /// admission controller should gate on (unlike
    /// [`EngineStats::maintenance_lag_windows`], which is the lifetime
    /// peak). Zero in the synchronous maintenance modes.
    fn maintenance_lag(&self) -> u64;

    /// Records one request shed by lag-gated admission control into
    /// [`EngineStats::requests_rejected_overload`]. The serving edge makes
    /// the shed decision (the engine itself never refuses work) but the
    /// count belongs with the engine's other totals.
    fn note_overload_rejection(&self);

    /// Aggregate statistics so far (owned snapshot; lock-free).
    fn stats(&self) -> EngineStats;

    /// The engine configuration.
    fn config(&self) -> &IgqConfig;

    /// Number of currently cached queries.
    fn cached_queries(&self) -> usize;

    /// Forces window maintenance regardless of window fill.
    fn flush_window(&self);

    /// Blocks until background maintenance has caught up with the cache
    /// (no-op in the synchronous modes).
    fn sync_maintenance(&self);

    /// Writes a checkpoint to the attached
    /// [`CacheStore`](crate::persist::CacheStore) and compacts the WAL
    /// (no-op `Ok` for engines constructed without a store). See
    /// [`Engine::checkpoint`].
    fn checkpoint(&self) -> Result<(), crate::persist::PersistError>;

    /// Verifies internal invariants and index/cache agreement.
    fn self_check(&self) -> Result<(), String>;

    /// `true` if this engine is a read-only follower replica. Defaults to
    /// `false` — only [`Engine::open_follower`] engines report otherwise.
    fn is_follower(&self) -> bool {
        false
    }

    /// Follower staleness in window flips (highest flip heard from the
    /// primary minus last flip applied locally); `None` on a primary.
    /// A serving edge gates bounded-staleness reads on this, exactly as
    /// it gates writes on [`maintenance_lag`](QueryEngine::maintenance_lag).
    fn replication_lag(&self) -> Option<u64> {
        None
    }

    /// Subscribes a replica to this engine's committed window flips (see
    /// [`Engine::subscribe_replication`]); `None` when the engine does
    /// not support replication.
    fn subscribe_replication(
        &self,
        from_seq: Option<u64>,
    ) -> Option<crate::replicate::Subscription> {
        let _ = from_seq;
        None
    }

    /// Applies one replicated delta group to a follower (see
    /// [`Engine::apply_replica_delta`]). Defaults to
    /// [`ReplicaError::NotFollower`](crate::replicate::ReplicaError::NotFollower).
    fn apply_replica_delta(&self, bytes: &[u8]) -> Result<u64, crate::replicate::ReplicaError> {
        let _ = bytes;
        Err(crate::replicate::ReplicaError::NotFollower)
    }

    /// Records that the primary's stream has reached `seq` without
    /// applying it (heartbeats keep the staleness gauge honest while no
    /// flips happen). No-op by default.
    fn note_replica_heard(&self, seq: u64) {
        let _ = seq;
    }

    /// Promotes a read-only follower into a writable primary, bumping
    /// the failover epoch so any delta group the deposed primary still
    /// emits is fenced (see [`Engine::promote`]). Returns the new
    /// epoch. Defaults to
    /// [`ReplicaError::NotFollower`](crate::replicate::ReplicaError::NotFollower).
    fn promote(&self) -> Result<u64, crate::replicate::ReplicaError> {
        Err(crate::replicate::ReplicaError::NotFollower)
    }
}

impl<D: crate::direction::QueryDirection> QueryEngine for crate::engine::Engine<D> {
    fn query(&self, q: &Graph) -> QueryOutcome {
        Engine::query(self, q)
    }

    fn execute(&self, request: &QueryRequest) -> QueryResponse {
        Engine::execute(self, request)
    }

    fn query_batch(&self, queries: &[Graph]) -> Vec<QueryOutcome> {
        Engine::query_batch(self, queries)
    }

    fn execute_batch(&self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        Engine::execute_batch(self, requests)
    }

    fn maintenance_lag(&self) -> u64 {
        Engine::maintenance_lag(self)
    }

    fn note_overload_rejection(&self) {
        Engine::note_overload_rejection(self)
    }

    fn stats(&self) -> EngineStats {
        Engine::stats(self)
    }

    fn config(&self) -> &IgqConfig {
        Engine::config(self)
    }

    fn cached_queries(&self) -> usize {
        Engine::cached_queries(self)
    }

    fn flush_window(&self) {
        Engine::flush_window(self)
    }

    fn sync_maintenance(&self) {
        Engine::sync_maintenance(self)
    }

    fn checkpoint(&self) -> Result<(), crate::persist::PersistError> {
        Engine::checkpoint(self)
    }

    fn self_check(&self) -> Result<(), String> {
        Engine::self_check(self)
    }

    fn is_follower(&self) -> bool {
        Engine::is_follower(self)
    }

    fn replication_lag(&self) -> Option<u64> {
        Engine::replication_lag(self)
    }

    fn subscribe_replication(
        &self,
        from_seq: Option<u64>,
    ) -> Option<crate::replicate::Subscription> {
        Some(Engine::subscribe_replication(self, from_seq))
    }

    fn apply_replica_delta(&self, bytes: &[u8]) -> Result<u64, crate::replicate::ReplicaError> {
        Engine::apply_replica_delta(self, bytes)
    }

    fn note_replica_heard(&self, seq: u64) {
        Engine::note_replica_heard(self, seq)
    }

    fn promote(&self) -> Result<u64, crate::replicate::ReplicaError> {
        Engine::promote(self)
    }
}

/// A cheap cloneable handle to a shared [`QueryEngine`]: an `Arc` under
/// the hood, `Deref`ing to the engine. Clone one per worker thread; the
/// engine (and its background maintainer, if any) shuts down when the
/// last clone drops.
#[derive(Debug)]
pub struct EngineHandle<E: QueryEngine> {
    inner: Arc<E>,
}

impl<E: QueryEngine> EngineHandle<E> {
    /// Wraps `engine` for shared fan-out.
    pub fn new(engine: E) -> EngineHandle<E> {
        EngineHandle {
            inner: Arc::new(engine),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &E {
        &self.inner
    }
}

impl<E: QueryEngine> Clone for EngineHandle<E> {
    fn clone(&self) -> EngineHandle<E> {
        EngineHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<E: QueryEngine> std::ops::Deref for EngineHandle<E> {
    type Target = E;

    fn deref(&self) -> &E {
        &self.inner
    }
}

/// Handle to a shared subgraph-query engine.
pub type IgqHandle<M> = EngineHandle<crate::IgqEngine<M>>;

/// Handle to a shared supergraph-query engine.
pub type IgqSuperHandle = EngineHandle<crate::IgqSuperEngine>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders_set_options() {
        let g = igq_graph::graph_from(&[0], &[]);
        let r = QueryRequest::new(g.clone());
        assert!(!r.options.skip_admission);
        assert!(r.options.deadline.is_none());
        let r = QueryRequest::new(g)
            .skip_admission()
            .deadline(Duration::from_millis(5));
        assert!(r.options.skip_admission);
        assert_eq!(r.options.deadline, Some(Duration::from_millis(5)));
    }
}
