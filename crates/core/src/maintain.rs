//! Shared window-maintenance machinery for [`crate::engine::IgqEngine`]
//! and [`crate::super_engine::IgqSuperEngine`].
//!
//! Both engines own the same trio — a [`QueryCache`] plus the
//! [`IsubIndex`]/[`IsuperIndex`] pair — and apply the same slot delta after
//! every window: remove evicted slots, insert admitted ones (or rebuild
//! wholesale under [`MaintenanceMode::ShadowRebuild`]).

use crate::cache::{QueryCache, WindowDelta};
use crate::config::MaintenanceMode;
use crate::isub::IsubIndex;
use crate::isuper::IsuperIndex;
use igq_features::{enumerate_paths, LabelSeq, PathConfig};
use std::sync::Arc;

/// What one maintenance did to the indexes, for [`crate::EngineStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceOutcome {
    /// Postings inserted or removed (incremental mode only).
    pub postings_touched: u64,
    /// True when the indexes were rebuilt from scratch.
    pub rebuilt: bool,
}

/// Brings `isub`/`isuper` in line with `cache` after `delta` was applied
/// to it. Public so the maintenance ablation bench can drive the exact
/// machinery the engines use.
pub fn apply_delta(
    mode: MaintenanceMode,
    path_config: PathConfig,
    cache: &QueryCache,
    delta: &WindowDelta,
    isub: &mut IsubIndex,
    isuper: &mut IsuperIndex,
) -> MaintenanceOutcome {
    let mut outcome = MaintenanceOutcome::default();
    if delta.is_empty() {
        return outcome;
    }
    match mode {
        MaintenanceMode::Incremental => {
            for &slot in &delta.evicted {
                outcome.postings_touched += isub.remove(slot);
                outcome.postings_touched += isuper.remove(slot);
            }
            for &slot in &delta.admitted {
                // One enumeration feeds both indexes; the feature-key
                // list is shared between their slot entries.
                let graph = Arc::clone(&cache.entry(slot).graph);
                let features = enumerate_paths(&graph, &path_config);
                let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
                outcome.postings_touched +=
                    isub.insert_features(slot, Arc::clone(&graph), &features, Arc::clone(&keys));
                outcome.postings_touched += isuper.insert_features(slot, graph, &features, keys);
            }
        }
        MaintenanceMode::ShadowRebuild => {
            let graphs = || cache.iter().map(|(slot, e)| (slot, Arc::clone(&e.graph)));
            *isub = IsubIndex::build(graphs(), path_config);
            *isuper = IsuperIndex::build(graphs(), path_config);
            outcome.rebuilt = true;
        }
    }
    outcome
}
