//! Shared window-maintenance machinery for [`crate::engine::IgqEngine`]
//! and [`crate::super_engine::IgqSuperEngine`].
//!
//! Both engines own the same trio — a [`QueryCache`] plus the
//! [`IsubIndex`]/[`IsuperIndex`] pair — and apply the same slot delta after
//! every window: remove evicted slots, insert admitted ones (or rebuild
//! wholesale under [`MaintenanceMode::ShadowRebuild`]).
//!
//! A delta can be applied in two shapes:
//!
//! * [`apply_delta`] — synchronous, on the query thread, reading admitted
//!   graphs straight out of the live cache ([`MaintenanceMode::Incremental`]
//!   and [`MaintenanceMode::ShadowRebuild`]);
//! * [`MaintenanceJob`] + [`apply_job`] — the delta plus `Arc` clones of
//!   the admitted graphs, self-contained so it can cross a channel to the
//!   background maintenance thread ([`MaintenanceMode::Background`], see
//!   [`crate::background`]). The job form never rebuilds: it is always the
//!   incremental O(window delta) application.

use crate::cache::{QueryCache, WindowDelta};
use crate::config::MaintenanceMode;
use crate::isub::IsubIndex;
use crate::isuper::IsuperIndex;
use igq_features::{enumerate_paths, LabelSeq, PathConfig};
use igq_graph::canon::CanonicalCode;
use igq_graph::Graph;
use std::sync::Arc;

/// What one maintenance did to the indexes, for [`crate::EngineStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceOutcome {
    /// Postings inserted or removed (incremental application only).
    pub postings_touched: u64,
    /// True when the indexes were rebuilt from scratch.
    pub rebuilt: bool,
}

/// One window's index work, detached from the cache: the evicted slots
/// plus `(slot, graph, code)` triples for the admissions. Self-contained
/// (graphs are `Arc`-shared, not referenced), so the job can be queued to
/// the background maintainer after the cache has already moved on.
#[derive(Debug, Clone)]
pub struct MaintenanceJob {
    /// Slots whose previous occupant was evicted, in eviction order.
    pub evicted: Vec<usize>,
    /// Admitted `(slot, graph, canonical code)` triples, in admission
    /// order. The code (when the cache computed one) is stored on the
    /// `Isuper` slot entry so index probes can key the plan cache.
    pub admitted: Vec<(usize, Arc<Graph>, Option<CanonicalCode>)>,
}

impl MaintenanceJob {
    /// Captures `delta` as a self-contained job by cloning the admitted
    /// slots' graph `Arc`s out of `cache`. Must be called before the cache
    /// changes again (slots are only meaningful against the cache state
    /// that produced the delta).
    pub fn capture(cache: &QueryCache, delta: &WindowDelta) -> MaintenanceJob {
        MaintenanceJob {
            evicted: delta.evicted.clone(),
            admitted: delta
                .admitted
                .iter()
                .map(|&slot| {
                    let entry = cache.entry(slot);
                    (slot, Arc::clone(&entry.graph), entry.code.clone())
                })
                .collect(),
        }
    }

    /// True when the job changes nothing.
    pub fn is_empty(&self) -> bool {
        self.evicted.is_empty() && self.admitted.is_empty()
    }
}

/// Applies one self-contained job to the index pair — always incrementally
/// (remove evicted slots, insert admitted ones). This is the inner loop of
/// the background maintenance thread, and the Incremental arm of
/// [`apply_delta`] routes through it too.
pub fn apply_job(
    path_config: PathConfig,
    job: &MaintenanceJob,
    isub: &mut IsubIndex,
    isuper: &mut IsuperIndex,
) -> MaintenanceOutcome {
    let mut outcome = MaintenanceOutcome::default();
    for &slot in &job.evicted {
        outcome.postings_touched += isub.remove(slot);
        outcome.postings_touched += isuper.remove(slot);
    }
    for (slot, graph, code) in &job.admitted {
        // One enumeration feeds both indexes; the feature-key list is
        // shared between their slot entries.
        let features = enumerate_paths(graph, &path_config);
        let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
        outcome.postings_touched +=
            isub.insert_features(*slot, Arc::clone(graph), &features, Arc::clone(&keys));
        outcome.postings_touched +=
            isuper.insert_features(*slot, Arc::clone(graph), &features, keys, code.clone());
    }
    outcome
}

/// Brings `isub`/`isuper` in line with `cache` after `delta` was applied
/// to it, synchronously on the calling thread. Public so the maintenance
/// ablation bench can drive the exact machinery the engines use.
///
/// Under [`MaintenanceMode::Background`] the engines do **not** call this —
/// they queue a [`MaintenanceJob`] to the maintainer instead; if called
/// with that mode anyway (e.g. by a harness measuring the background
/// thread's share of work) it applies the delta incrementally, which is
/// exactly what the background thread would do.
pub fn apply_delta(
    mode: MaintenanceMode,
    path_config: PathConfig,
    cache: &QueryCache,
    delta: &WindowDelta,
    isub: &mut IsubIndex,
    isuper: &mut IsuperIndex,
) -> MaintenanceOutcome {
    if delta.is_empty() {
        return MaintenanceOutcome::default();
    }
    match mode {
        // In place, straight out of the live cache — no MaintenanceJob is
        // materialized on this (query-thread) path; the job form is only
        // built when a delta actually crosses to the maintenance thread.
        MaintenanceMode::Incremental | MaintenanceMode::Background => {
            let mut outcome = MaintenanceOutcome::default();
            for &slot in &delta.evicted {
                outcome.postings_touched += isub.remove(slot);
                outcome.postings_touched += isuper.remove(slot);
            }
            for &slot in &delta.admitted {
                // One enumeration feeds both indexes; the feature-key
                // list is shared between their slot entries.
                let entry = cache.entry(slot);
                let graph = Arc::clone(&entry.graph);
                let code = entry.code.clone();
                let features = enumerate_paths(&graph, &path_config);
                let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
                outcome.postings_touched +=
                    isub.insert_features(slot, Arc::clone(&graph), &features, Arc::clone(&keys));
                outcome.postings_touched +=
                    isuper.insert_features(slot, graph, &features, keys, code);
            }
            outcome
        }
        MaintenanceMode::ShadowRebuild => {
            let graphs = || cache.iter().map(|(slot, e)| (slot, Arc::clone(&e.graph)));
            *isub = IsubIndex::build(graphs(), path_config);
            *isuper = IsuperIndex::build(graphs(), path_config);
            MaintenanceOutcome {
                postings_touched: 0,
                rebuilt: true,
            }
        }
    }
}
