//! # igq-core
//!
//! The paper's primary contribution: **iGQ**, a query-graph indexing and
//! result-caching layer that accelerates subgraph *and* supergraph query
//! processing on top of any filter-then-verify method — packaged as a
//! shared, concurrently queryable service.
//!
//! The system (paper Fig. 6) comprises:
//!
//! * [`IsubIndex`] — finds cached queries that are **supergraphs** of a new
//!   query; their stored answers are known answers (Section 4.2.1);
//! * [`IsuperIndex`] — finds cached queries that are **subgraphs** of a new
//!   query via the occurrence-counting trie of Algorithms 1 & 2; their
//!   stored answers bound the candidates (Section 4.2.2);
//! * [`QueryCache`] — the stored query graphs, answer sets, and
//!   replacement metadata (`Igraphs` + `Stat(iGQ Graph)`, Section 5);
//! * the utility-based replacement policy `U(g) = C(g)/M(g)` with costs in
//!   log space (Section 5.1, [`metadata`]);
//! * windowed maintenance (Section 5.2) with **incremental delta updates**
//!   of both query indexes, the paper's wholesale shadow rebuild
//!   ([`config::MaintenanceMode::ShadowRebuild`], for ablation), and
//!   fully off-thread maintenance behind atomically published snapshots
//!   ([`config::MaintenanceMode::Background`], [`background`]);
//! * [`Engine`] — **one** pipeline implementing formulas (3)–(5) and the
//!   optimal cases of Section 4.3, generic over the query
//!   [`QueryDirection`]; [`IgqEngine`] and [`IgqSuperEngine`] are its two
//!   instantiations (the Section 4.4 inversion is a [`SupergraphQueries`]
//!   type parameter, not a second engine);
//! * the shared-service API ([`api`]): `query(&self)` on a `Send + Sync`
//!   engine, the [`QueryEngine`] trait for direction-agnostic clients,
//!   typed [`QueryRequest`]/[`QueryResponse`] wrappers, batch fan-out
//!   ([`QueryEngine::query_batch`]), and the cloneable [`EngineHandle`]
//!   for serving queries from many threads at once;
//! * durability ([`persist`]): [`Engine::open`] over a [`CacheStore`]
//!   ([`DirStore`]/[`MemStore`]) recovers a warm engine from a versioned,
//!   checksummed checkpoint plus a window-delta write-ahead log, with
//!   config-driven auto-checkpointing ([`PersistenceConfig`]) and typed
//!   [`PersistError`]s;
//! * replication ([`replicate`]): a primary publishes every committed
//!   window flip as a binary delta group
//!   ([`Engine::subscribe_replication`]); a follower
//!   ([`Engine::open_follower`]) bootstraps from its snapshot, replays
//!   the stream ([`Engine::apply_replica_delta`]), and serves read-only
//!   queries with a measurable staleness bound
//!   ([`EngineStats::replication_lag_windows`]).
//!
//! Configuration goes through the validating [`IgqConfig::builder`];
//! invalid combinations surface as typed [`ConfigError`]s at build or
//! engine-construction time.
//!
//! Correctness follows the paper's Theorems 1–2; the workspace integration
//! tests re-establish them empirically against a naive oracle on
//! randomized workloads — including N threads hammering one shared engine.
//!
//! # Example
//!
//! Wrap a filter-then-verify method (here GGSX) in the iGQ engine and
//! serve it from multiple threads through a shared handle:
//!
//! ```
//! use igq_core::{IgqConfig, IgqEngine, MaintenanceMode, QueryEngine};
//! use igq_graph::{graph_from, GraphStore};
//! use igq_methods::{Ggsx, GgsxConfig};
//! use std::sync::Arc;
//!
//! let store: Arc<GraphStore> = Arc::new(
//!     vec![
//!         graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
//!         graph_from(&[0, 1], &[(0, 1)]),
//!     ]
//!     .into_iter()
//!     .collect(),
//! );
//! let method = Ggsx::build(&store, GgsxConfig::default());
//! let config = IgqConfig::builder()
//!     .cache_capacity(100)
//!     .window(10)
//!     // `Background` moves index maintenance off the query threads;
//!     // `Incremental` (the default) applies it synchronously.
//!     .maintenance(MaintenanceMode::Background)
//!     .build()
//!     .expect("valid config");
//! let handle = IgqEngine::new(method, config)
//!     .expect("valid engine")
//!     .into_handle();
//!
//! let q = graph_from(&[0, 1], &[(0, 1)]);
//! let first = handle.query(&q);
//! // Clone the handle into as many threads as you like...
//! let worker = handle.clone();
//! let repeat = std::thread::spawn(move || worker.query(&q))
//!     .join()
//!     .expect("worker"); // resolved from the shared cache
//! assert_eq!(first.answers, repeat.answers);
//! assert_eq!(handle.stats().queries, 2);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod background;
pub mod cache;
pub mod config;
pub mod direction;
pub mod engine;
pub mod fault;
pub mod isub;
pub mod isuper;
pub mod maintain;
pub mod metadata;
pub mod outcome;
pub mod persist;
pub mod policy;
pub mod replicate;
mod shard;
pub mod stats;
pub mod super_engine;

pub use api::{
    EngineHandle, IgqHandle, IgqSuperHandle, QueryEngine, QueryOptions, QueryRequest, QueryResponse,
};
pub use background::{BackgroundMaintainer, IndexPair, MaintainerStats};
pub use cache::{CacheEntry, QueryCache, WindowDelta};
pub use config::{
    ConfigError, IgqConfig, IgqConfigBuilder, MaintenanceMode, PersistenceConfig, StoreCodec,
};
pub use direction::{QueryDirection, SubgraphQueries, SupergraphQueries};
pub use engine::{Engine, IgqEngine, ImportReport};
pub use fault::{FaultOp, FaultStats, FaultyStore};
pub use isub::{IndexSnapshot, IsubIndex};
pub use isuper::IsuperIndex;
pub use metadata::GraphMeta;
pub use outcome::{QueryOutcome, Resolution};
pub use persist::{CacheStore, DirStore, MemStore, PersistError};
pub use policy::ReplacementPolicy;
pub use replicate::{DeltaGroup, RecvTimeoutError, ReplicaError, ReplicaFeed, Subscription};
pub use stats::EngineStats;
pub use super_engine::IgqSuperEngine;
