//! # igq-core
//!
//! The paper's primary contribution: **iGQ**, a query-graph indexing and
//! result-caching layer that accelerates subgraph *and* supergraph query
//! processing on top of any filter-then-verify method.
//!
//! The system (paper Fig. 6) comprises:
//!
//! * [`IsubIndex`] — finds cached queries that are **supergraphs** of a new
//!   query; their stored answers are known answers (Section 4.2.1);
//! * [`IsuperIndex`] — finds cached queries that are **subgraphs** of a new
//!   query via the occurrence-counting trie of Algorithms 1 & 2; their
//!   stored answers bound the candidates (Section 4.2.2);
//! * [`QueryCache`] — the stored query graphs, answer sets, and
//!   replacement metadata (`Igraphs` + `Stat(iGQ Graph)`, Section 5);
//! * the utility-based replacement policy `U(g) = C(g)/M(g)` with costs in
//!   log space (Section 5.1, [`metadata`]);
//! * windowed maintenance (Section 5.2) with **incremental delta updates**
//!   of both query indexes — evicted cache slots are removed from the
//!   posting lists and admitted slots inserted, O(window delta) per window;
//!   the paper's wholesale shadow rebuild survives as
//!   [`config::MaintenanceMode::ShadowRebuild`] for ablation;
//! * [`IgqEngine`] — the subgraph-query pipeline implementing formulas
//!   (3)–(5) and the optimal cases of Section 4.3;
//! * [`IgqSuperEngine`] — the supergraph-query pipeline with the inverse
//!   algebra of Section 4.4.
//!
//! Correctness follows the paper's Theorems 1–2; the workspace integration
//! tests re-establish them empirically against a naive oracle on randomized
//! workloads.
//!
//! # Example
//!
//! Wrap a filter-then-verify method (here GGSX) in the iGQ engine and let
//! the query cache accelerate repeats and related queries:
//!
//! ```
//! use igq_core::{IgqConfig, IgqEngine, MaintenanceMode};
//! use igq_graph::{graph_from, GraphStore};
//! use igq_methods::{Ggsx, GgsxConfig};
//! use std::sync::Arc;
//!
//! let store: Arc<GraphStore> = Arc::new(
//!     vec![
//!         graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
//!         graph_from(&[0, 1], &[(0, 1)]),
//!     ]
//!     .into_iter()
//!     .collect(),
//! );
//! let method = Ggsx::build(&store, GgsxConfig::default());
//! let mut engine = IgqEngine::new(
//!     method,
//!     IgqConfig {
//!         cache_capacity: 100,
//!         window: 10,
//!         // `Background` moves index maintenance off the query thread;
//!         // `Incremental` (the default) applies it synchronously.
//!         maintenance: MaintenanceMode::Background,
//!         ..Default::default()
//!     },
//! );
//! let q = graph_from(&[0, 1], &[(0, 1)]);
//! let first = engine.query(&q);
//! let repeat = engine.query(&q); // resolved from the cache
//! assert_eq!(first.answers, repeat.answers);
//! assert_eq!(engine.stats().queries, 2);
//! ```

#![warn(missing_docs)]

pub mod background;
pub mod cache;
pub mod config;
pub mod engine;
pub mod isub;
pub mod isuper;
pub mod maintain;
pub mod metadata;
pub mod outcome;
pub mod policy;
pub mod stats;
pub mod super_engine;

pub use background::{BackgroundMaintainer, IndexPair, MaintainerStats};
pub use cache::{CacheEntry, QueryCache, WindowDelta};
pub use config::{IgqConfig, MaintenanceMode};
pub use engine::IgqEngine;
pub use isub::{IndexSnapshot, IsubIndex};
pub use isuper::IsuperIndex;
pub use metadata::GraphMeta;
pub use outcome::{QueryOutcome, Resolution};
pub use policy::ReplacementPolicy;
pub use stats::EngineStats;
pub use super_engine::IgqSuperEngine;
