//! iGQ engine configuration: the [`IgqConfig`] tunables, the validating
//! [`IgqConfigBuilder`], and the typed [`ConfigError`] the builder (and
//! engine construction) reports.
//!
//! Invalid combinations — a zero window, a window larger than the cache,
//! a zero lag bound — used to be clamped silently; they are now rejected
//! with a [`ConfigError`] at [`IgqConfigBuilder::build`] time and again at
//! engine construction, so a misconfigured deployment fails loudly instead
//! of misbehaving.

use crate::policy::ReplacementPolicy;
use igq_features::PathConfig;

/// How the query indexes are maintained at window boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Delta maintenance: evicted slots are removed from `Isub`/`Isuper`
    /// and admitted slots inserted, costing O(window delta) postings.
    #[default]
    Incremental,
    /// The paper's Section 5.2 "shadow indexing": rebuild both query
    /// indexes from scratch over the whole cache every window. Kept for
    /// ablation; costs O(cache) per window.
    ShadowRebuild,
    /// Off-thread delta maintenance: window deltas are queued to a
    /// dedicated maintenance thread which applies them to a shadow copy of
    /// the query indexes and atomically publishes immutable snapshots;
    /// queries probe the latest published snapshot. The query thread's
    /// window-boundary cost drops to eviction/admission plus one channel
    /// send. Snapshots may lag the cache by up to
    /// [`IgqConfig::max_lag_windows`] windows (a query blocks rather than
    /// exceed that bound); staleness only weakens pruning — answers stay
    /// exact because stale probe hits are revalidated against the live
    /// cache.
    Background,
}

impl MaintenanceMode {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MaintenanceMode::Incremental => "incremental",
            MaintenanceMode::ShadowRebuild => "shadow-rebuild",
            MaintenanceMode::Background => "background",
        }
    }
}

/// A rejected [`IgqConfig`] combination. Returned by
/// [`IgqConfigBuilder::build`], [`IgqConfig::validate`], and engine
/// construction ([`crate::IgqEngine::new`] / [`crate::IgqSuperEngine::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `window == 0`: maintenance would never run and nothing would ever
    /// be cached.
    ZeroWindow,
    /// `window > cache_capacity`: a window of admissions could never fit,
    /// violating the paper's `W ≤ C` invariant.
    WindowExceedsCapacity {
        /// The configured window `W`.
        window: usize,
        /// The configured cache capacity `C`.
        cache_capacity: usize,
    },
    /// `max_lag_windows == 0` would deadlock the background maintainer's
    /// submit gate (it waits for lag `< max_lag_windows`, which can never
    /// hold). The synchronous modes ignore the field but the bound is
    /// validated uniformly so a later mode switch cannot trip on it.
    ZeroLagBound,
    /// `shards == 0`: there would be no shard to route any query to.
    /// Sharding is disabled with `shards == 1` (the default), not `0`.
    ZeroShards,
    /// [`PersistenceConfig::checkpoint_every_windows`] `== 0`: the
    /// auto-checkpoint cadence would never fire, silently degrading the
    /// store to WAL-only growth. Disable auto-checkpointing explicitly
    /// with [`PersistenceConfig::manual`] instead.
    ZeroCheckpointInterval,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWindow => {
                write!(f, "window must be >= 1 (0 would never trigger maintenance)")
            }
            ConfigError::WindowExceedsCapacity {
                window,
                cache_capacity,
            } => write!(
                f,
                "window ({window}) must not exceed cache_capacity ({cache_capacity})"
            ),
            ConfigError::ZeroLagBound => {
                write!(f, "max_lag_windows must be >= 1 (0 would gate forever)")
            }
            ConfigError::ZeroShards => {
                write!(f, "shards must be >= 1 (use 1 to disable sharding)")
            }
            ConfigError::ZeroCheckpointInterval => write!(
                f,
                "checkpoint_every_windows must be >= 1 (use PersistenceConfig::manual \
                 to disable auto-checkpointing explicitly)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// On-disk encoding for checkpoints and WAL records. Reads always
/// auto-detect by stream magic, so the codec only governs what the engine
/// *writes* — an engine configured for [`StoreCodec::Binary`] still opens
/// a JSON-text store and (because [`Engine::open`](crate::Engine::open)
/// rewrites the WAL and checkpoints overwrite wholesale) migrates it to
/// binary as it runs. The codec is deliberately **excluded** from the
/// config fingerprint: switching it across restarts is always safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreCodec {
    /// The PR-4 line-framed JSON text format: human-inspectable,
    /// `grep`-able, 3–6x larger and slower to parse. Kept for debugging
    /// and for byte-stable artifacts in the corruption test suite.
    Json,
    /// Length-prefixed binary frames (varint integers, delta-coded answer
    /// sets, fixed-width checksums). Smaller artifacts, faster recovery,
    /// and the encoding replication streams use on the wire.
    #[default]
    Binary,
}

impl StoreCodec {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StoreCodec::Json => "json",
            StoreCodec::Binary => "binary",
        }
    }
}

/// Durability cadence for engines attached to a
/// [`CacheStore`](crate::persist::CacheStore) via
/// [`Engine::open`](crate::Engine::open). Ignored by engines constructed
/// with `new` (no store, nothing to persist to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Write a checkpoint automatically after this many window flips (WAL
    /// records) since the last checkpoint; the WAL is compacted to the
    /// post-checkpoint tail each time, bounding both recovery replay and
    /// log size. `None` disables auto-checkpointing — durability then
    /// rides on WAL appends plus explicit
    /// [`checkpoint`](crate::Engine::checkpoint) calls. `Some(0)` is
    /// rejected ([`ConfigError::ZeroCheckpointInterval`]).
    ///
    /// Cost model: the auto-checkpoint runs on the thread whose query
    /// crossed the cadence — off the engine's state lock (other callers
    /// keep serving), but that one caller pays the O(cache) snapshot and
    /// the storage writes in its wall-clock. Lower cadences shorten
    /// recovery replay; higher cadences shrink that periodic latency
    /// blip. (A dedicated checkpoint thread is a noted follow-on.)
    pub checkpoint_every_windows: Option<usize>,
    /// Encoding for new checkpoint/WAL writes (see [`StoreCodec`]).
    /// Reads auto-detect, so this never gates what the engine can *open*.
    pub codec: StoreCodec,
}

impl Default for PersistenceConfig {
    /// Checkpoint every 8 windows: frequent enough that recovery replays
    /// at most a handful of flips, rare enough that the O(cache) snapshot
    /// cost stays a small fraction of window work. New artifacts are
    /// written in the binary codec.
    fn default() -> Self {
        PersistenceConfig {
            checkpoint_every_windows: Some(8),
            codec: StoreCodec::default(),
        }
    }
}

impl PersistenceConfig {
    /// Auto-checkpoint every `windows` flips (must be ≥ 1).
    pub fn every(windows: usize) -> PersistenceConfig {
        PersistenceConfig {
            checkpoint_every_windows: Some(windows),
            ..PersistenceConfig::default()
        }
    }

    /// Explicit-checkpoint-only operation: the engine appends WAL records
    /// at every flip but never snapshots on its own.
    pub fn manual() -> PersistenceConfig {
        PersistenceConfig {
            checkpoint_every_windows: None,
            ..PersistenceConfig::default()
        }
    }

    /// The same cadence with an explicit write codec.
    pub fn with_codec(mut self, codec: StoreCodec) -> PersistenceConfig {
        self.codec = codec;
        self
    }
}

/// Tunables of the iGQ engine (paper Sections 5 and 7.1).
///
/// Construct one with [`IgqConfig::builder`] (validating) or a struct
/// literal over [`IgqConfig::default`]; either way the engines re-validate
/// at construction, so an invalid combination cannot reach a running
/// engine.
#[derive(Debug, Clone, Copy)]
pub struct IgqConfig {
    /// Cache size `C`: maximum number of cached query graphs (paper default
    /// for AIDS/PDBS experiments: 500).
    pub cache_capacity: usize,
    /// Query window size `W ≤ C`: maintenance batch size (paper default:
    /// 100).
    pub window: usize,
    /// Path-feature configuration for the query indexes (`Isub`/`Isuper`).
    /// Matches the dataset methods' default (≤ 4 edges).
    pub path_config: PathConfig,
    /// Label-universe size `L` for the replacement policy's cost model.
    /// `0` = derive from the dataset at engine construction.
    pub label_universe: usize,
    /// Run the two query-index probes on separate threads, as in the
    /// paper's three-thread pipeline (Fig. 6). With `false` the probes run
    /// inline, which is usually faster for query-sized graphs but is kept
    /// switchable for the `igq_overhead` ablation bench.
    ///
    /// Concurrency caveat: in the synchronous maintenance modes the
    /// three-thread pipeline runs while holding the engine's state lock
    /// (the probe threads borrow the live indexes from its guard), so the
    /// base filter — otherwise lock-free — serializes concurrent callers.
    /// On a shared handle prefer `false`, or pair `true` with
    /// [`MaintenanceMode::Background`], whose probes read lock-free
    /// snapshots.
    pub parallel_probes: bool,
    /// Cache-replacement policy (default: the paper's utility policy;
    /// alternatives exist for the `replacement` ablation bench).
    pub policy: ReplacementPolicy,
    /// Window-maintenance strategy for the query indexes (default:
    /// incremental delta maintenance; `ShadowRebuild` reproduces the
    /// paper's rebuild-every-window behavior for ablation;
    /// [`MaintenanceMode::Background`] moves delta application onto a
    /// dedicated thread behind published snapshots).
    pub maintenance: MaintenanceMode,
    /// Bounded-lag backpressure for [`MaintenanceMode::Background`]: the
    /// maximum number of *submitted* window deltas that may be unapplied
    /// before a window-flipping query blocks on the maintenance thread.
    /// With a single query thread, probed snapshots therefore never trail
    /// the cache by more than this many windows. Under concurrent
    /// submitters the bound covers submitted jobs only: up to one
    /// captured-but-unsubmitted delta per concurrently flipping thread
    /// can additionally be parked in the engine's outbox, so the cache
    /// may transiently lead the snapshot by `max_lag_windows` plus the
    /// number of in-flight flippers. Staleness in either form only costs
    /// pruning power, never exactness (probe hits are revalidated against
    /// the live cache). Must be ≥ 1 ([`ConfigError::ZeroLagBound`]);
    /// ignored by the synchronous modes.
    pub max_lag_windows: usize,
    /// Detect exact repeats (optimal case 1) via a canonical-code hash map
    /// before any filtering or index probing. An engineering fast path on
    /// top of the paper's design: repeats cost one canonicalization instead
    /// of two index probes with isomorphism tests. Soundness is unaffected
    /// (equal canonical codes ⇔ isomorphic); symmetric graphs whose
    /// canonicalization exceeds its budget simply fall back to the probe
    /// path.
    pub exact_fastpath: bool,
    /// Worker threads used by [`crate::QueryEngine::query_batch`] to fan a
    /// batch of queries across one shared engine. `0` (the default) means
    /// "use the machine's available parallelism"; `1` degenerates to a
    /// sequential loop.
    pub batch_threads: usize,
    /// Durability cadence for store-attached engines (see
    /// [`PersistenceConfig`]); inert without a store.
    pub persistence: PersistenceConfig,
    /// Number of state shards the engine's mutable state (query cache +
    /// `Isub`/`Isuper` pair) is partitioned into, routed by canonical-code
    /// hash. `1` (the default) keeps today's single-partition behavior
    /// bit-for-bit. With `N > 1` each shard has its own lock, its own
    /// background maintainer (under [`MaintenanceMode::Background`]), and
    /// its own WAL stream multiplexed into the one attached store; index
    /// probes scatter across shards and merge their candidates. Must be
    /// ≥ 1 ([`ConfigError::ZeroShards`]). Store-attached engines persist
    /// the shard count and refuse to reopen under a different one.
    pub shards: usize,
}

impl Default for IgqConfig {
    fn default() -> Self {
        IgqConfig {
            cache_capacity: 500,
            window: 100,
            path_config: PathConfig::default(),
            label_universe: 0,
            parallel_probes: false,
            policy: ReplacementPolicy::Utility,
            maintenance: MaintenanceMode::Incremental,
            max_lag_windows: 2,
            exact_fastpath: true,
            batch_threads: 0,
            persistence: PersistenceConfig::default(),
            shards: 1,
        }
    }
}

impl IgqConfig {
    /// A validating builder initialized with the paper defaults.
    pub fn builder() -> IgqConfigBuilder {
        IgqConfigBuilder {
            config: IgqConfig::default(),
        }
    }

    /// The paper's dense-dataset configuration (PPI/Synthetic experiments):
    /// `W = 20`, with the cache size chosen per figure (100/200/300).
    pub fn dense(cache_capacity: usize) -> Self {
        IgqConfig {
            cache_capacity,
            window: 20,
            ..Default::default()
        }
    }

    /// Checks the `1 ≤ W ≤ C` and `max_lag_windows ≥ 1` invariants,
    /// reporting the first violation. Engine construction calls this, so a
    /// hand-built struct literal gets the same scrutiny as a
    /// [`builder`](IgqConfig::builder) config.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.window > self.cache_capacity {
            return Err(ConfigError::WindowExceedsCapacity {
                window: self.window,
                cache_capacity: self.cache_capacity,
            });
        }
        if self.max_lag_windows == 0 {
            return Err(ConfigError::ZeroLagBound);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.persistence.checkpoint_every_windows == Some(0) {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        Ok(())
    }
}

/// Builder for [`IgqConfig`] whose [`build`](IgqConfigBuilder::build)
/// validates the result — the supported way to construct an engine config:
///
/// ```
/// use igq_core::{IgqConfig, MaintenanceMode};
///
/// let config = IgqConfig::builder()
///     .cache_capacity(100)
///     .window(10)
///     .maintenance(MaintenanceMode::Background)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.window, 10);
/// assert!(IgqConfig::builder().window(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct IgqConfigBuilder {
    config: IgqConfig,
}

impl IgqConfigBuilder {
    /// Sets the cache size `C` (see [`IgqConfig::cache_capacity`]).
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.config.cache_capacity = cache_capacity;
        self
    }

    /// Sets the window size `W` (see [`IgqConfig::window`]).
    pub fn window(mut self, window: usize) -> Self {
        self.config.window = window;
        self
    }

    /// Sets the path-feature configuration (see [`IgqConfig::path_config`]).
    pub fn path_config(mut self, path_config: PathConfig) -> Self {
        self.config.path_config = path_config;
        self
    }

    /// Sets the label-universe size (see [`IgqConfig::label_universe`]).
    pub fn label_universe(mut self, label_universe: usize) -> Self {
        self.config.label_universe = label_universe;
        self
    }

    /// Enables/disables threaded index probes (see
    /// [`IgqConfig::parallel_probes`]).
    pub fn parallel_probes(mut self, parallel_probes: bool) -> Self {
        self.config.parallel_probes = parallel_probes;
        self
    }

    /// Sets the cache-replacement policy (see [`IgqConfig::policy`]).
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the maintenance strategy (see [`IgqConfig::maintenance`]).
    pub fn maintenance(mut self, maintenance: MaintenanceMode) -> Self {
        self.config.maintenance = maintenance;
        self
    }

    /// Sets the background-maintenance lag bound (see
    /// [`IgqConfig::max_lag_windows`]).
    pub fn max_lag_windows(mut self, max_lag_windows: usize) -> Self {
        self.config.max_lag_windows = max_lag_windows;
        self
    }

    /// Enables/disables the exact-repeat fast path (see
    /// [`IgqConfig::exact_fastpath`]).
    pub fn exact_fastpath(mut self, exact_fastpath: bool) -> Self {
        self.config.exact_fastpath = exact_fastpath;
        self
    }

    /// Sets the batch fan-out width (see [`IgqConfig::batch_threads`]).
    pub fn batch_threads(mut self, batch_threads: usize) -> Self {
        self.config.batch_threads = batch_threads;
        self
    }

    /// Sets the durability cadence for store-attached engines (see
    /// [`IgqConfig::persistence`] and [`PersistenceConfig`]).
    pub fn persistence(mut self, persistence: PersistenceConfig) -> Self {
        self.config.persistence = persistence;
        self
    }

    /// Sets the state shard count (see [`IgqConfig::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<IgqConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = IgqConfig::default();
        assert_eq!(c.cache_capacity, 500);
        assert_eq!(c.window, 100);
        c.validate().expect("paper defaults are valid");
    }

    #[test]
    fn dense_preset() {
        let c = IgqConfig::dense(200);
        assert_eq!(c.cache_capacity, 200);
        assert_eq!(c.window, 20);
    }

    #[test]
    fn builder_round_trips_every_field() {
        let c = IgqConfig::builder()
            .cache_capacity(64)
            .window(8)
            .label_universe(7)
            .parallel_probes(true)
            .policy(ReplacementPolicy::Lru)
            .maintenance(MaintenanceMode::Background)
            .max_lag_windows(3)
            .exact_fastpath(false)
            .batch_threads(4)
            .shards(4)
            .build()
            .expect("valid");
        assert_eq!(c.cache_capacity, 64);
        assert_eq!(c.window, 8);
        assert_eq!(c.label_universe, 7);
        assert!(c.parallel_probes);
        assert_eq!(c.policy, ReplacementPolicy::Lru);
        assert_eq!(c.maintenance, MaintenanceMode::Background);
        assert_eq!(c.max_lag_windows, 3);
        assert!(!c.exact_fastpath);
        assert_eq!(c.batch_threads, 4);
        assert_eq!(c.shards, 4);
    }

    #[test]
    fn zero_shards_is_rejected_and_one_is_the_default() {
        assert_eq!(IgqConfig::default().shards, 1);
        assert_eq!(
            IgqConfig::builder().shards(0).build().unwrap_err(),
            ConfigError::ZeroShards
        );
    }

    #[test]
    fn zero_window_is_rejected() {
        assert_eq!(
            IgqConfig::builder().window(0).build().unwrap_err(),
            ConfigError::ZeroWindow
        );
    }

    #[test]
    fn oversized_window_is_rejected() {
        assert_eq!(
            IgqConfig::builder()
                .cache_capacity(10)
                .window(50)
                .build()
                .unwrap_err(),
            ConfigError::WindowExceedsCapacity {
                window: 50,
                cache_capacity: 10
            }
        );
    }

    #[test]
    fn persistence_cadence_validates_and_round_trips() {
        let c = IgqConfig::builder()
            .persistence(PersistenceConfig::every(3))
            .build()
            .expect("valid");
        assert_eq!(c.persistence.checkpoint_every_windows, Some(3));
        assert_eq!(c.persistence.codec, StoreCodec::Binary, "binary default");
        let manual = IgqConfig::builder()
            .persistence(PersistenceConfig::manual().with_codec(StoreCodec::Json))
            .build()
            .expect("manual is valid");
        assert_eq!(manual.persistence.checkpoint_every_windows, None);
        assert_eq!(manual.persistence.codec, StoreCodec::Json);
        assert_eq!(StoreCodec::Json.name(), "json");
        assert_eq!(StoreCodec::Binary.name(), "binary");
        assert_eq!(
            IgqConfig::builder()
                .persistence(PersistenceConfig::every(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroCheckpointInterval
        );
        assert!(ConfigError::ZeroCheckpointInterval
            .to_string()
            .contains("checkpoint_every_windows"));
    }

    #[test]
    fn zero_lag_bound_is_rejected_in_every_mode() {
        // Validated uniformly so switching a stored config to Background
        // later cannot introduce a latent deadlock.
        assert_eq!(
            IgqConfig::builder().max_lag_windows(0).build().unwrap_err(),
            ConfigError::ZeroLagBound
        );
    }

    #[test]
    fn errors_render_helpfully() {
        let e = ConfigError::WindowExceedsCapacity {
            window: 50,
            cache_capacity: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("50") && msg.contains("10"), "{msg}");
        assert!(ConfigError::ZeroWindow.to_string().contains("window"));
        assert!(ConfigError::ZeroLagBound
            .to_string()
            .contains("max_lag_windows"));
        assert!(ConfigError::ZeroShards.to_string().contains("shards"));
    }

    #[test]
    fn mode_names() {
        assert_eq!(MaintenanceMode::Incremental.name(), "incremental");
        assert_eq!(MaintenanceMode::ShadowRebuild.name(), "shadow-rebuild");
        assert_eq!(MaintenanceMode::Background.name(), "background");
    }
}
