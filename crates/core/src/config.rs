//! iGQ engine configuration.

use crate::policy::ReplacementPolicy;
use igq_features::PathConfig;

/// How the query indexes are maintained at window boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Delta maintenance: evicted slots are removed from `Isub`/`Isuper`
    /// and admitted slots inserted, costing O(window delta) postings.
    #[default]
    Incremental,
    /// The paper's Section 5.2 "shadow indexing": rebuild both query
    /// indexes from scratch over the whole cache every window. Kept for
    /// ablation; costs O(cache) per window.
    ShadowRebuild,
    /// Off-thread delta maintenance: window deltas are queued to a
    /// dedicated maintenance thread which applies them to a shadow copy of
    /// the query indexes and atomically publishes immutable snapshots;
    /// queries probe the latest published snapshot. The query thread's
    /// window-boundary cost drops to eviction/admission plus one channel
    /// send. Snapshots may lag the cache by up to
    /// [`IgqConfig::max_lag_windows`] windows (a query blocks rather than
    /// exceed that bound); staleness only weakens pruning — answers stay
    /// exact because stale probe hits are revalidated against the live
    /// cache.
    Background,
}

impl MaintenanceMode {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MaintenanceMode::Incremental => "incremental",
            MaintenanceMode::ShadowRebuild => "shadow-rebuild",
            MaintenanceMode::Background => "background",
        }
    }
}

/// Tunables of the iGQ engine (paper Sections 5 and 7.1).
#[derive(Debug, Clone, Copy)]
pub struct IgqConfig {
    /// Cache size `C`: maximum number of cached query graphs (paper default
    /// for AIDS/PDBS experiments: 500).
    pub cache_capacity: usize,
    /// Query window size `W ≤ C`: maintenance batch size (paper default:
    /// 100).
    pub window: usize,
    /// Path-feature configuration for the query indexes (`Isub`/`Isuper`).
    /// Matches the dataset methods' default (≤ 4 edges).
    pub path_config: PathConfig,
    /// Label-universe size `L` for the replacement policy's cost model.
    /// `0` = derive from the dataset at engine construction.
    pub label_universe: usize,
    /// Run the two query-index probes on separate threads, as in the
    /// paper's three-thread pipeline (Fig. 6). With `false` the probes run
    /// inline, which is usually faster for query-sized graphs but is kept
    /// switchable for the `igq_overhead` ablation bench.
    pub parallel_probes: bool,
    /// Cache-replacement policy (default: the paper's utility policy;
    /// alternatives exist for the `replacement` ablation bench).
    pub policy: ReplacementPolicy,
    /// Window-maintenance strategy for the query indexes (default:
    /// incremental delta maintenance; `ShadowRebuild` reproduces the
    /// paper's rebuild-every-window behavior for ablation;
    /// [`MaintenanceMode::Background`] moves delta application onto a
    /// dedicated thread behind published snapshots).
    pub maintenance: MaintenanceMode,
    /// Bounded-lag backpressure for [`MaintenanceMode::Background`]: the
    /// maximum number of window deltas that may be queued-or-in-flight
    /// before a window-flipping query blocks on the maintenance thread.
    /// Probed snapshots therefore never trail the cache by more than this
    /// many windows. Clamped to ≥ 1 by [`IgqConfig::normalized`]; ignored
    /// by the synchronous modes.
    pub max_lag_windows: usize,
    /// Detect exact repeats (optimal case 1) via a canonical-code hash map
    /// before any filtering or index probing. An engineering fast path on
    /// top of the paper's design: repeats cost one canonicalization instead
    /// of two index probes with isomorphism tests. Soundness is unaffected
    /// (equal canonical codes ⇔ isomorphic); symmetric graphs whose
    /// canonicalization exceeds its budget simply fall back to the probe
    /// path.
    pub exact_fastpath: bool,
}

impl Default for IgqConfig {
    fn default() -> Self {
        IgqConfig {
            cache_capacity: 500,
            window: 100,
            path_config: PathConfig::default(),
            label_universe: 0,
            parallel_probes: false,
            policy: ReplacementPolicy::Utility,
            maintenance: MaintenanceMode::Incremental,
            max_lag_windows: 2,
            exact_fastpath: true,
        }
    }
}

impl IgqConfig {
    /// The paper's dense-dataset configuration (PPI/Synthetic experiments):
    /// `W = 20`, with the cache size chosen per figure (100/200/300).
    pub fn dense(cache_capacity: usize) -> Self {
        IgqConfig {
            cache_capacity,
            window: 20,
            ..Default::default()
        }
    }

    /// Validates the `W ≤ C` invariant (clamping the window if needed) and
    /// the `max_lag_windows ≥ 1` invariant of the background maintainer.
    pub fn normalized(mut self) -> Self {
        if self.window == 0 {
            self.window = 1;
        }
        if self.window > self.cache_capacity {
            self.window = self.cache_capacity.max(1);
        }
        if self.max_lag_windows == 0 {
            self.max_lag_windows = 1;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = IgqConfig::default();
        assert_eq!(c.cache_capacity, 500);
        assert_eq!(c.window, 100);
    }

    #[test]
    fn dense_preset() {
        let c = IgqConfig::dense(200);
        assert_eq!(c.cache_capacity, 200);
        assert_eq!(c.window, 20);
    }

    #[test]
    fn normalization_clamps_window() {
        let c = IgqConfig {
            cache_capacity: 10,
            window: 50,
            ..Default::default()
        }
        .normalized();
        assert_eq!(c.window, 10);
        let c = IgqConfig {
            window: 0,
            ..Default::default()
        }
        .normalized();
        assert_eq!(c.window, 1);
    }

    #[test]
    fn normalization_clamps_lag_bound() {
        let c = IgqConfig {
            max_lag_windows: 0,
            ..Default::default()
        }
        .normalized();
        assert_eq!(c.max_lag_windows, 1);
    }

    #[test]
    fn mode_names() {
        assert_eq!(MaintenanceMode::Incremental.name(), "incremental");
        assert_eq!(MaintenanceMode::ShadowRebuild.name(), "shadow-rebuild");
        assert_eq!(MaintenanceMode::Background.name(), "background");
    }
}
