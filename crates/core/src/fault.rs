//! Fault injection for the storage layer: [`FaultyStore`] wraps any
//! [`CacheStore`] and injects I/O errors, torn writes, short reads, and
//! slow fsyncs — **scripted** (fail the next N operations of a kind) or
//! **seeded** (each operation fails with a configured probability from a
//! deterministic PRNG), so chaos runs reproduce exactly from a seed.
//!
//! The wrapper is a test/bench harness, but it lives in the library (not
//! behind `#[cfg(test)]`) so the integration suite, `bench_robustness`,
//! and downstream chaos tooling all drive one implementation. It is
//! correct-by-construction with respect to the engine's crash model:
//! an injected torn write really does leave a prefix of the record on
//! the inner store, exactly what a power loss mid-`append_wal` leaves on
//! disk, so recovery and degraded-mode behavior are exercised against
//! the documented failure shapes rather than a simulation of them.
//!
//! All knobs are atomics: tests flip faults on and off at runtime while
//! an engine is serving from other threads.

use crate::persist::{CacheStore, PersistError};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which storage operation a fault knob targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// [`CacheStore::append_wal`].
    Append,
    /// [`CacheStore::save_checkpoint`].
    SaveCheckpoint,
    /// [`CacheStore::load_wal`] and [`CacheStore::load_checkpoint`].
    Load,
    /// [`CacheStore::replace_wal`].
    ReplaceWal,
}

/// Counters of injected faults, per kind (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations failed with an injected I/O error.
    pub io_errors: u64,
    /// Failed appends that first wrote a prefix of the record (torn
    /// writes).
    pub torn_writes: u64,
    /// Reads returned truncated (short reads).
    pub short_reads: u64,
    /// Appends delayed by the slow-fsync knob.
    pub slow_fsyncs: u64,
}

/// A [`CacheStore`] wrapper that injects storage faults on the way to an
/// inner store. Healthy (pass-through) until a knob is set; see the
/// [module docs](self).
pub struct FaultyStore {
    inner: Arc<dyn CacheStore>,
    /// Fail the next N calls, per operation kind (scripted mode).
    fail_next: [AtomicU64; 4],
    /// Probability (in parts per million) that any operation fails
    /// (seeded mode); 0 = off.
    fail_ppm: AtomicU64,
    /// xorshift64* state for the seeded mode; never 0.
    rng: AtomicU64,
    /// On an injected append failure, first write this percentage
    /// (0–100) of the record to the inner store — a torn write, exactly
    /// the prefix a crash mid-append leaves.
    torn_write_pct: AtomicU64,
    /// Truncate WAL reads by this many trailing bytes (short read);
    /// 0 = off. The engine must treat the result as a torn tail, never
    /// return a wrong answer.
    short_read_bytes: AtomicU64,
    /// Sleep this long before every append (slow fsync); `None` = off.
    slow_fsync: Mutex<Option<Duration>>,
    injected: Mutex<FaultStats>,
}

impl fmt::Debug for FaultyStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyStore")
            .field("inner", &self.inner)
            .field("fail_ppm", &self.fail_ppm.load(Ordering::Relaxed))
            .field("injected", &*self.injected.lock())
            .finish_non_exhaustive()
    }
}

impl FaultyStore {
    /// Wraps `inner` with every fault disabled (pure pass-through).
    pub fn new(inner: Arc<dyn CacheStore>) -> Arc<FaultyStore> {
        Arc::new(FaultyStore {
            inner,
            fail_next: Default::default(),
            fail_ppm: AtomicU64::new(0),
            rng: AtomicU64::new(0x9E3779B97F4A7C15),
            torn_write_pct: AtomicU64::new(0),
            short_read_bytes: AtomicU64::new(0),
            slow_fsync: Mutex::new(None),
            injected: Mutex::new(FaultStats::default()),
        })
    }

    /// Scripted mode: fail the next `n` operations of kind `op` with an
    /// injected I/O error (counts down; stacks with the seeded mode).
    pub fn fail_next(&self, op: FaultOp, n: u64) {
        self.fail_next[op as usize].store(n, Ordering::Relaxed);
    }

    /// Seeded mode: every operation independently fails with probability
    /// `p` (clamped to `[0, 1]`), drawn from a deterministic xorshift64*
    /// stream seeded by `seed` — the same seed replays the same fault
    /// schedule for the same operation sequence.
    pub fn seed_faults(&self, seed: u64, p: f64) {
        self.rng.store(seed.max(1), Ordering::Relaxed);
        let ppm = (p.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        self.fail_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Torn writes: when an append fails (scripted or seeded), first
    /// write `pct`% (0–100) of the record to the inner store, exactly
    /// the prefix a crash mid-append leaves.
    pub fn tear_writes(&self, pct: u64) {
        self.torn_write_pct.store(pct.min(100), Ordering::Relaxed);
    }

    /// Short reads: truncate every WAL read by `bytes` trailing bytes
    /// (0 disables). Recovery must see a torn tail, never corruption of
    /// an earlier record.
    pub fn shorten_reads(&self, bytes: u64) {
        self.short_read_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Slow fsync: delay every append by `d` (`None` disables).
    pub fn slow_fsync(&self, d: Option<Duration>) {
        *self.slow_fsync.lock() = d;
    }

    /// Clears every fault knob (the store heals); injected-fault
    /// counters are preserved.
    pub fn heal(&self) {
        for n in &self.fail_next {
            n.store(0, Ordering::Relaxed);
        }
        self.fail_ppm.store(0, Ordering::Relaxed);
        self.torn_write_pct.store(0, Ordering::Relaxed);
        self.short_read_bytes.store(0, Ordering::Relaxed);
        *self.slow_fsync.lock() = None;
    }

    /// Cumulative injected-fault counters.
    pub fn injected(&self) -> FaultStats {
        *self.injected.lock()
    }

    /// Draws the next value from the seeded stream (xorshift64*).
    fn next_rand(&self) -> u64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// `true` when this call of `op` should fail: a scripted count is
    /// pending, or the seeded coin lands on failure.
    fn should_fail(&self, op: FaultOp) -> bool {
        let pending = &self.fail_next[op as usize];
        if pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            return true;
        }
        let ppm = self.fail_ppm.load(Ordering::Relaxed);
        ppm > 0 && self.next_rand() % 1_000_000 < ppm
    }

    fn injected_error(&self, what: &str) -> PersistError {
        self.injected.lock().io_errors += 1;
        PersistError::Io(std::io::Error::other(format!("injected fault: {what}")))
    }
}

impl CacheStore for FaultyStore {
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, PersistError> {
        if self.should_fail(FaultOp::Load) {
            return Err(self.injected_error("checkpoint load"));
        }
        self.inner.load_checkpoint()
    }

    fn save_checkpoint(&self, bytes: &[u8]) -> Result<(), PersistError> {
        if self.should_fail(FaultOp::SaveCheckpoint) {
            // Checkpoint saves are atomic by contract (temp + rename), so
            // an injected failure leaves the old checkpoint in place —
            // no torn variant exists for this operation.
            return Err(self.injected_error("checkpoint save"));
        }
        self.inner.save_checkpoint(bytes)
    }

    fn load_wal(&self) -> Result<Vec<u8>, PersistError> {
        if self.should_fail(FaultOp::Load) {
            return Err(self.injected_error("WAL load"));
        }
        let mut bytes = self.inner.load_wal()?;
        let short = self.short_read_bytes.load(Ordering::Relaxed) as usize;
        if short > 0 && !bytes.is_empty() {
            bytes.truncate(bytes.len().saturating_sub(short));
            self.injected.lock().short_reads += 1;
        }
        Ok(bytes)
    }

    fn append_wal(&self, record: &[u8]) -> Result<(), PersistError> {
        if let Some(d) = *self.slow_fsync.lock() {
            self.injected.lock().slow_fsyncs += 1;
            std::thread::sleep(d);
        }
        if self.should_fail(FaultOp::Append) {
            let pct = self.torn_write_pct.load(Ordering::Relaxed);
            if pct > 0 {
                // The torn prefix really lands on the inner store: the
                // on-disk log now ends mid-record, exactly like a crash
                // between `write_all` and `sync_all`.
                let cut = (record.len() as u64 * pct / 100) as usize;
                if cut > 0 && self.inner.append_wal(&record[..cut]).is_ok() {
                    self.injected.lock().torn_writes += 1;
                }
            }
            return Err(self.injected_error("WAL append"));
        }
        self.inner.append_wal(record)
    }

    fn replace_wal(&self, bytes: &[u8]) -> Result<(), PersistError> {
        if self.should_fail(FaultOp::ReplaceWal) {
            // Replacement is atomic by contract: a failure leaves the old
            // log bytes (including any torn tail) untouched.
            return Err(self.injected_error("WAL replace"));
        }
        self.inner.replace_wal(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::MemStore;

    fn wrapped() -> (Arc<FaultyStore>, Arc<MemStore>) {
        let mem = Arc::new(MemStore::default());
        (FaultyStore::new(mem.clone()), mem)
    }

    #[test]
    fn passthrough_when_healthy() {
        let (store, _mem) = wrapped();
        store.append_wal(b"abc").unwrap();
        store.append_wal(b"def").unwrap();
        assert_eq!(store.load_wal().unwrap(), b"abcdef");
        store.save_checkpoint(b"ckpt").unwrap();
        assert_eq!(store.load_checkpoint().unwrap().unwrap(), b"ckpt");
        store.replace_wal(b"x").unwrap();
        assert_eq!(store.load_wal().unwrap(), b"x");
        assert_eq!(store.injected(), FaultStats::default());
    }

    #[test]
    fn scripted_failures_count_down() {
        let (store, _mem) = wrapped();
        store.fail_next(FaultOp::Append, 2);
        assert!(store.append_wal(b"a").is_err());
        assert!(store.append_wal(b"b").is_err());
        store.append_wal(b"c").unwrap();
        assert_eq!(store.load_wal().unwrap(), b"c");
        assert_eq!(store.injected().io_errors, 2);
    }

    #[test]
    fn torn_write_leaves_a_prefix() {
        let (store, mem) = wrapped();
        store.append_wal(b"intact!!").unwrap();
        store.tear_writes(50);
        store.fail_next(FaultOp::Append, 1);
        assert!(store.append_wal(b"torntorn").is_err());
        // Half of the failed record really landed after the intact one.
        assert_eq!(mem.load_wal().unwrap(), b"intact!!torn");
        assert_eq!(store.injected().torn_writes, 1);
    }

    #[test]
    fn short_reads_truncate_the_tail() {
        let (store, _mem) = wrapped();
        store.append_wal(b"0123456789").unwrap();
        store.shorten_reads(4);
        assert_eq!(store.load_wal().unwrap(), b"012345");
        store.heal();
        assert_eq!(store.load_wal().unwrap(), b"0123456789");
        assert_eq!(store.injected().short_reads, 1);
    }

    #[test]
    fn seeded_faults_are_deterministic() {
        let run = |seed| {
            let (store, _mem) = wrapped();
            store.seed_faults(seed, 0.3);
            (0..64)
                .map(|_| store.append_wal(b"r").is_err())
                .collect::<Vec<_>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must replay the same schedule");
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f));
        assert_ne!(a, run(43), "different seeds should diverge");
    }

    #[test]
    fn heal_restores_passthrough() {
        let (store, _mem) = wrapped();
        store.seed_faults(7, 1.0);
        assert!(store.append_wal(b"a").is_err());
        store.heal();
        store.append_wal(b"b").unwrap();
        assert_eq!(store.load_wal().unwrap(), b"b");
    }
}
