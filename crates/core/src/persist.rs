//! Durable engine state: the [`CacheStore`] storage abstraction, the
//! versioned checkpoint + window-delta write-ahead log (WAL) encoding, and
//! the typed [`PersistError`] the whole persistence surface reports.
//!
//! # Why
//!
//! The paper's central asset is the *accumulated* query cache and its
//! `Isub`/`Isuper` indexes; losing them on restart forfeits exactly the
//! work iGQ exists to amortize. This module makes durability part of the
//! engine API: [`crate::Engine::open`] recovers a warm engine from the
//! last checkpoint plus the WAL tail instead of rebuilding from scratch,
//! and [`crate::Engine::checkpoint`] (or the config-driven auto-checkpoint,
//! [`crate::config::PersistenceConfig`]) writes new recovery points.
//!
//! # On-disk layout
//!
//! A [`CacheStore`] holds two logical files:
//!
//! * **Checkpoint** — one self-contained snapshot of the engine's durable
//!   state: every cached entry (graph, sorted answers, WL signature,
//!   canonical code, replacement metadata, and its enumerated path-feature
//!   multiset so recovery can rebuild both query indexes *without*
//!   re-enumerating or re-canonicalizing anything), the pending admission
//!   window, the cache's free-slot list and maintenance round, and the
//!   flip sequence number the snapshot covers. The byte format is a
//!   header line `IGQCKPT1 <fnv64-hex> <len>` followed by a JSON payload;
//!   the checksum covers the payload. [`DirStore`] writes it via
//!   temp-file + atomic rename, so a crashed checkpoint can never replace
//!   a good one with a torn file.
//! * **WAL** — an append-only log of window flips. Each record is one
//!   line, `R <fnv64-hex> <len> <json>`, carrying the flip's sequence
//!   number, the evicted slots, the admitted entries (graph + answers +
//!   signature + code), and the post-flip replacement metadata of every
//!   resident. The first line is a header record (`H ...`) binding the
//!   log to a config/dataset fingerprint pair. Records are appended by
//!   the engine's outbox drain — off the engine's state lock — in flip
//!   order.
//!
//! # Recovery protocol
//!
//! [`crate::Engine::open`] loads the checkpoint (if any), verifies its
//! version, checksum, and config/dataset fingerprints, then replays every
//! WAL record with `seq` greater than the checkpoint's: evictions and
//! admissions are re-applied to the cache **as recorded** (the replacement
//! policy is not re-run), both query indexes are updated incrementally,
//! and the final record's metadata table restores the replacement state.
//! A torn *final* WAL record — the signature of a crash mid-append — is
//! truncated with a warning; any other inconsistency (mid-log corruption,
//! checksum or fingerprint mismatch, a sequence gap) is a typed
//! [`PersistError`], never a silent fallback. After recovery the WAL is
//! compacted to exactly the replayed tail.
//!
//! # Equivalence guarantee
//!
//! Recovery restores the complete decision-relevant state as of the last
//! persisted flip: cache contents *and* slot geometry (free-list order,
//! maintenance round — both feed the replacement policy), replacement
//! metadata, pending window, and index postings. An engine recovered at a
//! flip boundary is therefore observationally identical to one that never
//! restarted — the property `tests/persistence.rs` establishes with a
//! randomized proptest across all maintenance modes and both query
//! directions. Queries processed *after* the last flip and the last
//! explicit checkpoint are the durability loss window.

use crate::cache::{CacheEntry, WindowEntry};
use crate::config::ConfigError;
use crate::metadata::GraphMeta;
use igq_features::LabelSeq;
use igq_graph::canon::{CanonicalCode, GraphSignature};
use igq_graph::{Graph, GraphId, GraphStore, LabelId};
use igq_iso::LogValue;
use parking_lot::Mutex;
use serde_json::{json, FromJson, ToJson, Value};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u64 = 1;
/// WAL format version this build writes and reads.
pub const WAL_VERSION: u64 = 1;

const CKPT_MAGIC: &str = "IGQCKPT1";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why persistence failed: storage I/O, a damaged artifact, or an artifact
/// that belongs to a different engine configuration or dataset.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying storage failed (filesystem error, permission, ...).
    Io(std::io::Error),
    /// The artifact is structurally damaged in a way a torn final WAL
    /// record cannot explain: unparseable JSON, a mid-log torn record, a
    /// sequence gap, or internally inconsistent state.
    Corrupt(String),
    /// A checksum did not match its payload.
    Checksum {
        /// Checksum stored in the artifact header.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// The artifact was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the artifact.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// The artifact was produced under a different engine configuration
    /// (cache capacity, window, path features, policy, or label universe).
    ConfigMismatch {
        /// Fingerprint of the opening engine's configuration.
        expected: u64,
        /// Fingerprint stored in the artifact.
        found: u64,
    },
    /// The artifact's answers belong to a different dataset; importing
    /// them would violate the engine's exactness guarantees.
    DatasetMismatch {
        /// Fingerprint of the opening engine's dataset.
        expected: u64,
        /// Fingerprint stored in the artifact.
        found: u64,
    },
    /// The artifact was produced under a different state shard count.
    /// Slot routing is shard-count-dependent, so a store written with one
    /// `shards` setting cannot be reopened under another.
    ShardMismatch {
        /// Shard count of the opening engine's configuration.
        expected: usize,
        /// Shard count stored in the artifact.
        found: usize,
    },
    /// The engine configuration itself was invalid (persistence never
    /// started).
    Config(ConfigError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "storage i/o error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt persisted state: {m}"),
            PersistError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: header says {expected:016x}, payload hashes to {found:016x}"
            ),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build supports {supported})"
            ),
            PersistError::ConfigMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch: engine {expected:016x} vs stored {found:016x} \
                 (query direction, cache capacity, window, path features, policy, and label \
                 universe must match)"
            ),
            PersistError::DatasetMismatch { expected, found } => write!(
                f,
                "dataset fingerprint mismatch: engine {expected:016x} vs stored {found:016x} \
                 (persisted answers are only valid against the dataset that produced them)"
            ),
            PersistError::ShardMismatch { expected, found } => write!(
                f,
                "shard count mismatch: engine configured with {expected} shard(s) but the store \
                 was written with {found} (reopen with the original shard count, or rebuild)"
            ),
            PersistError::Config(e) => write!(f, "invalid engine configuration: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl From<ConfigError> for PersistError {
    fn from(e: ConfigError) -> PersistError {
        PersistError::Config(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> PersistError {
        PersistError::Corrupt(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// The storage abstraction
// ---------------------------------------------------------------------------

/// Storage backend for one engine's durable state: a single checkpoint
/// slot plus an append-only WAL.
///
/// Implementations must make [`save_checkpoint`](CacheStore::save_checkpoint)
/// and [`replace_wal`](CacheStore::replace_wal) *atomic* with respect to
/// crashes (readers see either the old or the new bytes, never a mix) —
/// [`DirStore`] uses temp-file + rename. [`append_wal`] only needs ordinary
/// append semantics; a crash mid-append produces a torn final record,
/// which recovery tolerates by design.
///
/// [`append_wal`]: CacheStore::append_wal
pub trait CacheStore: Send + Sync + fmt::Debug {
    /// Reads the current checkpoint, or `None` when none was ever saved.
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, PersistError>;

    /// Atomically replaces the checkpoint with `bytes`.
    fn save_checkpoint(&self, bytes: &[u8]) -> Result<(), PersistError>;

    /// Reads the whole WAL (empty vector when none exists).
    fn load_wal(&self) -> Result<Vec<u8>, PersistError>;

    /// Appends one encoded record (including its trailing newline).
    fn append_wal(&self, record: &[u8]) -> Result<(), PersistError>;

    /// Atomically replaces the whole WAL (compaction after a checkpoint
    /// or recovery).
    fn replace_wal(&self, bytes: &[u8]) -> Result<(), PersistError>;
}

/// Filesystem-backed [`CacheStore`]: a directory holding `checkpoint.igq`
/// and `wal.igq`. Checkpoint and WAL replacement go through a sibling
/// temp file + `rename` (with the file and its directory fsynced), so
/// crashes never leave a half-written artifact in place; WAL appends are
/// fsynced individually, so a flip is durable against power loss once
/// its drain returns.
///
/// **Single writer**: a store directory belongs to one live engine at a
/// time. Opening the same directory from a second engine (or process)
/// while the first is appending interleaves compactions with appends and
/// will be detected as corruption on the next recovery — coordinate
/// externally if multiple processes share a directory.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<DirStore, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(DirStore { dir })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.igq")
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.igq")
    }

    fn write_atomic(&self, target: &Path, bytes: &[u8]) -> Result<(), PersistError> {
        let tmp = target.with_extension("igq.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, target)?;
        // Make the rename itself durable: fsync the directory entry (best
        // effort — not every filesystem supports opening a directory).
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

impl CacheStore for DirStore {
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, PersistError> {
        match fs::read(self.checkpoint_path()) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn save_checkpoint(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.write_atomic(&self.checkpoint_path(), bytes)
    }

    fn load_wal(&self) -> Result<Vec<u8>, PersistError> {
        match fs::read(self.wal_path()) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    fn append_wal(&self, record: &[u8]) -> Result<(), PersistError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())?;
        f.write_all(record)?;
        // One fsync per window flip (appends are per-flip, not per-query):
        // the flip is durable against power loss once the drain returns.
        f.sync_all()?;
        Ok(())
    }

    fn replace_wal(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.write_atomic(&self.wal_path(), bytes)
    }
}

/// In-memory [`CacheStore`] for tests and benchmarks: the "filesystem" is
/// two byte buffers behind a mutex. Share one across "sessions" via
/// `Arc<MemStore>`, or [`fork`](MemStore::fork) an independent copy to
/// simulate a restart from a point-in-time snapshot.
#[derive(Debug, Default)]
pub struct MemStore {
    inner: Mutex<MemStoreInner>,
}

#[derive(Debug, Default)]
struct MemStoreInner {
    checkpoint: Option<Vec<u8>>,
    wal: Vec<u8>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// An independent deep copy of the current contents (a point-in-time
    /// "disk image" — useful for opening a second engine from the state a
    /// first engine had at this moment).
    pub fn fork(&self) -> MemStore {
        let inner = self.inner.lock();
        MemStore {
            inner: Mutex::new(MemStoreInner {
                checkpoint: inner.checkpoint.clone(),
                wal: inner.wal.clone(),
            }),
        }
    }

    /// Size of the current checkpoint in bytes (0 when none).
    pub fn checkpoint_bytes(&self) -> usize {
        self.inner.lock().checkpoint.as_ref().map_or(0, Vec::len)
    }

    /// Size of the current WAL in bytes.
    pub fn wal_bytes(&self) -> usize {
        self.inner.lock().wal.len()
    }

    /// Overwrites the checkpoint bytes directly (corruption-injection
    /// tests).
    pub fn set_checkpoint(&self, bytes: Option<Vec<u8>>) {
        self.inner.lock().checkpoint = bytes;
    }

    /// Returns a copy of the raw WAL bytes (corruption-injection tests).
    pub fn raw_wal(&self) -> Vec<u8> {
        self.inner.lock().wal.clone()
    }

    /// Overwrites the WAL bytes directly (corruption-injection tests).
    pub fn set_wal(&self, bytes: Vec<u8>) {
        self.inner.lock().wal = bytes;
    }
}

impl CacheStore for MemStore {
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, PersistError> {
        Ok(self.inner.lock().checkpoint.clone())
    }

    fn save_checkpoint(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.inner.lock().checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn load_wal(&self) -> Result<Vec<u8>, PersistError> {
        Ok(self.inner.lock().wal.clone())
    }

    fn append_wal(&self, record: &[u8]) -> Result<(), PersistError> {
        self.inner.lock().wal.extend_from_slice(record);
        Ok(())
    }

    fn replace_wal(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.inner.lock().wal = bytes.to_vec();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fingerprints and checksums
// ---------------------------------------------------------------------------

/// FNV-1a over a byte slice — the artifact checksum. Not cryptographic;
/// it guards against truncation and bit rot, not adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv_fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the config fields that determine whether persisted
/// state is compatible: the query **direction** (a subgraph engine's
/// cached answer sets mean the opposite of a supergraph engine's), cache
/// geometry (`C`, `W`), the path-feature family both query indexes are
/// built from, the replacement policy (whose counters the artifacts
/// carry), and the configured label universe (the cost model's scale).
/// Deliberately *excludes* runtime tunables that do not change the
/// durable state's meaning — maintenance mode, lag bound, probe
/// threading, batch width, fast-path toggle, and the checkpoint cadence —
/// so a deployment can change those across restarts without invalidating
/// its store.
pub(crate) fn config_fingerprint(config: &crate::IgqConfig, direction: &str) -> u64 {
    let mut h = fnv1a64(b"igq-config-v1");
    h = fnv_fold(h, fnv1a64(direction.as_bytes()));
    h = fnv_fold(h, config.cache_capacity as u64);
    h = fnv_fold(h, config.window as u64);
    h = fnv_fold(h, config.path_config.max_len as u64);
    h = fnv_fold(h, config.path_config.include_vertices as u64);
    h = fnv_fold(h, config.path_config.budget);
    h = fnv_fold(h, fnv1a64(config.policy.name().as_bytes()));
    h = fnv_fold(h, config.label_universe as u64);
    h
}

/// Structural fingerprint of a dataset: graph count plus, per graph, the
/// vertex labels and every edge (endpoints and edge label). Persisted
/// answers are graph *ids* whose correctness depends on the exact graph
/// structure, so any edit — a different file, regenerated data, a
/// reordered store, a single rewired or relabeled edge — must change the
/// fingerprint. One O(V + E) pass at engine open.
pub(crate) fn dataset_fingerprint(store: &GraphStore) -> u64 {
    let mut h = fnv1a64(b"igq-dataset-v1");
    h = fnv_fold(h, store.len() as u64);
    for (_, g) in store.iter() {
        h = fnv_fold(h, g.vertex_count() as u64);
        h = fnv_fold(h, g.edge_count() as u64);
        // Vertex labels folded positionally (a sum would let label
        // permutations collide, and answers are not permutation-safe).
        for v in g.vertices() {
            h = fnv_fold(h, g.label(v).raw() as u64);
        }
        if g.has_edge_labels() {
            for ((u, v), l) in g.labeled_edges() {
                h = fnv_fold(h, ((u.raw() as u64) << 32) | v.raw() as u64);
                h = fnv_fold(h, l.raw() as u64);
            }
        } else {
            for &(u, v) in g.edges() {
                h = fnv_fold(h, ((u.raw() as u64) << 32) | v.raw() as u64);
            }
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Durable state model (crate-internal)
// ---------------------------------------------------------------------------

/// One cached slot's enumerated path features, persisted so recovery can
/// rebuild the query indexes without re-enumerating any graph.
#[derive(Debug, Clone)]
pub(crate) struct SlotFeatureSet {
    /// Distinct canonical label sequences with occurrence counts.
    pub counts: Vec<(LabelSeq, u32)>,
    /// Deepest exhaustively enumerated path length.
    pub complete_len: usize,
}

/// One persisted cache entry: the slot it occupies plus everything the
/// live [`CacheEntry`] holds, with its feature set alongside.
#[derive(Debug, Clone)]
pub(crate) struct PersistedEntry {
    pub slot: usize,
    pub entry: CacheEntry,
    /// `None` in WAL records (recovery re-enumerates the short tail);
    /// always present in checkpoints.
    pub features: Option<SlotFeatureSet>,
}

/// The checkpoint's decoded payload.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointData {
    /// Window flips covered by this snapshot; WAL records with `seq`
    /// beyond it are the replay tail.
    pub seq: u64,
    /// Fingerprint of the writing engine's config.
    pub config_fp: u64,
    /// Fingerprint of the writing engine's dataset.
    pub dataset_fp: u64,
    /// Resolved label-universe size of the writing engine's cost model.
    pub labels: usize,
    /// The cache's maintenance-round counter.
    pub round: u64,
    /// Size of the cache's slot table.
    pub slot_count: usize,
    /// Free-slot stack, bottom first (order feeds future admissions).
    pub free: Vec<usize>,
    /// Occupied slots.
    pub entries: Vec<PersistedEntry>,
    /// Pending admission window (`Itemp`), in arrival order.
    pub window: Vec<WindowEntry>,
    /// State shard count of the writing engine. `1` (the pre-sharding
    /// default, omitted from the encoding) means a single partition.
    pub shards: usize,
}

/// One WAL record: everything a window flip changed *within one shard*.
/// With a single shard (the default) a flip is exactly one record; a
/// sharded engine multiplexes one record per touched shard into the same
/// log, all sharing the flip's `seq` and each declaring the flip's total
/// record count (`group`) so recovery can detect a partially appended
/// flip group at the tail.
#[derive(Debug, Clone)]
pub(crate) struct WalRecord {
    /// Flip ordinal (1-based, contiguous; shared by every record of one
    /// flip group).
    pub seq: u64,
    /// Shard this record's deltas belong to (`0`, omitted from the
    /// encoding, for unsharded engines).
    pub shard: usize,
    /// Number of records in this flip's group (`1`, omitted from the
    /// encoding, for unsharded engines).
    pub group: usize,
    /// Slots whose occupant was evicted, in eviction order.
    pub evicted: Vec<usize>,
    /// Admitted entries, in admission order (no feature sets — replay
    /// re-enumerates the tail).
    pub admitted: Vec<PersistedEntry>,
    /// Post-flip replacement metadata of every resident slot of this
    /// record's shard. Replay applies the *last* table per shard; earlier
    /// tables are superseded.
    pub metas: Vec<(usize, GraphMeta)>,
}

/// The WAL's decoded header.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WalHeader {
    pub config_fp: u64,
    pub dataset_fp: u64,
    /// State shard count of the writing engine (`1`, omitted from the
    /// encoding, for unsharded engines).
    pub shards: usize,
}

/// The outcome of parsing a WAL byte stream.
#[derive(Debug)]
pub(crate) struct WalParse {
    /// `None` for an empty (never-written) WAL.
    pub header: Option<WalHeader>,
    /// Every intact record, in file order.
    pub records: Vec<WalRecord>,
    /// `true` when a torn final record was dropped (crash mid-append).
    pub torn_tail: bool,
}

// ---------------------------------------------------------------------------
// JSON codec helpers
// ---------------------------------------------------------------------------

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, PersistError> {
    match v.get(name) {
        Some(f) => Ok(f),
        None => Err(PersistError::Corrupt(format!("missing field {name:?}"))),
    }
}

fn u64_field(v: &Value, name: &str) -> Result<u64, PersistError> {
    field(v, name)?
        .as_u64()
        .ok_or_else(|| PersistError::Corrupt(format!("field {name:?} is not an unsigned integer")))
}

fn usize_field(v: &Value, name: &str) -> Result<usize, PersistError> {
    Ok(u64_field(v, name)? as usize)
}

/// A presence-optional unsigned field: `default` when absent (the
/// pre-sharding encodings omit shard-related fields entirely).
fn opt_usize_field(v: &Value, name: &str, default: usize) -> Result<usize, PersistError> {
    match v.get(name) {
        None => Ok(default),
        Some(f) => f.as_u64().map(|u| u as usize).ok_or_else(|| {
            PersistError::Corrupt(format!("field {name:?} is not an unsigned integer"))
        }),
    }
}

fn array_field<'v>(v: &'v Value, name: &str) -> Result<&'v Vec<Value>, PersistError> {
    field(v, name)?
        .as_array()
        .ok_or_else(|| PersistError::Corrupt(format!("field {name:?} is not an array")))
}

fn meta_to_json(m: &GraphMeta) -> Value {
    json!({
        "hits": m.hits,
        "seen": m.queries_seen,
        "removed": m.removed,
        // LogValue is an `f64` exponent that can legitimately be -inf
        // (never-hit entries); JSON has no -inf, so the exact bit pattern
        // is stored instead.
        "cost_bits": m.cost_alleviated.ln().to_bits(),
        "last": m.last_hit_at,
    })
}

fn meta_from_json(v: &Value) -> Result<GraphMeta, PersistError> {
    Ok(GraphMeta {
        hits: u64_field(v, "hits")?,
        queries_seen: u64_field(v, "seen")?,
        removed: u64_field(v, "removed")?,
        cost_alleviated: LogValue::from_ln(f64::from_bits(u64_field(v, "cost_bits")?)),
        last_hit_at: u64_field(v, "last")?,
    })
}

fn sig_to_json(s: &GraphSignature) -> Value {
    json!({ "v": s.vertices, "e": s.edges, "h": s.wl_hash })
}

fn sig_from_json(v: &Value) -> Result<GraphSignature, PersistError> {
    Ok(GraphSignature {
        vertices: u64_field(v, "v")? as u32,
        edges: u64_field(v, "e")? as u32,
        wl_hash: u64_field(v, "h")?,
    })
}

fn code_to_json(code: &Option<CanonicalCode>) -> Value {
    match code {
        None => Value::Null,
        Some(c) => c.words().to_vec().to_json(),
    }
}

fn code_from_json(v: &Value) -> Result<Option<CanonicalCode>, PersistError> {
    match v {
        Value::Null => Ok(None),
        other => {
            let words: Vec<u64> = FromJson::from_json(other)?;
            Ok(Some(CanonicalCode::from_words(words)))
        }
    }
}

/// Compact flat-text form of a graph: `"l,l,l|u-v,u-v"` (vertex labels,
/// then edges; labeled edges append `:e` per edge). Checkpoints hold one
/// graph per cached entry, and the `Value`-tree form costs a parse
/// allocation per vertex and per edge — the flat form is the single
/// biggest lever on warm-restart time.
fn graph_to_json(g: &Graph) -> Value {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(g.vertex_count() * 3 + g.edge_count() * 7);
    for (i, v) in g.vertices().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", g.label(v).raw());
    }
    s.push('|');
    if g.has_edge_labels() {
        for (i, ((u, v), l)) in g.labeled_edges().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}-{}:{}", u.raw(), v.raw(), l.raw());
        }
    } else {
        for (i, &(u, v)) in g.edges().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}-{}", u.raw(), v.raw());
        }
    }
    Value::String(s)
}

fn graph_from_json(v: &Value) -> Result<Graph, PersistError> {
    let Some(s) = v.as_str() else {
        // Tolerate the verbose `{labels, edges}` object form too.
        return Ok(FromJson::from_json(v)?);
    };
    let bad = |what: &str| PersistError::Corrupt(format!("malformed compact graph: {what}"));
    let (labels_part, edges_part) = s.split_once('|').ok_or_else(|| bad("no separator"))?;
    let labels: Vec<u32> = labels_part
        .split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<u32>().map_err(|_| bad("vertex label")))
        .collect::<Result<_, _>>()?;
    let mut b = igq_graph::GraphBuilder::with_capacity(labels.len(), 0);
    for l in labels {
        b.add_vertex(LabelId::new(l));
    }
    for tok in edges_part.split(',').filter(|t| !t.is_empty()) {
        let (endpoints, label) = match tok.split_once(':') {
            Some((e, l)) => (e, Some(l)),
            None => (tok, None),
        };
        let (u, v) = endpoints.split_once('-').ok_or_else(|| bad("edge"))?;
        let u: u32 = u.parse().map_err(|_| bad("edge endpoint"))?;
        let v: u32 = v.parse().map_err(|_| bad("edge endpoint"))?;
        let result = match label {
            Some(l) => {
                let l: u32 = l.parse().map_err(|_| bad("edge label"))?;
                b.add_edge_labeled(
                    igq_graph::VertexId::new(u),
                    igq_graph::VertexId::new(v),
                    LabelId::new(l),
                )
            }
            None => b.add_edge(igq_graph::VertexId::new(u), igq_graph::VertexId::new(v)),
        };
        result.map_err(|e| bad(&e.to_string()))?;
    }
    b.try_build().map_err(|e| bad(&e.to_string()))
}

fn answers_to_json(answers: &[GraphId]) -> Value {
    answers
        .iter()
        .map(|id| id.raw())
        .collect::<Vec<u32>>()
        .to_json()
}

fn answers_from_json(v: &Value) -> Result<Vec<GraphId>, PersistError> {
    let raw: Vec<u32> = FromJson::from_json(v)?;
    Ok(raw.into_iter().map(GraphId::new).collect())
}

/// Compact flat-text form of a feature multiset:
/// `"<complete_len>|l.l.l:c;l.l:c;..."`. A checkpoint holds hundreds of
/// features per slot; one string parsed with `split` is close to an
/// order of magnitude cheaper than a `Value` tree per path — and this
/// parse cost is exactly what warm restart pays, so it is kept minimal.
fn features_to_json(f: &SlotFeatureSet) -> Value {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(8 + f.counts.len() * 12);
    let _ = write!(s, "{}|", f.complete_len);
    for (i, (seq, count)) in f.counts.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        for (j, l) in seq.labels().iter().enumerate() {
            if j > 0 {
                s.push('.');
            }
            let _ = write!(s, "{}", l.raw());
        }
        let _ = write!(s, ":{count}");
    }
    Value::String(s)
}

fn features_from_json(v: &Value) -> Result<SlotFeatureSet, PersistError> {
    let s = v
        .as_str()
        .ok_or_else(|| PersistError::Corrupt("feature set is not a string".into()))?;
    let (cl, rest) = s
        .split_once('|')
        .ok_or_else(|| PersistError::Corrupt("feature set missing depth prefix".into()))?;
    let complete_len: usize = cl
        .parse()
        .map_err(|_| PersistError::Corrupt("bad feature depth".into()))?;
    let mut counts = Vec::new();
    let mut labels: Vec<LabelId> = Vec::new();
    for item in rest.split(';').filter(|i| !i.is_empty()) {
        let (seq_part, count_part) = item
            .rsplit_once(':')
            .ok_or_else(|| PersistError::Corrupt("feature missing count".into()))?;
        labels.clear();
        for tok in seq_part.split('.') {
            let raw: u32 = tok
                .parse()
                .map_err(|_| PersistError::Corrupt("bad feature label".into()))?;
            labels.push(LabelId::new(raw));
        }
        let count: u32 = count_part
            .parse()
            .map_err(|_| PersistError::Corrupt("bad feature count".into()))?;
        counts.push((LabelSeq::canonical(&labels), count));
    }
    Ok(SlotFeatureSet {
        counts,
        complete_len,
    })
}

fn entry_to_json(e: &PersistedEntry) -> Value {
    json!({
        "slot": e.slot,
        "graph": graph_to_json(&e.entry.graph),
        "answers": answers_to_json(&e.entry.answers),
        "sig": sig_to_json(&e.entry.signature),
        "code": code_to_json(&e.entry.code),
        "meta": meta_to_json(&e.entry.meta),
        "feat": match &e.features {
            Some(f) => features_to_json(f),
            None => Value::Null,
        },
    })
}

fn entry_from_json(v: &Value) -> Result<PersistedEntry, PersistError> {
    let graph: Graph = graph_from_json(field(v, "graph")?)?;
    let features = match field(v, "feat")? {
        Value::Null => None,
        other => Some(features_from_json(other)?),
    };
    Ok(PersistedEntry {
        slot: usize_field(v, "slot")?,
        entry: CacheEntry {
            graph: Arc::new(graph),
            signature: sig_from_json(field(v, "sig")?)?,
            code: code_from_json(field(v, "code")?)?,
            answers: answers_from_json(field(v, "answers")?)?,
            meta: meta_from_json(field(v, "meta")?)?,
        },
        features,
    })
}

fn window_entry_to_json(w: &WindowEntry) -> Value {
    json!({
        "graph": graph_to_json(&w.graph),
        "answers": answers_to_json(&w.answers),
        "sig": match &w.signature {
            Some(s) => sig_to_json(s),
            None => Value::Null,
        },
        // The outer Option ("was canonicalization attempted?") and the
        // inner one ("did it fit the budget?") are persisted separately.
        "code_tried": w.code.is_some(),
        "code": match &w.code {
            Some(c) => code_to_json(c),
            None => Value::Null,
        },
    })
}

fn window_entry_from_json(v: &Value) -> Result<WindowEntry, PersistError> {
    let graph: Graph = graph_from_json(field(v, "graph")?)?;
    let signature = match field(v, "sig")? {
        Value::Null => None,
        other => Some(sig_from_json(other)?),
    };
    let code_tried = matches!(field(v, "code_tried")?, Value::Bool(true));
    let code = if code_tried {
        Some(code_from_json(field(v, "code")?)?)
    } else {
        None
    };
    Ok(WindowEntry {
        graph: Arc::new(graph),
        answers: answers_from_json(field(v, "answers")?)?,
        signature,
        code,
    })
}

/// Compact flat-text form of a per-flip metadata table:
/// `"slot:hits,seen,removed,cost_bits_hex,last;..."`. Every WAL record
/// carries one entry per resident slot, so the same parse-cost argument
/// as [`features_to_json`] applies.
fn metas_to_json(metas: &[(usize, GraphMeta)]) -> Value {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(metas.len() * 24);
    for (i, (slot, m)) in metas.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(
            s,
            "{slot}:{},{},{},{:x},{}",
            m.hits,
            m.queries_seen,
            m.removed,
            m.cost_alleviated.ln().to_bits(),
            m.last_hit_at
        );
    }
    Value::String(s)
}

fn metas_from_json(v: &Value) -> Result<Vec<(usize, GraphMeta)>, PersistError> {
    let s = v
        .as_str()
        .ok_or_else(|| PersistError::Corrupt("meta table is not a string".into()))?;
    let bad = || PersistError::Corrupt("malformed meta table".into());
    let mut out = Vec::new();
    for item in s.split(';').filter(|i| !i.is_empty()) {
        let (slot, fields) = item.split_once(':').ok_or_else(bad)?;
        let slot: usize = slot.parse().map_err(|_| bad())?;
        let mut it = fields.split(',');
        let mut next = || it.next().ok_or_else(bad);
        let hits: u64 = next()?.parse().map_err(|_| bad())?;
        let queries_seen: u64 = next()?.parse().map_err(|_| bad())?;
        let removed: u64 = next()?.parse().map_err(|_| bad())?;
        let cost_bits = u64::from_str_radix(next()?, 16).map_err(|_| bad())?;
        let last_hit_at: u64 = next()?.parse().map_err(|_| bad())?;
        out.push((
            slot,
            GraphMeta {
                hits,
                queries_seen,
                removed,
                cost_alleviated: LogValue::from_ln(f64::from_bits(cost_bits)),
                last_hit_at,
            },
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Checkpoint encode/decode
// ---------------------------------------------------------------------------

/// Encodes a checkpoint to its on-disk bytes (header line + payload).
pub(crate) fn encode_checkpoint(data: &CheckpointData) -> Vec<u8> {
    let mut payload = json!({
        "kind": "igq-checkpoint",
        "version": CHECKPOINT_VERSION,
        "seq": data.seq,
        "config_fp": data.config_fp,
        "dataset_fp": data.dataset_fp,
        "labels": data.labels,
        "round": data.round,
        "slot_count": data.slot_count,
        "free": data.free.to_json(),
        "entries": Value::Array(data.entries.iter().map(entry_to_json).collect()),
        "window": Value::Array(data.window.iter().map(window_entry_to_json).collect()),
    });
    // Presence-optional: unsharded checkpoints stay byte-identical to the
    // pre-sharding format (and older checkpoints decode as `shards == 1`).
    if data.shards > 1 {
        if let Value::Object(map) = &mut payload {
            map.insert("shards".into(), (data.shards as u64).to_json());
        }
    }
    let body = serde_json::to_string(&payload).expect("checkpoint serializes");
    let mut out = format!(
        "{CKPT_MAGIC} {:016x} {}\n",
        fnv1a64(body.as_bytes()),
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Decodes and verifies checkpoint bytes (magic, version, checksum).
/// Fingerprint validation against the opening engine is the caller's job
/// (the fingerprints are in the returned data).
pub(crate) fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointData, PersistError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| PersistError::Corrupt("checkpoint has no header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| PersistError::Corrupt("checkpoint header is not UTF-8".into()))?;
    let mut parts = header.split_whitespace();
    let (magic, crc_hex, len) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(c), Some(l)) => (m, c, l),
        _ => return Err(PersistError::Corrupt("malformed checkpoint header".into())),
    };
    if magic != CKPT_MAGIC {
        return Err(PersistError::Corrupt(format!(
            "bad checkpoint magic {magic:?}"
        )));
    }
    let expected = u64::from_str_radix(crc_hex, 16)
        .map_err(|_| PersistError::Corrupt("bad checkpoint checksum field".into()))?;
    let len: usize = len
        .parse()
        .map_err(|_| PersistError::Corrupt("bad checkpoint length field".into()))?;
    let body = &bytes[newline + 1..];
    if body.len() != len {
        return Err(PersistError::Corrupt(format!(
            "checkpoint payload length {} does not match header {len}",
            body.len()
        )));
    }
    let found = fnv1a64(body);
    if found != expected {
        return Err(PersistError::Checksum { expected, found });
    }
    let body = std::str::from_utf8(body)
        .map_err(|_| PersistError::Corrupt("checkpoint payload is not UTF-8".into()))?;
    let v: Value = serde_json::from_str(body)?;
    let version = u64_field(&v, "version")?;
    if version != CHECKPOINT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let entries = array_field(&v, "entries")?
        .iter()
        .map(entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let window = array_field(&v, "window")?
        .iter()
        .map(window_entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CheckpointData {
        seq: u64_field(&v, "seq")?,
        config_fp: u64_field(&v, "config_fp")?,
        dataset_fp: u64_field(&v, "dataset_fp")?,
        labels: usize_field(&v, "labels")?,
        round: u64_field(&v, "round")?,
        slot_count: usize_field(&v, "slot_count")?,
        free: FromJson::from_json(field(&v, "free")?)?,
        entries,
        window,
        shards: opt_usize_field(&v, "shards", 1)?,
    })
}

// ---------------------------------------------------------------------------
// WAL encode/decode
// ---------------------------------------------------------------------------

fn frame_line(tag: char, body: &str) -> Vec<u8> {
    format!(
        "{tag} {:016x} {} {body}\n",
        fnv1a64(body.as_bytes()),
        body.len()
    )
    .into_bytes()
}

/// Encodes the WAL header line binding the log to an engine identity.
pub(crate) fn encode_wal_header(h: &WalHeader) -> Vec<u8> {
    let mut payload = json!({
        "kind": "igq-wal",
        "version": WAL_VERSION,
        "config_fp": h.config_fp,
        "dataset_fp": h.dataset_fp,
    });
    if h.shards > 1 {
        if let Value::Object(map) = &mut payload {
            map.insert("shards".into(), (h.shards as u64).to_json());
        }
    }
    let body = serde_json::to_string(&payload).expect("wal header serializes");
    frame_line('H', &body)
}

/// Encodes one flip record as a framed WAL line. `seq` is always
/// serialized first ([`record_line_seq`] reads it raw); the shard tags
/// follow it and are omitted at their unsharded defaults, keeping
/// single-shard logs byte-identical to the pre-sharding format.
pub(crate) fn encode_wal_record(r: &WalRecord) -> Vec<u8> {
    let mut payload = json!({
        "seq": r.seq,
    });
    if let Value::Object(map) = &mut payload {
        if r.shard != 0 {
            map.insert("shard".into(), (r.shard as u64).to_json());
        }
        if r.group != 1 {
            map.insert("group".into(), (r.group as u64).to_json());
        }
        map.insert("evicted".into(), r.evicted.to_json());
        map.insert(
            "admitted".into(),
            Value::Array(r.admitted.iter().map(entry_to_json).collect()),
        );
        map.insert("metas".into(), metas_to_json(&r.metas));
    }
    let body = serde_json::to_string(&payload).expect("wal record serializes");
    frame_line('R', &body)
}

/// Splits one framed line into `(tag, payload)`, verifying length and
/// checksum. `Err` carries the reason; the caller decides whether the
/// position (final line or not) makes it a torn tail or corruption.
fn parse_line(line: &str) -> Result<(char, Value), String> {
    let mut chars = line.chars();
    let tag = chars.next().ok_or("empty line")?;
    let rest = chars
        .as_str()
        .strip_prefix(' ')
        .ok_or("missing separator")?;
    let (crc_hex, rest) = rest.split_once(' ').ok_or("missing checksum field")?;
    let (len_str, body) = rest.split_once(' ').ok_or("missing length field")?;
    let expected = u64::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum field")?;
    let len: usize = len_str.parse().map_err(|_| "bad length field")?;
    if body.len() != len {
        return Err(format!("length {} does not match header {len}", body.len()));
    }
    let found = fnv1a64(body.as_bytes());
    if found != expected {
        return Err(format!(
            "checksum mismatch ({expected:016x} vs {found:016x})"
        ));
    }
    let v: Value = serde_json::from_str(body).map_err(|e| e.to_string())?;
    Ok((tag, v))
}

fn record_from_json(v: &Value) -> Result<WalRecord, PersistError> {
    let admitted = array_field(v, "admitted")?
        .iter()
        .map(entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let group = opt_usize_field(v, "group", 1)?;
    if group == 0 {
        return Err(PersistError::Corrupt("WAL record with group == 0".into()));
    }
    Ok(WalRecord {
        seq: u64_field(v, "seq")?,
        shard: opt_usize_field(v, "shard", 0)?,
        group,
        evicted: FromJson::from_json(field(v, "evicted")?)?,
        admitted,
        metas: metas_from_json(field(v, "metas")?)?,
    })
}

/// Parses a WAL byte stream: header first, then records in order. A
/// damaged or truncated **final** line is tolerated (dropped, reported
/// via [`WalParse::torn_tail`]) — that is what a crash mid-append leaves
/// behind; damage anywhere else is [`PersistError::Corrupt`].
pub(crate) fn parse_wal(bytes: &[u8]) -> Result<WalParse, PersistError> {
    if bytes.is_empty() {
        return Ok(WalParse {
            header: None,
            records: Vec::new(),
            torn_tail: false,
        });
    }
    let text =
        std::str::from_utf8(bytes).map_err(|_| PersistError::Corrupt("WAL is not UTF-8".into()))?;
    // A well-formed WAL ends with '\n'; anything after the last newline is
    // a torn append. Each complete line must parse — except the last one,
    // which (if bad) is also treated as torn.
    let (complete, dangling) = match text.rfind('\n') {
        Some(i) => (&text[..i], &text[i + 1..]),
        None => ("", text),
    };
    let mut torn_tail = !dangling.is_empty();
    let lines: Vec<&str> = if complete.is_empty() {
        Vec::new()
    } else {
        complete.split('\n').collect()
    };
    let mut header = None;
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let is_last = i + 1 == lines.len() && !torn_tail;
        match parse_line(line) {
            Ok(('H', v)) => {
                if i != 0 {
                    return Err(PersistError::Corrupt(
                        "WAL header record not at start".into(),
                    ));
                }
                let version = u64_field(&v, "version")?;
                if version != WAL_VERSION {
                    return Err(PersistError::UnsupportedVersion {
                        found: version,
                        supported: WAL_VERSION,
                    });
                }
                header = Some(WalHeader {
                    config_fp: u64_field(&v, "config_fp")?,
                    dataset_fp: u64_field(&v, "dataset_fp")?,
                    shards: opt_usize_field(&v, "shards", 1)?,
                });
            }
            Ok(('R', v)) => {
                if header.is_none() {
                    return Err(PersistError::Corrupt("WAL record before header".into()));
                }
                records.push(record_from_json(&v)?);
            }
            Ok((tag, _)) => {
                return Err(PersistError::Corrupt(format!(
                    "unknown WAL record tag {tag:?}"
                )))
            }
            Err(reason) => {
                if is_last {
                    // Crash mid-append: the final record is incomplete.
                    torn_tail = true;
                } else {
                    return Err(PersistError::Corrupt(format!(
                        "WAL line {} damaged mid-log: {reason}",
                        i + 1
                    )));
                }
            }
        }
    }
    if header.is_none() && (!records.is_empty() || !torn_tail) {
        return Err(PersistError::Corrupt("WAL has no header record".into()));
    }
    Ok(WalParse {
        header,
        records,
        torn_tail,
    })
}

/// Splits parsed WAL records into per-flip groups (consecutive records
/// sharing one `seq`) and validates each group against its declared
/// record count. An *incomplete trailing* group — a crash partway through
/// a multi-record sharded append — is dropped and reported like a torn
/// tail (`true` in the returned pair); an incomplete or over-full group
/// anywhere else, or records of one group disagreeing on `seq`/`group`,
/// is [`PersistError::Corrupt`].
pub(crate) fn split_flip_groups(
    records: Vec<WalRecord>,
) -> Result<(Vec<Vec<WalRecord>>, bool), PersistError> {
    let mut groups: Vec<Vec<WalRecord>> = Vec::new();
    for record in records {
        match groups.last_mut() {
            Some(group) if group[0].seq == record.seq => {
                if record.group != group[0].group {
                    return Err(PersistError::Corrupt(format!(
                        "WAL flip {} records disagree on group size ({} vs {})",
                        record.seq, group[0].group, record.group
                    )));
                }
                if group.len() == group[0].group {
                    return Err(PersistError::Corrupt(format!(
                        "WAL flip {} has more records than its declared group size {}",
                        record.seq, group[0].group
                    )));
                }
                group.push(record);
            }
            previous => {
                if let Some(group) = previous {
                    if group.len() != group[0].group {
                        return Err(PersistError::Corrupt(format!(
                            "WAL flip {} group incomplete mid-log ({} of {} records)",
                            group[0].seq,
                            group.len(),
                            group[0].group
                        )));
                    }
                }
                groups.push(vec![record]);
            }
        }
    }
    let mut torn_group = false;
    if let Some(group) = groups.last() {
        if group.len() != group[0].group {
            // The signature of a crash partway through appending a
            // sharded flip group: drop the whole flip, like a torn tail.
            torn_group = true;
            groups.pop();
        }
    }
    Ok((groups, torn_group))
}

/// Re-encodes a header plus records as a fresh WAL byte stream
/// (compaction).
pub(crate) fn encode_wal(header: &WalHeader, records: &[&WalRecord]) -> Vec<u8> {
    let mut out = encode_wal_header(header);
    for r in records {
        out.extend_from_slice(&encode_wal_record(r));
    }
    out
}

/// The `seq` of one framed record line, read from the payload prefix
/// without a full JSON decode ([`encode_wal_record`] always serializes
/// `seq` first; the shim's `Map` preserves insertion order).
fn record_line_seq(line: &str) -> Option<u64> {
    let body = line.splitn(4, ' ').nth(3)?;
    let rest = body.strip_prefix("{\"seq\":")?;
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// Checkpoint-time WAL compaction over **raw bytes**: keeps record lines
/// with `seq > keep_after` verbatim under a fresh header, dropping a torn
/// final line. Only each line's `seq` prefix is read — no per-record
/// JSON decode/re-encode — because this runs under the engine's submit
/// lock, where every microsecond blocks WAL appends. Returns the new
/// stream and the number of kept records. Damaged mid-log lines are kept
/// as-is (recovery, with time to spare, diagnoses them properly).
pub(crate) fn compact_wal(bytes: &[u8], keep_after: u64, header: &WalHeader) -> (Vec<u8>, u64) {
    let mut out = encode_wal_header(header);
    let mut kept = 0u64;
    if let Ok(text) = std::str::from_utf8(bytes) {
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break; // torn final append; checkpoint covers its flip
            }
            if !line.starts_with("R ") {
                continue; // old header
            }
            match record_line_seq(line) {
                Some(seq) if seq <= keep_after => {}
                _ => {
                    out.extend_from_slice(line.as_bytes());
                    kept += 1;
                }
            }
        }
    }
    (out, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    fn entry(slot: usize, label: u32) -> PersistedEntry {
        let g = graph_from(&[label, label + 1], &[(0, 1)]);
        let sig = GraphSignature::of(&g);
        let code = igq_graph::canon::canonical_code(&g);
        PersistedEntry {
            slot,
            entry: CacheEntry {
                graph: Arc::new(g),
                signature: sig,
                code,
                answers: vec![GraphId::new(1), GraphId::new(4)],
                meta: {
                    let mut m = GraphMeta::new();
                    m.tick();
                    m.record_hit(3, LogValue::from_linear(1e30));
                    m
                },
            },
            features: Some(SlotFeatureSet {
                counts: vec![
                    (LabelSeq::canonical(&[LabelId::new(label)]), 1),
                    (
                        LabelSeq::canonical(&[LabelId::new(label), LabelId::new(label + 1)]),
                        1,
                    ),
                ],
                complete_len: 4,
            }),
        }
    }

    fn checkpoint_data() -> CheckpointData {
        CheckpointData {
            seq: 7,
            config_fp: 11,
            dataset_fp: 22,
            labels: 5,
            round: 9,
            slot_count: 3,
            free: vec![2],
            entries: vec![entry(0, 0), entry(1, 3)],
            window: vec![WindowEntry {
                graph: Arc::new(graph_from(&[9], &[])),
                answers: vec![],
                signature: None,
                code: Some(None),
            }],
            shards: 1,
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_everything() {
        let data = checkpoint_data();
        let bytes = encode_checkpoint(&data);
        let back = decode_checkpoint(&bytes).expect("decodes");
        assert_eq!(back.seq, 7);
        assert_eq!(back.config_fp, 11);
        assert_eq!(back.dataset_fp, 22);
        assert_eq!(back.labels, 5);
        assert_eq!(back.round, 9);
        assert_eq!(back.slot_count, 3);
        assert_eq!(back.free, vec![2]);
        assert_eq!(back.entries.len(), 2);
        let (a, b) = (&data.entries[0].entry, &back.entries[0].entry);
        assert_eq!(a.graph.as_ref(), b.graph.as_ref());
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.code, b.code);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.meta.hits, b.meta.hits);
        assert_eq!(a.meta.cost_alleviated, b.meta.cost_alleviated);
        let (fa, fb) = (
            data.entries[0].features.as_ref().unwrap(),
            back.entries[0].features.as_ref().unwrap(),
        );
        let (mut ca, mut cb) = (fa.counts.clone(), fb.counts.clone());
        ca.sort();
        cb.sort();
        assert_eq!(ca, cb);
        assert_eq!(back.window.len(), 1);
        assert_eq!(back.window[0].code, Some(None), "budget-miss code survives");
    }

    #[test]
    fn negative_infinity_cost_roundtrips_exactly() {
        let m = GraphMeta::new(); // cost = LogValue::ZERO = ln -inf
        let v = meta_to_json(&m);
        let back = meta_from_json(&v).expect("decodes");
        assert_eq!(back.cost_alleviated, LogValue::ZERO);
    }

    #[test]
    fn checkpoint_checksum_mismatch_is_detected() {
        let mut bytes = encode_checkpoint(&checkpoint_data());
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        match decode_checkpoint(&bytes) {
            Err(PersistError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_version_gate() {
        let data = checkpoint_data();
        let bytes = encode_checkpoint(&data);
        let text = String::from_utf8(bytes).unwrap();
        let (header, body) = text.split_once('\n').unwrap();
        let body = body.replace("\"version\":1", "\"version\":999");
        let mut forged = format!(
            "{} {:016x} {}\n",
            CKPT_MAGIC,
            fnv1a64(body.as_bytes()),
            body.len()
        );
        forged.push_str(&body);
        let _ = header;
        match decode_checkpoint(forged.as_bytes()) {
            Err(PersistError::UnsupportedVersion { found: 999, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    fn wal_record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            shard: 0,
            group: 1,
            evicted: vec![1],
            admitted: vec![PersistedEntry {
                features: None,
                ..entry(1, seq as u32)
            }],
            metas: vec![(0, GraphMeta::new()), (1, GraphMeta::new())],
        }
    }

    #[test]
    fn wal_roundtrip_and_torn_tail_tolerance() {
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 1,
        };
        let mut bytes = encode_wal_header(&header);
        bytes.extend_from_slice(&encode_wal_record(&wal_record(1)));
        bytes.extend_from_slice(&encode_wal_record(&wal_record(2)));
        let parsed = parse_wal(&bytes).expect("clean parse");
        assert_eq!(parsed.records.len(), 2);
        assert!(!parsed.torn_tail);
        assert_eq!(parsed.header.unwrap().config_fp, 1);

        // Crash mid-append: chop the final record short.
        let torn = &bytes[..bytes.len() - 10];
        let parsed = parse_wal(torn).expect("torn tail tolerated");
        assert_eq!(parsed.records.len(), 1, "final record dropped");
        assert!(parsed.torn_tail);

        // Same damage mid-log is corruption, not a torn tail.
        let mut mid = encode_wal_header(&header);
        let mut r1 = encode_wal_record(&wal_record(1));
        r1.truncate(r1.len() - 10);
        r1.push(b'\n');
        mid.extend_from_slice(&r1);
        mid.extend_from_slice(&encode_wal_record(&wal_record(2)));
        match parse_wal(&mid) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn unsharded_encodings_omit_shard_fields_and_decode_to_defaults() {
        // Byte-level: a shards=1 engine's artifacts must not mention
        // sharding at all (forward-written logs stay readable by the
        // pre-sharding decoder, and vice versa).
        let ckpt = encode_checkpoint(&checkpoint_data());
        assert!(!String::from_utf8(ckpt.clone()).unwrap().contains("shards"));
        assert_eq!(decode_checkpoint(&ckpt).unwrap().shards, 1);
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 1,
        };
        let line = encode_wal_record(&wal_record(3));
        let text = String::from_utf8(line.clone()).unwrap();
        assert!(!text.contains("shard") && !text.contains("group"));
        let bytes = [encode_wal_header(&header), line].concat();
        assert!(!String::from_utf8(encode_wal_header(&header))
            .unwrap()
            .contains("shards"));
        let parsed = parse_wal(&bytes).expect("parses");
        assert_eq!(parsed.header.unwrap().shards, 1);
        assert_eq!(parsed.records[0].shard, 0);
        assert_eq!(parsed.records[0].group, 1);
    }

    #[test]
    fn sharded_records_roundtrip_with_tags() {
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 4,
        };
        let mut a = wal_record(5);
        a.shard = 2;
        a.group = 2;
        let mut b = wal_record(5);
        b.shard = 0;
        b.group = 2;
        let bytes = encode_wal(&header, &[&a, &b]);
        let parsed = parse_wal(&bytes).expect("parses");
        assert_eq!(parsed.header.unwrap().shards, 4);
        assert_eq!(parsed.records[0].shard, 2);
        assert_eq!(parsed.records[0].group, 2);
        assert_eq!(parsed.records[1].shard, 0);
        // `seq` still leads the payload so raw compaction keeps working
        // on tagged records.
        let line = String::from_utf8(encode_wal_record(&a)).unwrap();
        assert!(line
            .splitn(4, ' ')
            .nth(3)
            .unwrap()
            .starts_with("{\"seq\":5"));
        let (compacted, kept) = compact_wal(&bytes, 4, &header);
        assert_eq!(kept, 2);
        assert_eq!(parse_wal(&compacted).unwrap().records.len(), 2);
    }

    #[test]
    fn flip_groups_split_and_detect_incomplete_tails() {
        let rec = |seq: u64, shard: usize, group: usize| {
            let mut r = wal_record(seq);
            r.shard = shard;
            r.group = group;
            r
        };
        // Two complete groups.
        let (groups, torn) =
            split_flip_groups(vec![rec(1, 0, 2), rec(1, 1, 2), rec(2, 1, 1)]).expect("splits");
        assert!(!torn);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        // Incomplete trailing group: dropped, reported torn.
        let (groups, torn) =
            split_flip_groups(vec![rec(1, 0, 1), rec(2, 0, 3), rec(2, 1, 3)]).expect("splits");
        assert!(torn, "partial trailing flip group dropped");
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0][0].seq, 1);
        // Incomplete group mid-log is corruption.
        match split_flip_groups(vec![rec(1, 0, 2), rec(2, 0, 1)]) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
        // Disagreeing group sizes are corruption.
        match split_flip_groups(vec![rec(1, 0, 2), rec(1, 1, 3)]) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn empty_wal_parses_to_nothing() {
        let parsed = parse_wal(b"").expect("empty ok");
        assert!(parsed.header.is_none());
        assert!(parsed.records.is_empty());
        assert!(!parsed.torn_tail);
    }

    #[test]
    fn wal_compaction_roundtrips() {
        let header = WalHeader {
            config_fp: 5,
            dataset_fp: 6,
            shards: 1,
        };
        let (r1, r2) = (wal_record(1), wal_record(2));
        let bytes = encode_wal(&header, &[&r1, &r2]);
        let parsed = parse_wal(&bytes).expect("parses");
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[1].seq, 2);
        assert_eq!(parsed.records[1].evicted, vec![1]);
        assert_eq!(parsed.records[1].metas.len(), 2);
    }

    #[test]
    fn raw_compaction_keeps_only_the_tail_and_drops_torn_bytes() {
        let header = WalHeader {
            config_fp: 9,
            dataset_fp: 10,
            shards: 1,
        };
        let mut bytes = encode_wal_header(&header);
        for seq in 1..=4 {
            bytes.extend_from_slice(&encode_wal_record(&wal_record(seq)));
        }
        bytes.extend_from_slice(b"R 0000 torn-partial-append");
        let (compacted, kept) = compact_wal(&bytes, 2, &header);
        assert_eq!(kept, 2);
        let parsed = parse_wal(&compacted).expect("compacted WAL parses");
        assert_eq!(
            parsed.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(!parsed.torn_tail, "torn bytes dropped by compaction");
        assert_eq!(parsed.header.unwrap().config_fp, 9);
        // Kept records survive byte-identically (checksums still valid).
        let (again, kept_again) = compact_wal(&compacted, 0, &header);
        assert_eq!(kept_again, 2);
        assert_eq!(parse_wal(&again).expect("parses").records.len(), 2);
    }

    #[test]
    fn mem_store_fork_is_independent() {
        let a = MemStore::new();
        a.save_checkpoint(b"one").unwrap();
        a.append_wal(b"rec\n").unwrap();
        let b = a.fork();
        a.save_checkpoint(b"two").unwrap();
        a.replace_wal(b"").unwrap();
        assert_eq!(b.load_checkpoint().unwrap().unwrap(), b"one");
        assert_eq!(b.load_wal().unwrap(), b"rec\n");
        assert_eq!(a.load_checkpoint().unwrap().unwrap(), b"two");
        assert_eq!(a.wal_bytes(), 0);
    }

    #[test]
    fn dir_store_roundtrips_and_survives_missing_files() {
        let dir = std::env::temp_dir().join(format!("igq_dirstore_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DirStore::open(&dir).expect("open");
        assert!(store.load_checkpoint().unwrap().is_none());
        assert!(store.load_wal().unwrap().is_empty());
        store.save_checkpoint(b"ckpt").unwrap();
        store.append_wal(b"a\n").unwrap();
        store.append_wal(b"b\n").unwrap();
        assert_eq!(store.load_checkpoint().unwrap().unwrap(), b"ckpt");
        assert_eq!(store.load_wal().unwrap(), b"a\nb\n");
        store.replace_wal(b"c\n").unwrap();
        assert_eq!(store.load_wal().unwrap(), b"c\n");
        // Reopening sees the same state (it's the filesystem).
        let again = DirStore::open(&dir).expect("reopen");
        assert_eq!(again.load_checkpoint().unwrap().unwrap(), b"ckpt");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_react_to_relevant_changes_only() {
        let base = crate::IgqConfig::default();
        let fp = config_fingerprint(&base, "subgraph");
        assert_eq!(fp, config_fingerprint(&base, "subgraph"), "deterministic");
        let mut bigger = base;
        bigger.cache_capacity += 1;
        assert_ne!(fp, config_fingerprint(&bigger, "subgraph"));
        assert_ne!(
            fp,
            config_fingerprint(&base, "supergraph"),
            "the two query directions must never share a store"
        );
        let mut mode = base;
        mode.maintenance = crate::MaintenanceMode::Background;
        assert_eq!(
            fp,
            config_fingerprint(&mode, "subgraph"),
            "maintenance mode may change across restarts"
        );

        let a: GraphStore = vec![graph_from(&[0, 1], &[(0, 1)])].into_iter().collect();
        let b: GraphStore = vec![graph_from(&[0, 2], &[(0, 1)])].into_iter().collect();
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&a.clone()));
        // Same vertex/edge counts and label *multiset* — labels merely
        // permuted across vertices: must still differ (answers are
        // position-sensitive).
        let perm_a: GraphStore = vec![graph_from(&[1, 0, 2], &[(0, 1), (1, 2)])]
            .into_iter()
            .collect();
        let perm_b: GraphStore = vec![graph_from(&[0, 1, 2], &[(0, 1), (1, 2)])]
            .into_iter()
            .collect();
        assert_ne!(dataset_fingerprint(&perm_a), dataset_fingerprint(&perm_b));
        // Same vertex count, edge count, and label sum — only an edge
        // rewired: the fingerprint must still differ.
        let path: GraphStore = vec![graph_from(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)])]
            .into_iter()
            .collect();
        let star: GraphStore = vec![graph_from(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)])]
            .into_iter()
            .collect();
        assert_ne!(dataset_fingerprint(&path), dataset_fingerprint(&star));
        // Edge labels alone must also register.
        let el_a: GraphStore = vec![igq_graph::graph_from_el(&[0, 1], &[(0, 1, 1)])]
            .into_iter()
            .collect();
        let el_b: GraphStore = vec![igq_graph::graph_from_el(&[0, 1], &[(0, 1, 2)])]
            .into_iter()
            .collect();
        assert_ne!(dataset_fingerprint(&el_a), dataset_fingerprint(&el_b));
    }
}
