//! Durable engine state: the [`CacheStore`] storage abstraction, the
//! versioned checkpoint + window-delta write-ahead log (WAL) encoding, and
//! the typed [`PersistError`] the whole persistence surface reports.
//!
//! # Why
//!
//! The paper's central asset is the *accumulated* query cache and its
//! `Isub`/`Isuper` indexes; losing them on restart forfeits exactly the
//! work iGQ exists to amortize. This module makes durability part of the
//! engine API: [`crate::Engine::open`] recovers a warm engine from the
//! last checkpoint plus the WAL tail instead of rebuilding from scratch,
//! and [`crate::Engine::checkpoint`] (or the config-driven auto-checkpoint,
//! [`crate::config::PersistenceConfig`]) writes new recovery points.
//!
//! # On-disk layout
//!
//! A [`CacheStore`] holds two logical files:
//!
//! * **Checkpoint** — one self-contained snapshot of the engine's durable
//!   state: every cached entry (graph, sorted answers, WL signature,
//!   canonical code, replacement metadata, and its enumerated path-feature
//!   multiset so recovery can rebuild both query indexes *without*
//!   re-enumerating or re-canonicalizing anything), the pending admission
//!   window, the cache's free-slot list and maintenance round, and the
//!   flip sequence number the snapshot covers. The byte format is a
//!   header line `IGQCKPT1 <fnv64-hex> <len>` followed by a JSON payload;
//!   the checksum covers the payload. [`DirStore`] writes it via
//!   temp-file + atomic rename, so a crashed checkpoint can never replace
//!   a good one with a torn file.
//! * **WAL** — an append-only log of window flips. Each record is one
//!   line, `R <fnv64-hex> <len> <json>`, carrying the flip's sequence
//!   number, the evicted slots, the admitted entries (graph + answers +
//!   signature + code), and the post-flip replacement metadata of every
//!   resident. The first line is a header record (`H ...`) binding the
//!   log to a config/dataset fingerprint pair. Records are appended by
//!   the engine's outbox drain — off the engine's state lock — in flip
//!   order.
//!
//! # Recovery protocol
//!
//! [`crate::Engine::open`] loads the checkpoint (if any), verifies its
//! version, checksum, and config/dataset fingerprints, then replays every
//! WAL record with `seq` greater than the checkpoint's: evictions and
//! admissions are re-applied to the cache **as recorded** (the replacement
//! policy is not re-run), both query indexes are updated incrementally,
//! and the final record's metadata table restores the replacement state.
//! A torn *final* WAL record — the signature of a crash mid-append — is
//! truncated with a warning; any other inconsistency (mid-log corruption,
//! checksum or fingerprint mismatch, a sequence gap) is a typed
//! [`PersistError`], never a silent fallback. After recovery the WAL is
//! compacted to exactly the replayed tail.
//!
//! # Equivalence guarantee
//!
//! Recovery restores the complete decision-relevant state as of the last
//! persisted flip: cache contents *and* slot geometry (free-list order,
//! maintenance round — both feed the replacement policy), replacement
//! metadata, pending window, and index postings. An engine recovered at a
//! flip boundary is therefore observationally identical to one that never
//! restarted — the property `tests/persistence.rs` establishes with a
//! randomized proptest across all maintenance modes and both query
//! directions. Queries processed *after* the last flip and the last
//! explicit checkpoint are the durability loss window.

use crate::cache::{CacheEntry, WindowEntry};
use crate::config::{ConfigError, StoreCodec};
use crate::metadata::GraphMeta;
use igq_features::LabelSeq;
use igq_graph::canon::{CanonicalCode, GraphSignature};
use igq_graph::{Graph, GraphId, GraphStore, LabelId};
use igq_iso::LogValue;
use parking_lot::Mutex;
use serde_json::{json, FromJson, ToJson, Value};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u64 = 1;
/// WAL format version this build writes and reads.
pub const WAL_VERSION: u64 = 1;

const CKPT_MAGIC: &str = "IGQCKPT1";
/// Magic prefix of a binary-codec checkpoint ([`StoreCodec::Binary`]).
const BCKPT_MAGIC: &[u8; 8] = b"IGQBCKP1";
/// Magic prefix of a binary-codec WAL stream ([`StoreCodec::Binary`]).
const BWAL_MAGIC: &[u8; 8] = b"IGQBWAL1";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why persistence failed: storage I/O, a damaged artifact, or an artifact
/// that belongs to a different engine configuration or dataset.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying storage failed (filesystem error, permission, ...).
    Io(std::io::Error),
    /// The artifact is structurally damaged in a way a torn final WAL
    /// record cannot explain: unparseable JSON, a mid-log torn record, a
    /// sequence gap, or internally inconsistent state.
    Corrupt(String),
    /// A checksum did not match its payload.
    Checksum {
        /// Checksum stored in the artifact header.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// The artifact was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the artifact.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// The artifact was produced under a different engine configuration
    /// (cache capacity, window, path features, policy, or label universe).
    ConfigMismatch {
        /// Fingerprint of the opening engine's configuration.
        expected: u64,
        /// Fingerprint stored in the artifact.
        found: u64,
    },
    /// The artifact's answers belong to a different dataset; importing
    /// them would violate the engine's exactness guarantees.
    DatasetMismatch {
        /// Fingerprint of the opening engine's dataset.
        expected: u64,
        /// Fingerprint stored in the artifact.
        found: u64,
    },
    /// The artifact was produced under a different state shard count.
    /// Slot routing is shard-count-dependent, so a store written with one
    /// `shards` setting cannot be reopened under another.
    ShardMismatch {
        /// Shard count of the opening engine's configuration.
        expected: usize,
        /// Shard count stored in the artifact.
        found: usize,
    },
    /// The engine configuration itself was invalid (persistence never
    /// started).
    Config(ConfigError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "storage i/o error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt persisted state: {m}"),
            PersistError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: header says {expected:016x}, payload hashes to {found:016x}"
            ),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build supports {supported})"
            ),
            PersistError::ConfigMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch: engine {expected:016x} vs stored {found:016x} \
                 (query direction, cache capacity, window, path features, policy, and label \
                 universe must match)"
            ),
            PersistError::DatasetMismatch { expected, found } => write!(
                f,
                "dataset fingerprint mismatch: engine {expected:016x} vs stored {found:016x} \
                 (persisted answers are only valid against the dataset that produced them)"
            ),
            PersistError::ShardMismatch { expected, found } => write!(
                f,
                "shard count mismatch: engine configured with {expected} shard(s) but the store \
                 was written with {found} (reopen with the original shard count, or rebuild)"
            ),
            PersistError::Config(e) => write!(f, "invalid engine configuration: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl From<ConfigError> for PersistError {
    fn from(e: ConfigError) -> PersistError {
        PersistError::Config(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> PersistError {
        PersistError::Corrupt(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// The storage abstraction
// ---------------------------------------------------------------------------

/// Storage backend for one engine's durable state: a single checkpoint
/// slot plus an append-only WAL.
///
/// Implementations must make [`save_checkpoint`](CacheStore::save_checkpoint)
/// and [`replace_wal`](CacheStore::replace_wal) *atomic* with respect to
/// crashes (readers see either the old or the new bytes, never a mix) —
/// [`DirStore`] uses temp-file + rename. [`append_wal`] only needs ordinary
/// append semantics; a crash mid-append produces a torn final record,
/// which recovery tolerates by design.
///
/// [`append_wal`]: CacheStore::append_wal
pub trait CacheStore: Send + Sync + fmt::Debug {
    /// Reads the current checkpoint, or `None` when none was ever saved.
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, PersistError>;

    /// Atomically replaces the checkpoint with `bytes`.
    fn save_checkpoint(&self, bytes: &[u8]) -> Result<(), PersistError>;

    /// Reads the whole WAL (empty vector when none exists).
    fn load_wal(&self) -> Result<Vec<u8>, PersistError>;

    /// Appends one encoded record (including its trailing newline).
    fn append_wal(&self, record: &[u8]) -> Result<(), PersistError>;

    /// Atomically replaces the whole WAL (compaction after a checkpoint
    /// or recovery).
    fn replace_wal(&self, bytes: &[u8]) -> Result<(), PersistError>;
}

/// Filesystem-backed [`CacheStore`]: a directory holding `checkpoint.igq`
/// and `wal.igq`. Checkpoint and WAL replacement go through a sibling
/// temp file + `rename` (with the file and its directory fsynced), so
/// crashes never leave a half-written artifact in place; WAL appends are
/// fsynced individually, so a flip is durable against power loss once
/// its drain returns.
///
/// **Single writer**: a store directory belongs to one live engine at a
/// time. Opening the same directory from a second engine (or process)
/// while the first is appending interleaves compactions with appends and
/// will be detected as corruption on the next recovery — coordinate
/// externally if multiple processes share a directory.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<DirStore, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(DirStore { dir })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.igq")
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.igq")
    }

    fn write_atomic(&self, target: &Path, bytes: &[u8]) -> Result<(), PersistError> {
        let tmp = target.with_extension("igq.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, target)?;
        // Make the rename itself durable: fsync the directory entry (best
        // effort — not every filesystem supports opening a directory).
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

impl CacheStore for DirStore {
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, PersistError> {
        match fs::read(self.checkpoint_path()) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn save_checkpoint(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.write_atomic(&self.checkpoint_path(), bytes)
    }

    fn load_wal(&self) -> Result<Vec<u8>, PersistError> {
        match fs::read(self.wal_path()) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    fn append_wal(&self, record: &[u8]) -> Result<(), PersistError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())?;
        f.write_all(record)?;
        // One fsync per window flip (appends are per-flip, not per-query):
        // the flip is durable against power loss once the drain returns.
        f.sync_all()?;
        Ok(())
    }

    fn replace_wal(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.write_atomic(&self.wal_path(), bytes)
    }
}

/// In-memory [`CacheStore`] for tests and benchmarks: the "filesystem" is
/// two byte buffers behind a mutex. Share one across "sessions" via
/// `Arc<MemStore>`, or [`fork`](MemStore::fork) an independent copy to
/// simulate a restart from a point-in-time snapshot.
#[derive(Debug, Default)]
pub struct MemStore {
    inner: Mutex<MemStoreInner>,
}

#[derive(Debug, Default)]
struct MemStoreInner {
    checkpoint: Option<Vec<u8>>,
    wal: Vec<u8>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// An independent deep copy of the current contents (a point-in-time
    /// "disk image" — useful for opening a second engine from the state a
    /// first engine had at this moment).
    pub fn fork(&self) -> MemStore {
        let inner = self.inner.lock();
        MemStore {
            inner: Mutex::new(MemStoreInner {
                checkpoint: inner.checkpoint.clone(),
                wal: inner.wal.clone(),
            }),
        }
    }

    /// Size of the current checkpoint in bytes (0 when none).
    pub fn checkpoint_bytes(&self) -> usize {
        self.inner.lock().checkpoint.as_ref().map_or(0, Vec::len)
    }

    /// Size of the current WAL in bytes.
    pub fn wal_bytes(&self) -> usize {
        self.inner.lock().wal.len()
    }

    /// Overwrites the checkpoint bytes directly (corruption-injection
    /// tests).
    pub fn set_checkpoint(&self, bytes: Option<Vec<u8>>) {
        self.inner.lock().checkpoint = bytes;
    }

    /// Returns a copy of the raw WAL bytes (corruption-injection tests).
    pub fn raw_wal(&self) -> Vec<u8> {
        self.inner.lock().wal.clone()
    }

    /// Overwrites the WAL bytes directly (corruption-injection tests).
    pub fn set_wal(&self, bytes: Vec<u8>) {
        self.inner.lock().wal = bytes;
    }
}

impl CacheStore for MemStore {
    fn load_checkpoint(&self) -> Result<Option<Vec<u8>>, PersistError> {
        Ok(self.inner.lock().checkpoint.clone())
    }

    fn save_checkpoint(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.inner.lock().checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn load_wal(&self) -> Result<Vec<u8>, PersistError> {
        Ok(self.inner.lock().wal.clone())
    }

    fn append_wal(&self, record: &[u8]) -> Result<(), PersistError> {
        self.inner.lock().wal.extend_from_slice(record);
        Ok(())
    }

    fn replace_wal(&self, bytes: &[u8]) -> Result<(), PersistError> {
        self.inner.lock().wal = bytes.to_vec();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fingerprints and checksums
// ---------------------------------------------------------------------------

/// FNV-1a over a byte slice — the artifact checksum. Not cryptographic;
/// it guards against truncation and bit rot, not adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv_fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the config fields that determine whether persisted
/// state is compatible: the query **direction** (a subgraph engine's
/// cached answer sets mean the opposite of a supergraph engine's), cache
/// geometry (`C`, `W`), the path-feature family both query indexes are
/// built from, the replacement policy (whose counters the artifacts
/// carry), and the configured label universe (the cost model's scale).
/// Deliberately *excludes* runtime tunables that do not change the
/// durable state's meaning — maintenance mode, lag bound, probe
/// threading, batch width, fast-path toggle, and the checkpoint cadence —
/// so a deployment can change those across restarts without invalidating
/// its store.
pub(crate) fn config_fingerprint(config: &crate::IgqConfig, direction: &str) -> u64 {
    let mut h = fnv1a64(b"igq-config-v1");
    h = fnv_fold(h, fnv1a64(direction.as_bytes()));
    h = fnv_fold(h, config.cache_capacity as u64);
    h = fnv_fold(h, config.window as u64);
    h = fnv_fold(h, config.path_config.max_len as u64);
    h = fnv_fold(h, config.path_config.include_vertices as u64);
    h = fnv_fold(h, config.path_config.budget);
    h = fnv_fold(h, fnv1a64(config.policy.name().as_bytes()));
    h = fnv_fold(h, config.label_universe as u64);
    h
}

/// Structural fingerprint of a dataset: graph count plus, per graph, the
/// vertex labels and every edge (endpoints and edge label). Persisted
/// answers are graph *ids* whose correctness depends on the exact graph
/// structure, so any edit — a different file, regenerated data, a
/// reordered store, a single rewired or relabeled edge — must change the
/// fingerprint. One O(V + E) pass at engine open.
pub(crate) fn dataset_fingerprint(store: &GraphStore) -> u64 {
    let mut h = fnv1a64(b"igq-dataset-v1");
    h = fnv_fold(h, store.len() as u64);
    for (_, g) in store.iter() {
        h = fnv_fold(h, g.vertex_count() as u64);
        h = fnv_fold(h, g.edge_count() as u64);
        // Vertex labels folded positionally (a sum would let label
        // permutations collide, and answers are not permutation-safe).
        for v in g.vertices() {
            h = fnv_fold(h, g.label(v).raw() as u64);
        }
        if g.has_edge_labels() {
            for ((u, v), l) in g.labeled_edges() {
                h = fnv_fold(h, ((u.raw() as u64) << 32) | v.raw() as u64);
                h = fnv_fold(h, l.raw() as u64);
            }
        } else {
            for &(u, v) in g.edges() {
                h = fnv_fold(h, ((u.raw() as u64) << 32) | v.raw() as u64);
            }
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Durable state model (crate-internal)
// ---------------------------------------------------------------------------

/// One cached slot's enumerated path features, persisted so recovery can
/// rebuild the query indexes without re-enumerating any graph.
#[derive(Debug, Clone)]
pub(crate) struct SlotFeatureSet {
    /// Distinct canonical label sequences with occurrence counts.
    pub counts: Vec<(LabelSeq, u32)>,
    /// Deepest exhaustively enumerated path length.
    pub complete_len: usize,
}

/// One persisted cache entry: the slot it occupies plus everything the
/// live [`CacheEntry`] holds, with its feature set alongside.
#[derive(Debug, Clone)]
pub(crate) struct PersistedEntry {
    pub slot: usize,
    pub entry: CacheEntry,
    /// `None` in WAL records (recovery re-enumerates the short tail);
    /// always present in checkpoints.
    pub features: Option<SlotFeatureSet>,
}

/// The checkpoint's decoded payload.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointData {
    /// Window flips covered by this snapshot; WAL records with `seq`
    /// beyond it are the replay tail.
    pub seq: u64,
    /// Fingerprint of the writing engine's config.
    pub config_fp: u64,
    /// Fingerprint of the writing engine's dataset.
    pub dataset_fp: u64,
    /// Resolved label-universe size of the writing engine's cost model.
    pub labels: usize,
    /// The cache's maintenance-round counter.
    pub round: u64,
    /// Size of the cache's slot table.
    pub slot_count: usize,
    /// Free-slot stack, bottom first (order feeds future admissions).
    pub free: Vec<usize>,
    /// Occupied slots.
    pub entries: Vec<PersistedEntry>,
    /// Pending admission window (`Itemp`), in arrival order.
    pub window: Vec<WindowEntry>,
    /// State shard count of the writing engine. `1` (the pre-sharding
    /// default, omitted from the encoding) means a single partition.
    pub shards: usize,
    /// Failover epoch of the writing engine: bumped on every follower
    /// promotion so a stale primary's stream is fenced. `0` (the
    /// pre-failover default, omitted from the encoding) means the engine
    /// was never promoted.
    pub epoch: u64,
}

/// One WAL record: everything a window flip changed *within one shard*.
/// With a single shard (the default) a flip is exactly one record; a
/// sharded engine multiplexes one record per touched shard into the same
/// log, all sharing the flip's `seq` and each declaring the flip's total
/// record count (`group`) so recovery can detect a partially appended
/// flip group at the tail.
#[derive(Debug, Clone)]
pub(crate) struct WalRecord {
    /// Flip ordinal (1-based, contiguous; shared by every record of one
    /// flip group).
    pub seq: u64,
    /// Shard this record's deltas belong to (`0`, omitted from the
    /// encoding, for unsharded engines).
    pub shard: usize,
    /// Number of records in this flip's group (`1`, omitted from the
    /// encoding, for unsharded engines).
    pub group: usize,
    /// Slots whose occupant was evicted, in eviction order.
    pub evicted: Vec<usize>,
    /// Admitted entries, in admission order (no feature sets — replay
    /// re-enumerates the tail).
    pub admitted: Vec<PersistedEntry>,
    /// Post-flip replacement metadata of every resident slot of this
    /// record's shard. Replay applies the *last* table per shard; earlier
    /// tables are superseded.
    pub metas: Vec<(usize, GraphMeta)>,
}

/// The WAL's decoded header.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WalHeader {
    pub config_fp: u64,
    pub dataset_fp: u64,
    /// State shard count of the writing engine (`1`, omitted from the
    /// encoding, for unsharded engines).
    pub shards: usize,
    /// Failover epoch of the writing engine (`0`, omitted from the
    /// encoding, for never-promoted engines).
    pub epoch: u64,
}

/// The outcome of parsing a WAL byte stream.
#[derive(Debug)]
pub(crate) struct WalParse {
    /// `None` for an empty (never-written) WAL.
    pub header: Option<WalHeader>,
    /// Every intact record, in file order.
    pub records: Vec<WalRecord>,
    /// `true` when a torn final record was dropped (crash mid-append).
    pub torn_tail: bool,
}

// ---------------------------------------------------------------------------
// JSON codec helpers
// ---------------------------------------------------------------------------

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, PersistError> {
    match v.get(name) {
        Some(f) => Ok(f),
        None => Err(PersistError::Corrupt(format!("missing field {name:?}"))),
    }
}

fn u64_field(v: &Value, name: &str) -> Result<u64, PersistError> {
    field(v, name)?
        .as_u64()
        .ok_or_else(|| PersistError::Corrupt(format!("field {name:?} is not an unsigned integer")))
}

fn usize_field(v: &Value, name: &str) -> Result<usize, PersistError> {
    Ok(u64_field(v, name)? as usize)
}

/// A presence-optional unsigned field: `default` when absent (the
/// pre-sharding encodings omit shard-related fields entirely).
fn opt_usize_field(v: &Value, name: &str, default: usize) -> Result<usize, PersistError> {
    match v.get(name) {
        None => Ok(default),
        Some(f) => f.as_u64().map(|u| u as usize).ok_or_else(|| {
            PersistError::Corrupt(format!("field {name:?} is not an unsigned integer"))
        }),
    }
}

/// A presence-optional `u64` field: `default` when absent (pre-failover
/// encodings omit the epoch entirely).
fn opt_u64_field(v: &Value, name: &str, default: u64) -> Result<u64, PersistError> {
    match v.get(name) {
        None => Ok(default),
        Some(f) => f.as_u64().ok_or_else(|| {
            PersistError::Corrupt(format!("field {name:?} is not an unsigned integer"))
        }),
    }
}

fn array_field<'v>(v: &'v Value, name: &str) -> Result<&'v Vec<Value>, PersistError> {
    field(v, name)?
        .as_array()
        .ok_or_else(|| PersistError::Corrupt(format!("field {name:?} is not an array")))
}

fn meta_to_json(m: &GraphMeta) -> Value {
    json!({
        "hits": m.hits,
        "seen": m.queries_seen,
        "removed": m.removed,
        // LogValue is an `f64` exponent that can legitimately be -inf
        // (never-hit entries); JSON has no -inf, so the exact bit pattern
        // is stored instead.
        "cost_bits": m.cost_alleviated.ln().to_bits(),
        "last": m.last_hit_at,
    })
}

fn meta_from_json(v: &Value) -> Result<GraphMeta, PersistError> {
    Ok(GraphMeta {
        hits: u64_field(v, "hits")?,
        queries_seen: u64_field(v, "seen")?,
        removed: u64_field(v, "removed")?,
        cost_alleviated: LogValue::from_ln(f64::from_bits(u64_field(v, "cost_bits")?)),
        last_hit_at: u64_field(v, "last")?,
    })
}

fn sig_to_json(s: &GraphSignature) -> Value {
    json!({ "v": s.vertices, "e": s.edges, "h": s.wl_hash })
}

fn sig_from_json(v: &Value) -> Result<GraphSignature, PersistError> {
    Ok(GraphSignature {
        vertices: u64_field(v, "v")? as u32,
        edges: u64_field(v, "e")? as u32,
        wl_hash: u64_field(v, "h")?,
    })
}

fn code_to_json(code: &Option<CanonicalCode>) -> Value {
    match code {
        None => Value::Null,
        Some(c) => c.words().to_vec().to_json(),
    }
}

fn code_from_json(v: &Value) -> Result<Option<CanonicalCode>, PersistError> {
    match v {
        Value::Null => Ok(None),
        other => {
            let words: Vec<u64> = FromJson::from_json(other)?;
            Ok(Some(CanonicalCode::from_words(words)))
        }
    }
}

/// Compact flat-text form of a graph: `"l,l,l|u-v,u-v"` (vertex labels,
/// then edges; labeled edges append `:e` per edge). Checkpoints hold one
/// graph per cached entry, and the `Value`-tree form costs a parse
/// allocation per vertex and per edge — the flat form is the single
/// biggest lever on warm-restart time.
fn graph_to_json(g: &Graph) -> Value {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(g.vertex_count() * 3 + g.edge_count() * 7);
    for (i, v) in g.vertices().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", g.label(v).raw());
    }
    s.push('|');
    if g.has_edge_labels() {
        for (i, ((u, v), l)) in g.labeled_edges().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}-{}:{}", u.raw(), v.raw(), l.raw());
        }
    } else {
        for (i, &(u, v)) in g.edges().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}-{}", u.raw(), v.raw());
        }
    }
    Value::String(s)
}

fn graph_from_json(v: &Value) -> Result<Graph, PersistError> {
    let Some(s) = v.as_str() else {
        // Tolerate the verbose `{labels, edges}` object form too.
        return Ok(FromJson::from_json(v)?);
    };
    let bad = |what: &str| PersistError::Corrupt(format!("malformed compact graph: {what}"));
    let (labels_part, edges_part) = s.split_once('|').ok_or_else(|| bad("no separator"))?;
    let labels: Vec<u32> = labels_part
        .split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<u32>().map_err(|_| bad("vertex label")))
        .collect::<Result<_, _>>()?;
    let mut b = igq_graph::GraphBuilder::with_capacity(labels.len(), 0);
    for l in labels {
        b.add_vertex(LabelId::new(l));
    }
    for tok in edges_part.split(',').filter(|t| !t.is_empty()) {
        let (endpoints, label) = match tok.split_once(':') {
            Some((e, l)) => (e, Some(l)),
            None => (tok, None),
        };
        let (u, v) = endpoints.split_once('-').ok_or_else(|| bad("edge"))?;
        let u: u32 = u.parse().map_err(|_| bad("edge endpoint"))?;
        let v: u32 = v.parse().map_err(|_| bad("edge endpoint"))?;
        let result = match label {
            Some(l) => {
                let l: u32 = l.parse().map_err(|_| bad("edge label"))?;
                b.add_edge_labeled(
                    igq_graph::VertexId::new(u),
                    igq_graph::VertexId::new(v),
                    LabelId::new(l),
                )
            }
            None => b.add_edge(igq_graph::VertexId::new(u), igq_graph::VertexId::new(v)),
        };
        result.map_err(|e| bad(&e.to_string()))?;
    }
    b.try_build().map_err(|e| bad(&e.to_string()))
}

fn answers_to_json(answers: &[GraphId]) -> Value {
    answers
        .iter()
        .map(|id| id.raw())
        .collect::<Vec<u32>>()
        .to_json()
}

fn answers_from_json(v: &Value) -> Result<Vec<GraphId>, PersistError> {
    let raw: Vec<u32> = FromJson::from_json(v)?;
    Ok(raw.into_iter().map(GraphId::new).collect())
}

/// Compact flat-text form of a feature multiset:
/// `"<complete_len>|l.l.l:c;l.l:c;..."`. A checkpoint holds hundreds of
/// features per slot; one string parsed with `split` is close to an
/// order of magnitude cheaper than a `Value` tree per path — and this
/// parse cost is exactly what warm restart pays, so it is kept minimal.
fn features_to_json(f: &SlotFeatureSet) -> Value {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(8 + f.counts.len() * 12);
    let _ = write!(s, "{}|", f.complete_len);
    for (i, (seq, count)) in f.counts.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        for (j, l) in seq.labels().iter().enumerate() {
            if j > 0 {
                s.push('.');
            }
            let _ = write!(s, "{}", l.raw());
        }
        let _ = write!(s, ":{count}");
    }
    Value::String(s)
}

fn features_from_json(v: &Value) -> Result<SlotFeatureSet, PersistError> {
    let s = v
        .as_str()
        .ok_or_else(|| PersistError::Corrupt("feature set is not a string".into()))?;
    let (cl, rest) = s
        .split_once('|')
        .ok_or_else(|| PersistError::Corrupt("feature set missing depth prefix".into()))?;
    let complete_len: usize = cl
        .parse()
        .map_err(|_| PersistError::Corrupt("bad feature depth".into()))?;
    let mut counts = Vec::new();
    let mut labels: Vec<LabelId> = Vec::new();
    for item in rest.split(';').filter(|i| !i.is_empty()) {
        let (seq_part, count_part) = item
            .rsplit_once(':')
            .ok_or_else(|| PersistError::Corrupt("feature missing count".into()))?;
        labels.clear();
        for tok in seq_part.split('.') {
            let raw: u32 = tok
                .parse()
                .map_err(|_| PersistError::Corrupt("bad feature label".into()))?;
            labels.push(LabelId::new(raw));
        }
        let count: u32 = count_part
            .parse()
            .map_err(|_| PersistError::Corrupt("bad feature count".into()))?;
        counts.push((LabelSeq::canonical(&labels), count));
    }
    Ok(SlotFeatureSet {
        counts,
        complete_len,
    })
}

fn entry_to_json(e: &PersistedEntry) -> Value {
    json!({
        "slot": e.slot,
        "graph": graph_to_json(&e.entry.graph),
        "answers": answers_to_json(&e.entry.answers),
        "sig": sig_to_json(&e.entry.signature),
        "code": code_to_json(&e.entry.code),
        "meta": meta_to_json(&e.entry.meta),
        "feat": match &e.features {
            Some(f) => features_to_json(f),
            None => Value::Null,
        },
    })
}

fn entry_from_json(v: &Value) -> Result<PersistedEntry, PersistError> {
    let graph: Graph = graph_from_json(field(v, "graph")?)?;
    let features = match field(v, "feat")? {
        Value::Null => None,
        other => Some(features_from_json(other)?),
    };
    Ok(PersistedEntry {
        slot: usize_field(v, "slot")?,
        entry: CacheEntry {
            graph: Arc::new(graph),
            signature: sig_from_json(field(v, "sig")?)?,
            code: code_from_json(field(v, "code")?)?,
            answers: answers_from_json(field(v, "answers")?)?,
            meta: meta_from_json(field(v, "meta")?)?,
        },
        features,
    })
}

fn window_entry_to_json(w: &WindowEntry) -> Value {
    json!({
        "graph": graph_to_json(&w.graph),
        "answers": answers_to_json(&w.answers),
        "sig": match &w.signature {
            Some(s) => sig_to_json(s),
            None => Value::Null,
        },
        // The outer Option ("was canonicalization attempted?") and the
        // inner one ("did it fit the budget?") are persisted separately.
        "code_tried": w.code.is_some(),
        "code": match &w.code {
            Some(c) => code_to_json(c),
            None => Value::Null,
        },
    })
}

fn window_entry_from_json(v: &Value) -> Result<WindowEntry, PersistError> {
    let graph: Graph = graph_from_json(field(v, "graph")?)?;
    let signature = match field(v, "sig")? {
        Value::Null => None,
        other => Some(sig_from_json(other)?),
    };
    let code_tried = matches!(field(v, "code_tried")?, Value::Bool(true));
    let code = if code_tried {
        Some(code_from_json(field(v, "code")?)?)
    } else {
        None
    };
    Ok(WindowEntry {
        graph: Arc::new(graph),
        answers: answers_from_json(field(v, "answers")?)?,
        signature,
        code,
    })
}

/// Compact flat-text form of a per-flip metadata table:
/// `"slot:hits,seen,removed,cost_bits_hex,last;..."`. Every WAL record
/// carries one entry per resident slot, so the same parse-cost argument
/// as [`features_to_json`] applies.
fn metas_to_json(metas: &[(usize, GraphMeta)]) -> Value {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(metas.len() * 24);
    for (i, (slot, m)) in metas.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(
            s,
            "{slot}:{},{},{},{:x},{}",
            m.hits,
            m.queries_seen,
            m.removed,
            m.cost_alleviated.ln().to_bits(),
            m.last_hit_at
        );
    }
    Value::String(s)
}

fn metas_from_json(v: &Value) -> Result<Vec<(usize, GraphMeta)>, PersistError> {
    let s = v
        .as_str()
        .ok_or_else(|| PersistError::Corrupt("meta table is not a string".into()))?;
    let bad = || PersistError::Corrupt("malformed meta table".into());
    let mut out = Vec::new();
    for item in s.split(';').filter(|i| !i.is_empty()) {
        let (slot, fields) = item.split_once(':').ok_or_else(bad)?;
        let slot: usize = slot.parse().map_err(|_| bad())?;
        let mut it = fields.split(',');
        let mut next = || it.next().ok_or_else(bad);
        let hits: u64 = next()?.parse().map_err(|_| bad())?;
        let queries_seen: u64 = next()?.parse().map_err(|_| bad())?;
        let removed: u64 = next()?.parse().map_err(|_| bad())?;
        let cost_bits = u64::from_str_radix(next()?, 16).map_err(|_| bad())?;
        let last_hit_at: u64 = next()?.parse().map_err(|_| bad())?;
        out.push((
            slot,
            GraphMeta {
                hits,
                queries_seen,
                removed,
                cost_alleviated: LogValue::from_ln(f64::from_bits(cost_bits)),
                last_hit_at,
            },
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Checkpoint encode/decode
// ---------------------------------------------------------------------------

/// Encodes a checkpoint to its on-disk bytes (header line + payload).
pub(crate) fn encode_checkpoint(data: &CheckpointData) -> Vec<u8> {
    let mut payload = json!({
        "kind": "igq-checkpoint",
        "version": CHECKPOINT_VERSION,
        "seq": data.seq,
        "config_fp": data.config_fp,
        "dataset_fp": data.dataset_fp,
        "labels": data.labels,
        "round": data.round,
        "slot_count": data.slot_count,
        "free": data.free.to_json(),
        "entries": Value::Array(data.entries.iter().map(entry_to_json).collect()),
        "window": Value::Array(data.window.iter().map(window_entry_to_json).collect()),
    });
    // Presence-optional: unsharded, never-promoted checkpoints stay
    // byte-identical to the pre-sharding/pre-failover formats (and older
    // checkpoints decode as `shards == 1`, `epoch == 0`).
    if let Value::Object(map) = &mut payload {
        if data.shards > 1 {
            map.insert("shards".into(), (data.shards as u64).to_json());
        }
        if data.epoch > 0 {
            map.insert("epoch".into(), data.epoch.to_json());
        }
    }
    let body = serde_json::to_string(&payload).expect("checkpoint serializes");
    let mut out = format!(
        "{CKPT_MAGIC} {:016x} {}\n",
        fnv1a64(body.as_bytes()),
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Decodes and verifies checkpoint bytes (magic, version, checksum).
/// Fingerprint validation against the opening engine is the caller's job
/// (the fingerprints are in the returned data). The codec is auto-detected
/// from the magic prefix, so an engine configured for one codec still
/// opens a store written under the other.
pub(crate) fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointData, PersistError> {
    if bytes.starts_with(BCKPT_MAGIC) {
        return decode_checkpoint_binary(bytes);
    }
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| PersistError::Corrupt("checkpoint has no header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| PersistError::Corrupt("checkpoint header is not UTF-8".into()))?;
    let mut parts = header.split_whitespace();
    let (magic, crc_hex, len) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(c), Some(l)) => (m, c, l),
        _ => return Err(PersistError::Corrupt("malformed checkpoint header".into())),
    };
    if magic != CKPT_MAGIC {
        return Err(PersistError::Corrupt(format!(
            "bad checkpoint magic {magic:?}"
        )));
    }
    let expected = u64::from_str_radix(crc_hex, 16)
        .map_err(|_| PersistError::Corrupt("bad checkpoint checksum field".into()))?;
    let len: usize = len
        .parse()
        .map_err(|_| PersistError::Corrupt("bad checkpoint length field".into()))?;
    let body = &bytes[newline + 1..];
    if body.len() != len {
        return Err(PersistError::Corrupt(format!(
            "checkpoint payload length {} does not match header {len}",
            body.len()
        )));
    }
    let found = fnv1a64(body);
    if found != expected {
        return Err(PersistError::Checksum { expected, found });
    }
    let body = std::str::from_utf8(body)
        .map_err(|_| PersistError::Corrupt("checkpoint payload is not UTF-8".into()))?;
    let v: Value = serde_json::from_str(body)?;
    let version = u64_field(&v, "version")?;
    if version != CHECKPOINT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let entries = array_field(&v, "entries")?
        .iter()
        .map(entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let window = array_field(&v, "window")?
        .iter()
        .map(window_entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CheckpointData {
        seq: u64_field(&v, "seq")?,
        config_fp: u64_field(&v, "config_fp")?,
        dataset_fp: u64_field(&v, "dataset_fp")?,
        labels: usize_field(&v, "labels")?,
        round: u64_field(&v, "round")?,
        slot_count: usize_field(&v, "slot_count")?,
        free: FromJson::from_json(field(&v, "free")?)?,
        entries,
        window,
        shards: opt_usize_field(&v, "shards", 1)?,
        epoch: opt_u64_field(&v, "epoch", 0)?,
    })
}

// ---------------------------------------------------------------------------
// WAL encode/decode
// ---------------------------------------------------------------------------

fn frame_line(tag: char, body: &str) -> Vec<u8> {
    format!(
        "{tag} {:016x} {} {body}\n",
        fnv1a64(body.as_bytes()),
        body.len()
    )
    .into_bytes()
}

/// Encodes the WAL header line binding the log to an engine identity.
pub(crate) fn encode_wal_header(h: &WalHeader) -> Vec<u8> {
    let mut payload = json!({
        "kind": "igq-wal",
        "version": WAL_VERSION,
        "config_fp": h.config_fp,
        "dataset_fp": h.dataset_fp,
    });
    if let Value::Object(map) = &mut payload {
        if h.shards > 1 {
            map.insert("shards".into(), (h.shards as u64).to_json());
        }
        if h.epoch > 0 {
            map.insert("epoch".into(), h.epoch.to_json());
        }
    }
    let body = serde_json::to_string(&payload).expect("wal header serializes");
    frame_line('H', &body)
}

/// Encodes one flip record as a framed WAL line. `seq` is always
/// serialized first ([`record_line_seq`] reads it raw); the shard tags
/// follow it and are omitted at their unsharded defaults, keeping
/// single-shard logs byte-identical to the pre-sharding format.
pub(crate) fn encode_wal_record(r: &WalRecord) -> Vec<u8> {
    let mut payload = json!({
        "seq": r.seq,
    });
    if let Value::Object(map) = &mut payload {
        if r.shard != 0 {
            map.insert("shard".into(), (r.shard as u64).to_json());
        }
        if r.group != 1 {
            map.insert("group".into(), (r.group as u64).to_json());
        }
        map.insert("evicted".into(), r.evicted.to_json());
        map.insert(
            "admitted".into(),
            Value::Array(r.admitted.iter().map(entry_to_json).collect()),
        );
        map.insert("metas".into(), metas_to_json(&r.metas));
    }
    let body = serde_json::to_string(&payload).expect("wal record serializes");
    frame_line('R', &body)
}

/// Splits one framed line into `(tag, payload)`, verifying length and
/// checksum. `Err` carries the reason; the caller decides whether the
/// position (final line or not) makes it a torn tail or corruption.
fn parse_line(line: &str) -> Result<(char, Value), String> {
    let mut chars = line.chars();
    let tag = chars.next().ok_or("empty line")?;
    let rest = chars
        .as_str()
        .strip_prefix(' ')
        .ok_or("missing separator")?;
    let (crc_hex, rest) = rest.split_once(' ').ok_or("missing checksum field")?;
    let (len_str, body) = rest.split_once(' ').ok_or("missing length field")?;
    let expected = u64::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum field")?;
    let len: usize = len_str.parse().map_err(|_| "bad length field")?;
    if body.len() != len {
        return Err(format!("length {} does not match header {len}", body.len()));
    }
    let found = fnv1a64(body.as_bytes());
    if found != expected {
        return Err(format!(
            "checksum mismatch ({expected:016x} vs {found:016x})"
        ));
    }
    let v: Value = serde_json::from_str(body).map_err(|e| e.to_string())?;
    Ok((tag, v))
}

fn record_from_json(v: &Value) -> Result<WalRecord, PersistError> {
    let admitted = array_field(v, "admitted")?
        .iter()
        .map(entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let group = opt_usize_field(v, "group", 1)?;
    if group == 0 {
        return Err(PersistError::Corrupt("WAL record with group == 0".into()));
    }
    Ok(WalRecord {
        seq: u64_field(v, "seq")?,
        shard: opt_usize_field(v, "shard", 0)?,
        group,
        evicted: FromJson::from_json(field(v, "evicted")?)?,
        admitted,
        metas: metas_from_json(field(v, "metas")?)?,
    })
}

/// Parses a WAL byte stream: header first, then records in order. A
/// damaged or truncated **final** line is tolerated (dropped, reported
/// via [`WalParse::torn_tail`]) — that is what a crash mid-append leaves
/// behind; damage anywhere else is [`PersistError::Corrupt`]. The codec
/// is auto-detected from the stream's magic prefix.
pub(crate) fn parse_wal(bytes: &[u8]) -> Result<WalParse, PersistError> {
    if bytes.starts_with(BWAL_MAGIC) {
        return parse_wal_binary(&bytes[BWAL_MAGIC.len()..]);
    }
    if bytes.is_empty() {
        return Ok(WalParse {
            header: None,
            records: Vec::new(),
            torn_tail: false,
        });
    }
    let text =
        std::str::from_utf8(bytes).map_err(|_| PersistError::Corrupt("WAL is not UTF-8".into()))?;
    // A well-formed WAL ends with '\n'; anything after the last newline is
    // a torn append. Each complete line must parse — except the last one,
    // which (if bad) is also treated as torn.
    let (complete, dangling) = match text.rfind('\n') {
        Some(i) => (&text[..i], &text[i + 1..]),
        None => ("", text),
    };
    let mut torn_tail = !dangling.is_empty();
    let lines: Vec<&str> = if complete.is_empty() {
        Vec::new()
    } else {
        complete.split('\n').collect()
    };
    let mut header = None;
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let is_last = i + 1 == lines.len() && !torn_tail;
        match parse_line(line) {
            Ok(('H', v)) => {
                if i != 0 {
                    return Err(PersistError::Corrupt(
                        "WAL header record not at start".into(),
                    ));
                }
                let version = u64_field(&v, "version")?;
                if version != WAL_VERSION {
                    return Err(PersistError::UnsupportedVersion {
                        found: version,
                        supported: WAL_VERSION,
                    });
                }
                header = Some(WalHeader {
                    config_fp: u64_field(&v, "config_fp")?,
                    dataset_fp: u64_field(&v, "dataset_fp")?,
                    shards: opt_usize_field(&v, "shards", 1)?,
                    epoch: opt_u64_field(&v, "epoch", 0)?,
                });
            }
            Ok(('R', v)) => {
                if header.is_none() {
                    return Err(PersistError::Corrupt("WAL record before header".into()));
                }
                records.push(record_from_json(&v)?);
            }
            Ok((tag, _)) => {
                return Err(PersistError::Corrupt(format!(
                    "unknown WAL record tag {tag:?}"
                )))
            }
            Err(reason) => {
                if is_last {
                    // Crash mid-append: the final record is incomplete.
                    torn_tail = true;
                } else {
                    return Err(PersistError::Corrupt(format!(
                        "WAL line {} damaged mid-log: {reason}",
                        i + 1
                    )));
                }
            }
        }
    }
    if header.is_none() && (!records.is_empty() || !torn_tail) {
        return Err(PersistError::Corrupt("WAL has no header record".into()));
    }
    Ok(WalParse {
        header,
        records,
        torn_tail,
    })
}

/// Splits parsed WAL records into per-flip groups (consecutive records
/// sharing one `seq`) and validates each group against its declared
/// record count. An *incomplete trailing* group — a crash partway through
/// a multi-record sharded append — is dropped and reported like a torn
/// tail (`true` in the returned pair); an incomplete or over-full group
/// anywhere else, or records of one group disagreeing on `seq`/`group`,
/// is [`PersistError::Corrupt`].
pub(crate) fn split_flip_groups(
    records: Vec<WalRecord>,
) -> Result<(Vec<Vec<WalRecord>>, bool), PersistError> {
    let mut groups: Vec<Vec<WalRecord>> = Vec::new();
    for record in records {
        match groups.last_mut() {
            Some(group) if group[0].seq == record.seq => {
                if record.group != group[0].group {
                    return Err(PersistError::Corrupt(format!(
                        "WAL flip {} records disagree on group size ({} vs {})",
                        record.seq, group[0].group, record.group
                    )));
                }
                if group.len() == group[0].group {
                    return Err(PersistError::Corrupt(format!(
                        "WAL flip {} has more records than its declared group size {}",
                        record.seq, group[0].group
                    )));
                }
                group.push(record);
            }
            previous => {
                if let Some(group) = previous {
                    if group.len() != group[0].group {
                        return Err(PersistError::Corrupt(format!(
                            "WAL flip {} group incomplete mid-log ({} of {} records)",
                            group[0].seq,
                            group.len(),
                            group[0].group
                        )));
                    }
                }
                groups.push(vec![record]);
            }
        }
    }
    let mut torn_group = false;
    if let Some(group) = groups.last() {
        if group.len() != group[0].group {
            // The signature of a crash partway through appending a
            // sharded flip group: drop the whole flip, like a torn tail.
            torn_group = true;
            groups.pop();
        }
    }
    Ok((groups, torn_group))
}

/// Re-encodes a header plus records as a fresh WAL byte stream
/// (compaction).
pub(crate) fn encode_wal(header: &WalHeader, records: &[&WalRecord]) -> Vec<u8> {
    let mut out = encode_wal_header(header);
    for r in records {
        out.extend_from_slice(&encode_wal_record(r));
    }
    out
}

/// The `seq` of one framed record line, read from the payload prefix
/// without a full JSON decode ([`encode_wal_record`] always serializes
/// `seq` first; the shim's `Map` preserves insertion order).
fn record_line_seq(line: &str) -> Option<u64> {
    let body = line.splitn(4, ' ').nth(3)?;
    let rest = body.strip_prefix("{\"seq\":")?;
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// Checkpoint-time WAL compaction over **raw bytes**: keeps record lines
/// with `seq > keep_after` verbatim under a fresh header, dropping a torn
/// final line. Only each line's `seq` prefix is read — no per-record
/// JSON decode/re-encode — because this runs under the engine's submit
/// lock, where every microsecond blocks WAL appends. Returns the new
/// stream and the number of kept records. Damaged mid-log lines are kept
/// as-is (recovery, with time to spare, diagnoses them properly).
pub(crate) fn compact_wal(bytes: &[u8], keep_after: u64, header: &WalHeader) -> (Vec<u8>, u64) {
    let mut out = encode_wal_header(header);
    let mut kept = 0u64;
    if let Ok(text) = std::str::from_utf8(bytes) {
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break; // torn final append; checkpoint covers its flip
            }
            if !line.starts_with("R ") {
                continue; // old header
            }
            match record_line_seq(line) {
                Some(seq) if seq <= keep_after => {}
                _ => {
                    out.extend_from_slice(line.as_bytes());
                    kept += 1;
                }
            }
        }
    }
    (out, kept)
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------
//
// The [`StoreCodec::Binary`] encoding of the same durable state model:
// LEB128 varints for counts and small ordinals, fixed 8-byte
// little-endian words for dense bit patterns (canonical-code words, WL
// hashes, fingerprints, cost exponent bits), and delta-coded sorted
// answer sets. Layout:
//
// * **Checkpoint** — `IGQBCKP1` magic, then a `u64` LE FNV-1a checksum
//   over the payload, a `u64` LE payload length, and the payload
//   (version varint first).
// * **WAL** — `IGQBWAL1` magic, then self-delimiting frames: a tag byte
//   (`H`/`R`), a `u32` LE payload length, a `u64` LE payload checksum,
//   and the payload. A record payload serializes `seq` first so
//   checkpoint-time compaction can read it without decoding the frame.
//
// Both decoders are reached through the same [`decode_checkpoint`] /
// [`parse_wal`] entry points, which sniff the magic — the codec choice
// governs what gets *written*; reads accept either format, so a store
// written under one codec reopens under the other (and is rewritten in
// the configured codec by the open-time WAL compaction / next
// checkpoint). Torn-tail semantics mirror the text codec exactly: an
// incomplete or checksum-damaged **final** frame is dropped and
// reported, the same damage mid-stream is [`PersistError::Corrupt`].

/// Appends a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a binary payload. Every read is bounds-checked; errors
/// are plain strings the caller wraps into [`PersistError`] with frame
/// context (torn tail vs mid-stream corruption is positional, so the
/// reader itself cannot decide).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload (wanted {n} bytes, {} left)",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u64_le(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err("varint overflows u64".into());
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A claimed element count, sanity-bounded by the bytes actually
    /// present (each element costs at least `min_bytes`), so a damaged
    /// count cannot drive a pathological allocation.
    fn count(&mut self, what: &str, min_bytes: usize) -> Result<usize, String> {
        let n = self.varint()? as usize;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(format!("{what} count {n} exceeds payload"));
        }
        Ok(n)
    }
}

fn graph_to_bin(out: &mut Vec<u8>, g: &Graph) {
    put_varint(out, g.vertex_count() as u64);
    put_varint(out, g.edge_count() as u64);
    out.push(g.has_edge_labels() as u8);
    for v in g.vertices() {
        put_varint(out, g.label(v).raw() as u64);
    }
    if g.has_edge_labels() {
        for ((u, v), l) in g.labeled_edges() {
            put_varint(out, u.raw() as u64);
            put_varint(out, v.raw() as u64);
            put_varint(out, l.raw() as u64);
        }
    } else {
        for &(u, v) in g.edges() {
            put_varint(out, u.raw() as u64);
            put_varint(out, v.raw() as u64);
        }
    }
}

fn graph_from_bin(r: &mut Reader) -> Result<Graph, String> {
    let vcount = r.count("vertex", 1)?;
    let ecount = r.varint()? as usize;
    let labeled = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(format!("bad edge-label flag {other}")),
    };
    let mut b = igq_graph::GraphBuilder::with_capacity(vcount, ecount);
    for _ in 0..vcount {
        b.add_vertex(LabelId::new(r.varint()? as u32));
    }
    if ecount.saturating_mul(2) > r.remaining() {
        return Err(format!("edge count {ecount} exceeds payload"));
    }
    for _ in 0..ecount {
        let u = igq_graph::VertexId::new(r.varint()? as u32);
        let v = igq_graph::VertexId::new(r.varint()? as u32);
        let result = if labeled {
            b.add_edge_labeled(u, v, LabelId::new(r.varint()? as u32))
        } else {
            b.add_edge(u, v)
        };
        result.map_err(|e| e.to_string())?;
    }
    b.try_build().map_err(|e| e.to_string())
}

/// Answer ids are kept sorted by the engine, so consecutive deltas are
/// small; wrapping arithmetic keeps the round trip exact even for an
/// unsorted sequence (the delta simply goes wide).
fn answers_to_bin(out: &mut Vec<u8>, answers: &[GraphId]) {
    put_varint(out, answers.len() as u64);
    let mut prev = 0u32;
    for id in answers {
        put_varint(out, id.raw().wrapping_sub(prev) as u64);
        prev = id.raw();
    }
}

fn answers_from_bin(r: &mut Reader) -> Result<Vec<GraphId>, String> {
    let n = r.count("answer", 1)?;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u32;
    for _ in 0..n {
        prev = prev.wrapping_add(r.varint()? as u32);
        out.push(GraphId::new(prev));
    }
    Ok(out)
}

fn sig_to_bin(out: &mut Vec<u8>, s: &GraphSignature) {
    put_varint(out, s.vertices as u64);
    put_varint(out, s.edges as u64);
    put_u64_le(out, s.wl_hash);
}

fn sig_from_bin(r: &mut Reader) -> Result<GraphSignature, String> {
    Ok(GraphSignature {
        vertices: r.varint()? as u32,
        edges: r.varint()? as u32,
        wl_hash: r.u64_le()?,
    })
}

fn code_words_to_bin(out: &mut Vec<u8>, c: &CanonicalCode) {
    put_varint(out, c.words().len() as u64);
    for &w in c.words() {
        put_u64_le(out, w);
    }
}

fn code_words_from_bin(r: &mut Reader) -> Result<CanonicalCode, String> {
    let n = r.count("code word", 8)?;
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(r.u64_le()?);
    }
    Ok(CanonicalCode::from_words(words))
}

fn code_to_bin(out: &mut Vec<u8>, code: &Option<CanonicalCode>) {
    match code {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            code_words_to_bin(out, c);
        }
    }
}

fn code_from_bin(r: &mut Reader) -> Result<Option<CanonicalCode>, String> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(code_words_from_bin(r)?)),
        other => Err(format!("bad code flag {other}")),
    }
}

fn meta_to_bin(out: &mut Vec<u8>, m: &GraphMeta) {
    put_varint(out, m.hits);
    put_varint(out, m.queries_seen);
    put_varint(out, m.removed);
    // Same -inf-safety argument as [`meta_to_json`]: the exact `f64` bit
    // pattern of the log-domain cost, not a decimal rendering.
    put_u64_le(out, m.cost_alleviated.ln().to_bits());
    put_varint(out, m.last_hit_at);
}

fn meta_from_bin(r: &mut Reader) -> Result<GraphMeta, String> {
    Ok(GraphMeta {
        hits: r.varint()?,
        queries_seen: r.varint()?,
        removed: r.varint()?,
        cost_alleviated: LogValue::from_ln(f64::from_bits(r.u64_le()?)),
        last_hit_at: r.varint()?,
    })
}

fn features_to_bin(out: &mut Vec<u8>, f: &SlotFeatureSet) {
    put_varint(out, f.complete_len as u64);
    put_varint(out, f.counts.len() as u64);
    for (seq, count) in &f.counts {
        put_varint(out, seq.labels().len() as u64);
        for l in seq.labels() {
            put_varint(out, l.raw() as u64);
        }
        put_varint(out, *count as u64);
    }
}

fn features_from_bin(r: &mut Reader) -> Result<SlotFeatureSet, String> {
    let complete_len = r.varint()? as usize;
    let n = r.count("feature", 2)?;
    let mut counts = Vec::with_capacity(n);
    let mut labels: Vec<LabelId> = Vec::new();
    for _ in 0..n {
        let len = r.count("feature label", 1)?;
        labels.clear();
        for _ in 0..len {
            labels.push(LabelId::new(r.varint()? as u32));
        }
        counts.push((LabelSeq::canonical(&labels), r.varint()? as u32));
    }
    Ok(SlotFeatureSet {
        counts,
        complete_len,
    })
}

fn entry_to_bin(out: &mut Vec<u8>, e: &PersistedEntry) {
    put_varint(out, e.slot as u64);
    graph_to_bin(out, &e.entry.graph);
    answers_to_bin(out, &e.entry.answers);
    sig_to_bin(out, &e.entry.signature);
    code_to_bin(out, &e.entry.code);
    meta_to_bin(out, &e.entry.meta);
    match &e.features {
        None => out.push(0),
        Some(f) => {
            out.push(1);
            features_to_bin(out, f);
        }
    }
}

fn entry_from_bin(r: &mut Reader) -> Result<PersistedEntry, String> {
    let slot = r.varint()? as usize;
    let graph = graph_from_bin(r)?;
    let answers = answers_from_bin(r)?;
    let signature = sig_from_bin(r)?;
    let code = code_from_bin(r)?;
    let meta = meta_from_bin(r)?;
    let features = match r.u8()? {
        0 => None,
        1 => Some(features_from_bin(r)?),
        other => return Err(format!("bad feature flag {other}")),
    };
    Ok(PersistedEntry {
        slot,
        entry: CacheEntry {
            graph: Arc::new(graph),
            signature,
            code,
            answers,
            meta,
        },
        features,
    })
}

fn window_entry_to_bin(out: &mut Vec<u8>, w: &WindowEntry) {
    graph_to_bin(out, &w.graph);
    answers_to_bin(out, &w.answers);
    match &w.signature {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            sig_to_bin(out, s);
        }
    }
    // Three-way flag folding both Option layers: canonicalization not
    // attempted / attempted but over budget / attempted with a code.
    match &w.code {
        None => out.push(0),
        Some(None) => out.push(1),
        Some(Some(c)) => {
            out.push(2);
            code_words_to_bin(out, c);
        }
    }
}

fn window_entry_from_bin(r: &mut Reader) -> Result<WindowEntry, String> {
    let graph = graph_from_bin(r)?;
    let answers = answers_from_bin(r)?;
    let signature = match r.u8()? {
        0 => None,
        1 => Some(sig_from_bin(r)?),
        other => return Err(format!("bad signature flag {other}")),
    };
    let code = match r.u8()? {
        0 => None,
        1 => Some(None),
        2 => Some(Some(code_words_from_bin(r)?)),
        other => return Err(format!("bad window code flag {other}")),
    };
    Ok(WindowEntry {
        graph: Arc::new(graph),
        answers,
        signature,
        code,
    })
}

fn metas_to_bin(out: &mut Vec<u8>, metas: &[(usize, GraphMeta)]) {
    put_varint(out, metas.len() as u64);
    for (slot, m) in metas {
        put_varint(out, *slot as u64);
        meta_to_bin(out, m);
    }
}

fn metas_from_bin(r: &mut Reader) -> Result<Vec<(usize, GraphMeta)>, String> {
    let n = r.count("meta", 13)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let slot = r.varint()? as usize;
        out.push((slot, meta_from_bin(r)?));
    }
    Ok(out)
}

fn encode_checkpoint_binary(data: &CheckpointData) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + data.entries.len() * 128);
    put_varint(&mut p, CHECKPOINT_VERSION);
    put_varint(&mut p, data.seq);
    put_u64_le(&mut p, data.config_fp);
    put_u64_le(&mut p, data.dataset_fp);
    put_varint(&mut p, data.labels as u64);
    put_varint(&mut p, data.round);
    put_varint(&mut p, data.slot_count as u64);
    put_varint(&mut p, data.shards as u64);
    put_varint(&mut p, data.free.len() as u64);
    for &s in &data.free {
        put_varint(&mut p, s as u64);
    }
    put_varint(&mut p, data.entries.len() as u64);
    for e in &data.entries {
        entry_to_bin(&mut p, e);
    }
    put_varint(&mut p, data.window.len() as u64);
    for w in &data.window {
        window_entry_to_bin(&mut p, w);
    }
    // Trailing, presence-optional: never-promoted checkpoints stay
    // byte-identical to the pre-failover format, and pre-failover
    // artifacts (no trailing bytes) decode as epoch 0.
    if data.epoch > 0 {
        put_varint(&mut p, data.epoch);
    }
    let mut out = Vec::with_capacity(24 + p.len());
    out.extend_from_slice(BCKPT_MAGIC);
    put_u64_le(&mut out, fnv1a64(&p));
    put_u64_le(&mut out, p.len() as u64);
    out.extend_from_slice(&p);
    out
}

fn decode_checkpoint_binary(bytes: &[u8]) -> Result<CheckpointData, PersistError> {
    let corrupt = |m: String| PersistError::Corrupt(format!("binary checkpoint: {m}"));
    if bytes.len() < 24 {
        return Err(corrupt("truncated header".into()));
    }
    let expected = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(corrupt(format!(
            "payload length {} does not match header {len}",
            payload.len()
        )));
    }
    let found = fnv1a64(payload);
    if found != expected {
        return Err(PersistError::Checksum { expected, found });
    }
    let mut r = Reader::new(payload);
    let mut go = || -> Result<CheckpointData, String> {
        let version = r.varint()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!("@version:{version}"));
        }
        let seq = r.varint()?;
        let config_fp = r.u64_le()?;
        let dataset_fp = r.u64_le()?;
        let labels = r.varint()? as usize;
        let round = r.varint()?;
        let slot_count = r.varint()? as usize;
        let shards = r.varint()? as usize;
        let nfree = r.count("free slot", 1)?;
        let mut free = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free.push(r.varint()? as usize);
        }
        let nentries = r.count("entry", 16)?;
        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            entries.push(entry_from_bin(&mut r)?);
        }
        let nwindow = r.count("window entry", 4)?;
        let mut window = Vec::with_capacity(nwindow);
        for _ in 0..nwindow {
            window.push(window_entry_from_bin(&mut r)?);
        }
        // Optional trailing epoch (absent in pre-failover artifacts).
        let epoch = if r.remaining() > 0 { r.varint()? } else { 0 };
        if r.remaining() != 0 {
            return Err(format!("{} trailing bytes", r.remaining()));
        }
        Ok(CheckpointData {
            seq,
            config_fp,
            dataset_fp,
            labels,
            round,
            slot_count,
            free,
            entries,
            window,
            shards,
            epoch,
        })
    };
    go().map_err(|m| match m.strip_prefix("@version:") {
        Some(v) => PersistError::UnsupportedVersion {
            found: v.parse().unwrap_or(0),
            supported: CHECKPOINT_VERSION,
        },
        None => corrupt(m),
    })
}

/// One binary WAL frame: tag byte, `u32` LE payload length, `u64` LE
/// payload checksum, payload.
fn frame_bin(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + payload.len());
    out.push(tag);
    put_u32_le(&mut out, payload.len() as u32);
    put_u64_le(&mut out, fnv1a64(payload));
    out.extend_from_slice(payload);
    out
}

/// Bytes of the frame header preceding each binary WAL payload.
const BFRAME_HEADER: usize = 13;

fn encode_wal_header_binary(h: &WalHeader) -> Vec<u8> {
    let mut p = Vec::with_capacity(24);
    put_varint(&mut p, WAL_VERSION);
    put_u64_le(&mut p, h.config_fp);
    put_u64_le(&mut p, h.dataset_fp);
    put_varint(&mut p, h.shards as u64);
    // Trailing, presence-optional (see the checkpoint's epoch note).
    if h.epoch > 0 {
        put_varint(&mut p, h.epoch);
    }
    let mut out = BWAL_MAGIC.to_vec();
    out.extend_from_slice(&frame_bin(b'H', &p));
    out
}

fn encode_wal_record_binary(r: &WalRecord) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + r.admitted.len() * 64 + r.metas.len() * 16);
    // `seq` leads the payload: binary compaction reads it without
    // decoding the rest of the frame (the analogue of
    // [`record_line_seq`]).
    put_varint(&mut p, r.seq);
    put_varint(&mut p, r.shard as u64);
    put_varint(&mut p, r.group as u64);
    put_varint(&mut p, r.evicted.len() as u64);
    for &s in &r.evicted {
        put_varint(&mut p, s as u64);
    }
    put_varint(&mut p, r.admitted.len() as u64);
    for e in &r.admitted {
        entry_to_bin(&mut p, e);
    }
    metas_to_bin(&mut p, &r.metas);
    frame_bin(b'R', &p)
}

fn wal_header_from_bin(payload: &[u8]) -> Result<WalHeader, PersistError> {
    let mut r = Reader::new(payload);
    let mut go = || -> Result<(u64, WalHeader), String> {
        let version = r.varint()?;
        let h = WalHeader {
            config_fp: r.u64_le()?,
            dataset_fp: r.u64_le()?,
            shards: r.varint()? as usize,
            epoch: 0,
        };
        // Optional trailing epoch (absent in pre-failover artifacts).
        let h = WalHeader {
            epoch: if r.remaining() > 0 { r.varint()? } else { 0 },
            ..h
        };
        if r.remaining() != 0 {
            return Err(format!("{} trailing header bytes", r.remaining()));
        }
        Ok((version, h))
    };
    let (version, h) =
        go().map_err(|m| PersistError::Corrupt(format!("binary WAL header: {m}")))?;
    if version != WAL_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    Ok(h)
}

fn record_from_bin(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = Reader::new(payload);
    let seq = r.varint()?;
    let shard = r.varint()? as usize;
    let group = r.varint()? as usize;
    if group == 0 {
        return Err("WAL record with group == 0".into());
    }
    let nevicted = r.count("evicted slot", 1)?;
    let mut evicted = Vec::with_capacity(nevicted);
    for _ in 0..nevicted {
        evicted.push(r.varint()? as usize);
    }
    let nadmitted = r.count("admitted entry", 16)?;
    let mut admitted = Vec::with_capacity(nadmitted);
    for _ in 0..nadmitted {
        admitted.push(entry_from_bin(&mut r)?);
    }
    let metas = metas_from_bin(&mut r)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing record bytes", r.remaining()));
    }
    Ok(WalRecord {
        seq,
        shard,
        group,
        evicted,
        admitted,
        metas,
    })
}

/// Walks binary WAL frames (magic already stripped). Same positional
/// damage rules as the text parser: an incomplete or checksum-damaged
/// final frame is a torn tail, anything earlier is corruption.
fn parse_wal_binary(bytes: &[u8]) -> Result<WalParse, PersistError> {
    let mut header = None;
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut pos = 0usize;
    let mut index = 0usize;
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        if rem < BFRAME_HEADER {
            torn_tail = true;
            break;
        }
        let tag = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let expected = u64::from_le_bytes(bytes[pos + 5..pos + 13].try_into().expect("8 bytes"));
        let start = pos + BFRAME_HEADER;
        if rem - BFRAME_HEADER < len {
            torn_tail = true;
            break;
        }
        let payload = &bytes[start..start + len];
        let is_last = start + len == bytes.len();
        let found = fnv1a64(payload);
        if found != expected {
            if is_last {
                torn_tail = true;
                break;
            }
            return Err(PersistError::Corrupt(format!(
                "binary WAL frame {} damaged mid-log: checksum mismatch \
                 ({expected:016x} vs {found:016x})",
                index + 1
            )));
        }
        match tag {
            b'H' => {
                if index != 0 {
                    return Err(PersistError::Corrupt(
                        "WAL header record not at start".into(),
                    ));
                }
                header = Some(wal_header_from_bin(payload)?);
            }
            b'R' => {
                if header.is_none() {
                    return Err(PersistError::Corrupt("WAL record before header".into()));
                }
                match record_from_bin(payload) {
                    Ok(r) => records.push(r),
                    Err(_) if is_last => torn_tail = true,
                    Err(reason) => {
                        return Err(PersistError::Corrupt(format!(
                            "binary WAL frame {} damaged mid-log: {reason}",
                            index + 1
                        )));
                    }
                }
            }
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown binary WAL frame tag {other:#04x}"
                )));
            }
        }
        pos = start + len;
        index += 1;
    }
    if header.is_none() && (!records.is_empty() || !torn_tail) {
        return Err(PersistError::Corrupt("WAL has no header record".into()));
    }
    Ok(WalParse {
        header,
        records,
        torn_tail,
    })
}

/// Binary twin of [`compact_wal`]: keeps `R` frames with
/// `seq > keep_after` verbatim under a fresh header, reading only each
/// payload's leading `seq` varint; a torn final frame is dropped.
fn compact_wal_binary(bytes: &[u8], keep_after: u64, header: &WalHeader) -> (Vec<u8>, u64) {
    let mut out = encode_wal_header_binary(header);
    let mut kept = 0u64;
    let frames = &bytes[BWAL_MAGIC.len().min(bytes.len())..];
    let mut pos = 0usize;
    while pos < frames.len() {
        let rem = frames.len() - pos;
        if rem < BFRAME_HEADER {
            break; // torn final append; checkpoint covers its flip
        }
        let len =
            u32::from_le_bytes(frames[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        if rem - BFRAME_HEADER < len {
            break; // torn final append
        }
        let frame = &frames[pos..pos + BFRAME_HEADER + len];
        pos += BFRAME_HEADER + len;
        if frame[0] != b'R' {
            continue; // old header
        }
        match Reader::new(&frame[BFRAME_HEADER..]).varint() {
            Ok(seq) if seq <= keep_after => {}
            _ => {
                out.extend_from_slice(frame);
                kept += 1;
            }
        }
    }
    (out, kept)
}

// ---------------------------------------------------------------------------
// Codec dispatch
// ---------------------------------------------------------------------------

/// Encodes a checkpoint in the configured codec.
pub(crate) fn encode_checkpoint_with(data: &CheckpointData, codec: StoreCodec) -> Vec<u8> {
    match codec {
        StoreCodec::Json => encode_checkpoint(data),
        StoreCodec::Binary => encode_checkpoint_binary(data),
    }
}

/// Encodes one flip record in the configured codec (an appendable unit;
/// the stream's header/magic prefix comes from [`encode_wal_with`]).
pub(crate) fn encode_wal_record_with(r: &WalRecord, codec: StoreCodec) -> Vec<u8> {
    match codec {
        StoreCodec::Json => encode_wal_record(r),
        StoreCodec::Binary => encode_wal_record_binary(r),
    }
}

/// Re-encodes a header plus records as a fresh WAL stream in the
/// configured codec.
pub(crate) fn encode_wal_with(
    header: &WalHeader,
    records: &[&WalRecord],
    codec: StoreCodec,
) -> Vec<u8> {
    match codec {
        StoreCodec::Json => encode_wal(header, records),
        StoreCodec::Binary => {
            let mut out = encode_wal_header_binary(header);
            for r in records {
                out.extend_from_slice(&encode_wal_record_binary(r));
            }
            out
        }
    }
}

/// Checkpoint-time raw-byte WAL compaction in the configured codec.
/// When the stream on disk already matches `codec` (the steady state —
/// `Engine::open` rewrites the WAL in the configured codec), frames are
/// kept verbatim with only their `seq` prefix read. A codec switch
/// between open and checkpoint cannot happen within one engine, but a
/// mismatched stream still compacts correctly through a full
/// parse + re-encode.
pub(crate) fn compact_wal_with(
    bytes: &[u8],
    keep_after: u64,
    header: &WalHeader,
    codec: StoreCodec,
) -> (Vec<u8>, u64) {
    let input_binary = bytes.starts_with(BWAL_MAGIC);
    match (codec, input_binary) {
        (StoreCodec::Json, false) => compact_wal(bytes, keep_after, header),
        (StoreCodec::Binary, true) => compact_wal_binary(bytes, keep_after, header),
        _ => {
            let records = parse_wal(bytes).map(|p| p.records).unwrap_or_default();
            let kept: Vec<&WalRecord> = records.iter().filter(|r| r.seq > keep_after).collect();
            let n = kept.len() as u64;
            (encode_wal_with(header, &kept, codec), n)
        }
    }
}

// ---------------------------------------------------------------------------
// Replication delta-group codec
//
// The replication stream's wire unit is one committed flip group, encoded
// as the binary WAL codec's `R` frames back to back — no magic, no header
// (the subscription supplies both fingerprint checks and ordering). Decode
// is strict: a replicated group travels over a reliable stream, so any
// truncation or damage is an error and the whole group is rejected before
// a single record applies — the remote analogue of "a torn tail drops the
// whole flip group".

/// Encodes one flip group for the replication stream. A non-zero
/// `epoch` (the primary has been promoted at least once) leads the group
/// as an `E` frame — the group header followers fence stale primaries
/// by; epoch-0 groups stay byte-identical to the pre-failover stream
/// (and to the WAL's `R` frames).
pub(crate) fn encode_group_binary(records: &[WalRecord], epoch: u64) -> Vec<u8> {
    let mut out = Vec::new();
    if epoch > 0 {
        let mut p = Vec::with_capacity(4);
        put_varint(&mut p, epoch);
        out.extend_from_slice(&frame_bin(b'E', &p));
    }
    for r in records {
        out.extend_from_slice(&encode_wal_record_binary(r));
    }
    out
}

/// Decodes a replication delta group: an optional leading `E` (epoch)
/// frame, then binary `R` frames, strict. Returns the stream epoch (`0`
/// when the `E` frame is absent — a never-promoted primary) alongside
/// the records.
pub(crate) fn decode_group_binary(bytes: &[u8]) -> Result<(u64, Vec<WalRecord>), PersistError> {
    let mut epoch = 0u64;
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut index = 0usize;
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        if rem < BFRAME_HEADER {
            return Err(PersistError::Corrupt(
                "delta group ends in a truncated frame header".into(),
            ));
        }
        let tag = bytes[pos];
        if tag != b'R' && !(tag == b'E' && index == 0) {
            return Err(PersistError::Corrupt(format!(
                "unexpected delta-group frame tag {tag:#04x}"
            )));
        }
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let expected = u64::from_le_bytes(bytes[pos + 5..pos + 13].try_into().expect("8 bytes"));
        let start = pos + BFRAME_HEADER;
        if rem - BFRAME_HEADER < len {
            return Err(PersistError::Corrupt(
                "delta group ends in a truncated frame payload".into(),
            ));
        }
        let payload = &bytes[start..start + len];
        let found = fnv1a64(payload);
        if found != expected {
            return Err(PersistError::Checksum { expected, found });
        }
        if tag == b'E' {
            let mut r = Reader::new(payload);
            epoch = r
                .varint()
                .map_err(|m| PersistError::Corrupt(format!("delta-group epoch: {m}")))?;
            if r.remaining() != 0 {
                return Err(PersistError::Corrupt(
                    "delta-group epoch frame has trailing bytes".into(),
                ));
            }
        } else {
            records.push(
                record_from_bin(payload)
                    .map_err(|m| PersistError::Corrupt(format!("delta-group record: {m}")))?,
            );
        }
        pos = start + len;
        index += 1;
    }
    if records.is_empty() {
        return Err(PersistError::Corrupt("empty delta group".into()));
    }
    Ok((epoch, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    fn entry(slot: usize, label: u32) -> PersistedEntry {
        let g = graph_from(&[label, label + 1], &[(0, 1)]);
        let sig = GraphSignature::of(&g);
        let code = igq_graph::canon::canonical_code(&g);
        PersistedEntry {
            slot,
            entry: CacheEntry {
                graph: Arc::new(g),
                signature: sig,
                code,
                answers: vec![GraphId::new(1), GraphId::new(4)],
                meta: {
                    let mut m = GraphMeta::new();
                    m.tick();
                    m.record_hit(3, LogValue::from_linear(1e30));
                    m
                },
            },
            features: Some(SlotFeatureSet {
                counts: vec![
                    (LabelSeq::canonical(&[LabelId::new(label)]), 1),
                    (
                        LabelSeq::canonical(&[LabelId::new(label), LabelId::new(label + 1)]),
                        1,
                    ),
                ],
                complete_len: 4,
            }),
        }
    }

    fn checkpoint_data() -> CheckpointData {
        CheckpointData {
            seq: 7,
            config_fp: 11,
            dataset_fp: 22,
            labels: 5,
            round: 9,
            slot_count: 3,
            free: vec![2],
            entries: vec![entry(0, 0), entry(1, 3)],
            window: vec![WindowEntry {
                graph: Arc::new(graph_from(&[9], &[])),
                answers: vec![],
                signature: None,
                code: Some(None),
            }],
            shards: 1,
            epoch: 0,
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_everything() {
        let data = checkpoint_data();
        let bytes = encode_checkpoint(&data);
        let back = decode_checkpoint(&bytes).expect("decodes");
        assert_eq!(back.seq, 7);
        assert_eq!(back.config_fp, 11);
        assert_eq!(back.dataset_fp, 22);
        assert_eq!(back.labels, 5);
        assert_eq!(back.round, 9);
        assert_eq!(back.slot_count, 3);
        assert_eq!(back.free, vec![2]);
        assert_eq!(back.entries.len(), 2);
        let (a, b) = (&data.entries[0].entry, &back.entries[0].entry);
        assert_eq!(a.graph.as_ref(), b.graph.as_ref());
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.code, b.code);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.meta.hits, b.meta.hits);
        assert_eq!(a.meta.cost_alleviated, b.meta.cost_alleviated);
        let (fa, fb) = (
            data.entries[0].features.as_ref().unwrap(),
            back.entries[0].features.as_ref().unwrap(),
        );
        let (mut ca, mut cb) = (fa.counts.clone(), fb.counts.clone());
        ca.sort();
        cb.sort();
        assert_eq!(ca, cb);
        assert_eq!(back.window.len(), 1);
        assert_eq!(back.window[0].code, Some(None), "budget-miss code survives");
    }

    #[test]
    fn negative_infinity_cost_roundtrips_exactly() {
        let m = GraphMeta::new(); // cost = LogValue::ZERO = ln -inf
        let v = meta_to_json(&m);
        let back = meta_from_json(&v).expect("decodes");
        assert_eq!(back.cost_alleviated, LogValue::ZERO);
    }

    #[test]
    fn checkpoint_checksum_mismatch_is_detected() {
        let mut bytes = encode_checkpoint(&checkpoint_data());
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        match decode_checkpoint(&bytes) {
            Err(PersistError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_version_gate() {
        let data = checkpoint_data();
        let bytes = encode_checkpoint(&data);
        let text = String::from_utf8(bytes).unwrap();
        let (header, body) = text.split_once('\n').unwrap();
        let body = body.replace("\"version\":1", "\"version\":999");
        let mut forged = format!(
            "{} {:016x} {}\n",
            CKPT_MAGIC,
            fnv1a64(body.as_bytes()),
            body.len()
        );
        forged.push_str(&body);
        let _ = header;
        match decode_checkpoint(forged.as_bytes()) {
            Err(PersistError::UnsupportedVersion { found: 999, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    fn wal_record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            shard: 0,
            group: 1,
            evicted: vec![1],
            admitted: vec![PersistedEntry {
                features: None,
                ..entry(1, seq as u32)
            }],
            metas: vec![(0, GraphMeta::new()), (1, GraphMeta::new())],
        }
    }

    #[test]
    fn wal_roundtrip_and_torn_tail_tolerance() {
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 1,
            epoch: 0,
        };
        let mut bytes = encode_wal_header(&header);
        bytes.extend_from_slice(&encode_wal_record(&wal_record(1)));
        bytes.extend_from_slice(&encode_wal_record(&wal_record(2)));
        let parsed = parse_wal(&bytes).expect("clean parse");
        assert_eq!(parsed.records.len(), 2);
        assert!(!parsed.torn_tail);
        assert_eq!(parsed.header.unwrap().config_fp, 1);

        // Crash mid-append: chop the final record short.
        let torn = &bytes[..bytes.len() - 10];
        let parsed = parse_wal(torn).expect("torn tail tolerated");
        assert_eq!(parsed.records.len(), 1, "final record dropped");
        assert!(parsed.torn_tail);

        // Same damage mid-log is corruption, not a torn tail.
        let mut mid = encode_wal_header(&header);
        let mut r1 = encode_wal_record(&wal_record(1));
        r1.truncate(r1.len() - 10);
        r1.push(b'\n');
        mid.extend_from_slice(&r1);
        mid.extend_from_slice(&encode_wal_record(&wal_record(2)));
        match parse_wal(&mid) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn unsharded_encodings_omit_shard_fields_and_decode_to_defaults() {
        // Byte-level: a shards=1 engine's artifacts must not mention
        // sharding at all (forward-written logs stay readable by the
        // pre-sharding decoder, and vice versa).
        let ckpt = encode_checkpoint(&checkpoint_data());
        assert!(!String::from_utf8(ckpt.clone()).unwrap().contains("shards"));
        assert_eq!(decode_checkpoint(&ckpt).unwrap().shards, 1);
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 1,
            epoch: 0,
        };
        let line = encode_wal_record(&wal_record(3));
        let text = String::from_utf8(line.clone()).unwrap();
        assert!(!text.contains("shard") && !text.contains("group"));
        let bytes = [encode_wal_header(&header), line].concat();
        assert!(!String::from_utf8(encode_wal_header(&header))
            .unwrap()
            .contains("shards"));
        let parsed = parse_wal(&bytes).expect("parses");
        assert_eq!(parsed.header.unwrap().shards, 1);
        assert_eq!(parsed.records[0].shard, 0);
        assert_eq!(parsed.records[0].group, 1);
    }

    #[test]
    fn sharded_records_roundtrip_with_tags() {
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 4,
            epoch: 0,
        };
        let mut a = wal_record(5);
        a.shard = 2;
        a.group = 2;
        let mut b = wal_record(5);
        b.shard = 0;
        b.group = 2;
        let bytes = encode_wal(&header, &[&a, &b]);
        let parsed = parse_wal(&bytes).expect("parses");
        assert_eq!(parsed.header.unwrap().shards, 4);
        assert_eq!(parsed.records[0].shard, 2);
        assert_eq!(parsed.records[0].group, 2);
        assert_eq!(parsed.records[1].shard, 0);
        // `seq` still leads the payload so raw compaction keeps working
        // on tagged records.
        let line = String::from_utf8(encode_wal_record(&a)).unwrap();
        assert!(line
            .splitn(4, ' ')
            .nth(3)
            .unwrap()
            .starts_with("{\"seq\":5"));
        let (compacted, kept) = compact_wal(&bytes, 4, &header);
        assert_eq!(kept, 2);
        assert_eq!(parse_wal(&compacted).unwrap().records.len(), 2);
    }

    #[test]
    fn flip_groups_split_and_detect_incomplete_tails() {
        let rec = |seq: u64, shard: usize, group: usize| {
            let mut r = wal_record(seq);
            r.shard = shard;
            r.group = group;
            r
        };
        // Two complete groups.
        let (groups, torn) =
            split_flip_groups(vec![rec(1, 0, 2), rec(1, 1, 2), rec(2, 1, 1)]).expect("splits");
        assert!(!torn);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        // Incomplete trailing group: dropped, reported torn.
        let (groups, torn) =
            split_flip_groups(vec![rec(1, 0, 1), rec(2, 0, 3), rec(2, 1, 3)]).expect("splits");
        assert!(torn, "partial trailing flip group dropped");
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0][0].seq, 1);
        // Incomplete group mid-log is corruption.
        match split_flip_groups(vec![rec(1, 0, 2), rec(2, 0, 1)]) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
        // Disagreeing group sizes are corruption.
        match split_flip_groups(vec![rec(1, 0, 2), rec(1, 1, 3)]) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn empty_wal_parses_to_nothing() {
        let parsed = parse_wal(b"").expect("empty ok");
        assert!(parsed.header.is_none());
        assert!(parsed.records.is_empty());
        assert!(!parsed.torn_tail);
    }

    #[test]
    fn wal_compaction_roundtrips() {
        let header = WalHeader {
            config_fp: 5,
            dataset_fp: 6,
            shards: 1,
            epoch: 0,
        };
        let (r1, r2) = (wal_record(1), wal_record(2));
        let bytes = encode_wal(&header, &[&r1, &r2]);
        let parsed = parse_wal(&bytes).expect("parses");
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[1].seq, 2);
        assert_eq!(parsed.records[1].evicted, vec![1]);
        assert_eq!(parsed.records[1].metas.len(), 2);
    }

    #[test]
    fn raw_compaction_keeps_only_the_tail_and_drops_torn_bytes() {
        let header = WalHeader {
            config_fp: 9,
            dataset_fp: 10,
            shards: 1,
            epoch: 0,
        };
        let mut bytes = encode_wal_header(&header);
        for seq in 1..=4 {
            bytes.extend_from_slice(&encode_wal_record(&wal_record(seq)));
        }
        bytes.extend_from_slice(b"R 0000 torn-partial-append");
        let (compacted, kept) = compact_wal(&bytes, 2, &header);
        assert_eq!(kept, 2);
        let parsed = parse_wal(&compacted).expect("compacted WAL parses");
        assert_eq!(
            parsed.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(!parsed.torn_tail, "torn bytes dropped by compaction");
        assert_eq!(parsed.header.unwrap().config_fp, 9);
        // Kept records survive byte-identically (checksums still valid).
        let (again, kept_again) = compact_wal(&compacted, 0, &header);
        assert_eq!(kept_again, 2);
        assert_eq!(parse_wal(&again).expect("parses").records.len(), 2);
    }

    #[test]
    fn mem_store_fork_is_independent() {
        let a = MemStore::new();
        a.save_checkpoint(b"one").unwrap();
        a.append_wal(b"rec\n").unwrap();
        let b = a.fork();
        a.save_checkpoint(b"two").unwrap();
        a.replace_wal(b"").unwrap();
        assert_eq!(b.load_checkpoint().unwrap().unwrap(), b"one");
        assert_eq!(b.load_wal().unwrap(), b"rec\n");
        assert_eq!(a.load_checkpoint().unwrap().unwrap(), b"two");
        assert_eq!(a.wal_bytes(), 0);
    }

    #[test]
    fn dir_store_roundtrips_and_survives_missing_files() {
        let dir = std::env::temp_dir().join(format!("igq_dirstore_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DirStore::open(&dir).expect("open");
        assert!(store.load_checkpoint().unwrap().is_none());
        assert!(store.load_wal().unwrap().is_empty());
        store.save_checkpoint(b"ckpt").unwrap();
        store.append_wal(b"a\n").unwrap();
        store.append_wal(b"b\n").unwrap();
        assert_eq!(store.load_checkpoint().unwrap().unwrap(), b"ckpt");
        assert_eq!(store.load_wal().unwrap(), b"a\nb\n");
        store.replace_wal(b"c\n").unwrap();
        assert_eq!(store.load_wal().unwrap(), b"c\n");
        // Reopening sees the same state (it's the filesystem).
        let again = DirStore::open(&dir).expect("reopen");
        assert_eq!(again.load_checkpoint().unwrap().unwrap(), b"ckpt");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_react_to_relevant_changes_only() {
        let base = crate::IgqConfig::default();
        let fp = config_fingerprint(&base, "subgraph");
        assert_eq!(fp, config_fingerprint(&base, "subgraph"), "deterministic");
        let mut bigger = base;
        bigger.cache_capacity += 1;
        assert_ne!(fp, config_fingerprint(&bigger, "subgraph"));
        assert_ne!(
            fp,
            config_fingerprint(&base, "supergraph"),
            "the two query directions must never share a store"
        );
        let mut mode = base;
        mode.maintenance = crate::MaintenanceMode::Background;
        assert_eq!(
            fp,
            config_fingerprint(&mode, "subgraph"),
            "maintenance mode may change across restarts"
        );

        let a: GraphStore = vec![graph_from(&[0, 1], &[(0, 1)])].into_iter().collect();
        let b: GraphStore = vec![graph_from(&[0, 2], &[(0, 1)])].into_iter().collect();
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&a.clone()));
        // Same vertex/edge counts and label *multiset* — labels merely
        // permuted across vertices: must still differ (answers are
        // position-sensitive).
        let perm_a: GraphStore = vec![graph_from(&[1, 0, 2], &[(0, 1), (1, 2)])]
            .into_iter()
            .collect();
        let perm_b: GraphStore = vec![graph_from(&[0, 1, 2], &[(0, 1), (1, 2)])]
            .into_iter()
            .collect();
        assert_ne!(dataset_fingerprint(&perm_a), dataset_fingerprint(&perm_b));
        // Same vertex count, edge count, and label sum — only an edge
        // rewired: the fingerprint must still differ.
        let path: GraphStore = vec![graph_from(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)])]
            .into_iter()
            .collect();
        let star: GraphStore = vec![graph_from(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)])]
            .into_iter()
            .collect();
        assert_ne!(dataset_fingerprint(&path), dataset_fingerprint(&star));
        // Edge labels alone must also register.
        let el_a: GraphStore = vec![igq_graph::graph_from_el(&[0, 1], &[(0, 1, 1)])]
            .into_iter()
            .collect();
        let el_b: GraphStore = vec![igq_graph::graph_from_el(&[0, 1], &[(0, 1, 2)])]
            .into_iter()
            .collect();
        assert_ne!(dataset_fingerprint(&el_a), dataset_fingerprint(&el_b));
    }

    // -- binary codec ------------------------------------------------------

    #[test]
    fn varint_roundtrips_across_the_range() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
        // A malformed continuation that would overflow u64 must error,
        // not silently truncate.
        let mut r = Reader::new(&[0xff; 10]);
        assert!(r.varint().is_err());
    }

    #[test]
    fn binary_checkpoint_roundtrip_preserves_everything() {
        let data = checkpoint_data();
        let bytes = encode_checkpoint_with(&data, StoreCodec::Binary);
        assert!(bytes.starts_with(BCKPT_MAGIC));
        let back = decode_checkpoint(&bytes).expect("auto-detected binary decode");
        assert_eq!(back.seq, 7);
        assert_eq!(back.config_fp, 11);
        assert_eq!(back.dataset_fp, 22);
        assert_eq!(back.labels, 5);
        assert_eq!(back.round, 9);
        assert_eq!(back.slot_count, 3);
        assert_eq!(back.free, vec![2]);
        assert_eq!(back.shards, 1);
        assert_eq!(back.entries.len(), 2);
        let (a, b) = (&data.entries[0].entry, &back.entries[0].entry);
        assert_eq!(a.graph.as_ref(), b.graph.as_ref());
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.code, b.code);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.meta.hits, b.meta.hits);
        assert_eq!(a.meta.cost_alleviated, b.meta.cost_alleviated);
        let (fa, fb) = (
            data.entries[0].features.as_ref().unwrap(),
            back.entries[0].features.as_ref().unwrap(),
        );
        let (mut ca, mut cb) = (fa.counts.clone(), fb.counts.clone());
        ca.sort();
        cb.sort();
        assert_eq!(ca, cb);
        assert_eq!(fa.complete_len, fb.complete_len);
        assert_eq!(back.window.len(), 1);
        assert_eq!(back.window[0].code, Some(None), "budget-miss code survives");
        // -inf cost exponents (never-hit entries) cross the codec intact.
        let fresh = GraphMeta::new();
        let mut buf = Vec::new();
        meta_to_bin(&mut buf, &fresh);
        let back = meta_from_bin(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back.cost_alleviated, LogValue::ZERO);
    }

    #[test]
    fn binary_checkpoint_is_smaller_than_json() {
        let data = checkpoint_data();
        let json = encode_checkpoint_with(&data, StoreCodec::Json);
        let bin = encode_checkpoint_with(&data, StoreCodec::Binary);
        assert!(
            bin.len() < json.len(),
            "binary {} should undercut JSON {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn binary_checkpoint_checksum_and_version_gates() {
        let bytes = encode_checkpoint_with(&checkpoint_data(), StoreCodec::Binary);
        let mut flipped = bytes.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x01;
        match decode_checkpoint(&flipped) {
            Err(PersistError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
        // Forge an unsupported payload version (leading varint) with a
        // recomputed checksum: the gate must fire, not a decode error.
        let mut forged_payload = bytes[24..].to_vec();
        forged_payload[0] = 99; // version varint 1 -> 99
        let mut forged = BCKPT_MAGIC.to_vec();
        put_u64_le(&mut forged, fnv1a64(&forged_payload));
        put_u64_le(&mut forged, forged_payload.len() as u64);
        forged.extend_from_slice(&forged_payload);
        match decode_checkpoint(&forged) {
            Err(PersistError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        // Truncation that cuts into the payload is structural corruption.
        match decode_checkpoint(&bytes[..bytes.len() - 3]) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn binary_wal_roundtrip_and_torn_frame_tolerance() {
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 1,
            epoch: 0,
        };
        let mut a = wal_record(1);
        a.shard = 0;
        let bytes = encode_wal_with(&header, &[&a, &wal_record(2)], StoreCodec::Binary);
        assert!(bytes.starts_with(BWAL_MAGIC));
        let parsed = parse_wal(&bytes).expect("clean binary parse");
        assert_eq!(parsed.records.len(), 2);
        assert!(!parsed.torn_tail);
        assert_eq!(parsed.header.unwrap().config_fp, 1);
        assert_eq!(parsed.records[1].seq, 2);
        assert_eq!(parsed.records[1].evicted, vec![1]);
        assert_eq!(parsed.records[1].metas.len(), 2);
        assert_eq!(
            parsed.records[1].admitted[0].entry.answers,
            wal_record(2).admitted[0].entry.answers
        );

        // Crash mid-append: chop the final frame short.
        let torn = &bytes[..bytes.len() - 10];
        let parsed = parse_wal(torn).expect("torn tail tolerated");
        assert_eq!(parsed.records.len(), 1, "final frame dropped");
        assert!(parsed.torn_tail);

        // A bit flip in the *final* frame's payload is also a torn tail...
        let mut flipped = bytes.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x01;
        let parsed = parse_wal(&flipped).expect("damaged final frame tolerated");
        assert_eq!(parsed.records.len(), 1);
        assert!(parsed.torn_tail);

        // ...but the same damage mid-log is corruption.
        let r1 = encode_wal_record_with(&wal_record(1), StoreCodec::Binary);
        let mut mid = encode_wal_with(&header, &[], StoreCodec::Binary);
        let mut broken = r1.clone();
        let at = broken.len() - 2;
        broken[at] ^= 0x01;
        mid.extend_from_slice(&broken);
        mid.extend_from_slice(&encode_wal_record_with(&wal_record(2), StoreCodec::Binary));
        match parse_wal(&mid) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn binary_wal_sharded_groups_roundtrip() {
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 4,
            epoch: 0,
        };
        let mut a = wal_record(5);
        a.shard = 2;
        a.group = 2;
        let mut b = wal_record(5);
        b.shard = 0;
        b.group = 2;
        let bytes = encode_wal_with(&header, &[&a, &b], StoreCodec::Binary);
        let parsed = parse_wal(&bytes).expect("parses");
        assert_eq!(parsed.header.unwrap().shards, 4);
        assert_eq!(parsed.records[0].shard, 2);
        assert_eq!(parsed.records[0].group, 2);
        assert_eq!(parsed.records[1].shard, 0);
        let (groups, torn) = split_flip_groups(parsed.records).expect("splits");
        assert!(!torn);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn binary_raw_compaction_keeps_only_the_tail_and_drops_torn_bytes() {
        let header = WalHeader {
            config_fp: 9,
            dataset_fp: 10,
            shards: 1,
            epoch: 0,
        };
        let mut bytes = encode_wal_with(&header, &[], StoreCodec::Binary);
        for seq in 1..=4 {
            bytes.extend_from_slice(&encode_wal_record_with(
                &wal_record(seq),
                StoreCodec::Binary,
            ));
        }
        bytes.extend_from_slice(b"R torn-partial");
        let (compacted, kept) = compact_wal_with(&bytes, 2, &header, StoreCodec::Binary);
        assert_eq!(kept, 2);
        let parsed = parse_wal(&compacted).expect("compacted WAL parses");
        assert_eq!(
            parsed.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(!parsed.torn_tail, "torn bytes dropped by compaction");
        assert_eq!(parsed.header.unwrap().config_fp, 9);
        // Kept frames survive byte-identically (checksums still valid).
        let (again, kept_again) = compact_wal_with(&compacted, 0, &header, StoreCodec::Binary);
        assert_eq!(kept_again, 2);
        assert_eq!(parse_wal(&again).expect("parses").records.len(), 2);
    }

    #[test]
    fn cross_codec_compaction_reencodes_in_the_target_codec() {
        let header = WalHeader {
            config_fp: 3,
            dataset_fp: 4,
            shards: 1,
            epoch: 0,
        };
        // A JSON-text WAL compacted under the binary codec (the
        // migration path the first post-upgrade checkpoint takes when a
        // store skipped the open-time rewrite) comes out binary.
        let json = encode_wal(&header, &[&wal_record(1), &wal_record(2)]);
        let (bin, kept) = compact_wal_with(&json, 1, &header, StoreCodec::Binary);
        assert_eq!(kept, 1);
        assert!(bin.starts_with(BWAL_MAGIC));
        let parsed = parse_wal(&bin).expect("parses as binary");
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.records[0].seq, 2);
        // And the reverse direction lands back in text.
        let (text, kept) = compact_wal_with(&bin, 0, &header, StoreCodec::Json);
        assert_eq!(kept, 1);
        assert!(text.starts_with(b"H "));
        assert_eq!(parse_wal(&text).expect("parses as text").records.len(), 1);
    }

    #[test]
    fn delta_group_roundtrips_and_rejects_any_damage() {
        let mut a = wal_record(9);
        a.shard = 0;
        a.group = 2;
        let mut b = wal_record(9);
        b.shard = 1;
        b.group = 2;
        b.evicted = vec![0];
        let bytes = encode_group_binary(&[a.clone(), b.clone()], 0);
        let (epoch, back) = decode_group_binary(&bytes).expect("round-trips");
        assert_eq!(epoch, 0, "no E frame decodes as epoch 0");
        assert_eq!(back.len(), 2);
        assert_eq!((back[0].seq, back[0].shard, back[0].group), (9, 0, 2));
        assert_eq!((back[1].seq, back[1].shard, back[1].group), (9, 1, 2));
        assert_eq!(back[1].evicted, vec![0]);

        // Replication is strict: truncation anywhere is an error, not a
        // tolerated torn tail...
        assert!(matches!(
            decode_group_binary(&bytes[..bytes.len() - 3]),
            Err(PersistError::Corrupt(_))
        ));
        // ...as is a flipped payload bit (checksum)...
        let mut flipped = bytes.clone();
        let at = flipped.len() - 2;
        flipped[at] ^= 0x40;
        assert!(matches!(
            decode_group_binary(&flipped),
            Err(PersistError::Checksum { .. })
        ));
        // ...and an empty group.
        assert!(matches!(
            decode_group_binary(&[]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn delta_group_epoch_frame_roundtrips() {
        let r = wal_record(3);
        // A promoted primary's group leads with the E frame...
        let bytes = encode_group_binary(std::slice::from_ref(&r), 7);
        let (epoch, back) = decode_group_binary(&bytes).expect("round-trips");
        assert_eq!(epoch, 7);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].seq, 3);
        // ...an epoch-0 group carries no E frame (pre-failover bytes)...
        let plain = encode_group_binary(std::slice::from_ref(&r), 0);
        assert!(bytes.len() > plain.len());
        assert_eq!(plain[0], b'R');
        // ...an E frame anywhere but first is rejected...
        let e_frame = &bytes[..bytes.len() - plain.len()];
        let mut swapped = plain.clone();
        swapped.extend_from_slice(e_frame);
        assert!(matches!(
            decode_group_binary(&swapped),
            Err(PersistError::Corrupt(_))
        ));
        // ...and a lone E frame is an empty group.
        assert!(matches!(
            decode_group_binary(e_frame),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn epoch_is_presence_optional_in_both_codecs() {
        let mut data = checkpoint_data();
        // Epoch 0 stays byte-identical to the pre-failover encodings.
        data.epoch = 0;
        for codec in [StoreCodec::Json, StoreCodec::Binary] {
            let bytes = encode_checkpoint_with(&data, codec);
            assert_eq!(decode_checkpoint(&bytes).expect("decodes").epoch, 0);
        }
        assert!(!String::from_utf8_lossy(&encode_checkpoint(&data)).contains("epoch"));
        // A promoted engine's epoch survives both codecs.
        data.epoch = 5;
        for codec in [StoreCodec::Json, StoreCodec::Binary] {
            let bytes = encode_checkpoint_with(&data, codec);
            assert_eq!(decode_checkpoint(&bytes).expect("decodes").epoch, 5);
        }
        // Same for the WAL header.
        let header = WalHeader {
            config_fp: 1,
            dataset_fp: 2,
            shards: 1,
            epoch: 9,
        };
        for codec in [StoreCodec::Json, StoreCodec::Binary] {
            let bytes = encode_wal_with(&header, &[&wal_record(1)], codec);
            let parsed = parse_wal(&bytes).expect("parses");
            assert_eq!(parsed.header.expect("header").epoch, 9);
            // Compaction preserves the epoch through the fresh header.
            let (compacted, _) = compact_wal_with(&bytes, 0, &header, codec);
            assert_eq!(
                parse_wal(&compacted)
                    .expect("parses")
                    .header
                    .expect("header")
                    .epoch,
                9
            );
        }
    }
}
