//! `Isuper` — the supergraph component of the iGQ query index
//! (Section 6.2, Algorithms 1 & 2).
//!
//! Given a new query `g`, `Isuper` finds cached queries `G` with `G ⊆ g`
//! (whose stored answers then bound `g`'s answers from above, formula (5)).
//! It wraps the occurrence-counting [`ContainmentIndex`] and verifies each
//! Algorithm-2 candidate with VF2, satisfying formula (2): every returned
//! `G` really is a subgraph of `g`.
//!
//! Rebuilt wholesale during window maintenance, like [`crate::isub`].

use crate::cache::CacheEntry;
use igq_features::PathConfig;
use igq_graph::Graph;
use igq_iso::{vf2, IsoStats, MatchConfig};
use igq_methods::ContainmentIndex;

/// Supergraph index over the cached queries.
pub struct IsuperIndex {
    index: ContainmentIndex,
    graphs: Vec<Graph>,
}

impl IsuperIndex {
    /// Builds the index over the cache's current entries (member `i` =
    /// cache slot `i`).
    pub fn build(entries: &[CacheEntry], path_config: PathConfig) -> IsuperIndex {
        let graphs: Vec<Graph> = entries.iter().map(|e| e.graph.clone()).collect();
        let index = ContainmentIndex::build(graphs.iter(), path_config);
        IsuperIndex { index, graphs }
    }

    /// Cache slots whose graph is a (verified) subgraph of `q`, plus the
    /// iGQ-internal iso work performed.
    pub fn subgraphs_of(&self, q: &Graph) -> (Vec<usize>, IsoStats) {
        let mut stats = IsoStats::new();
        let mut slots = Vec::new();
        for member in self.index.candidates_for(q) {
            let cached = &self.graphs[member];
            if cached.vertex_count() > q.vertex_count() || cached.edge_count() > q.edge_count() {
                continue;
            }
            let r = vf2::find_one(cached, q, &MatchConfig::default());
            stats.record(&r);
            if r.outcome.is_found() {
                slots.push(member);
            }
        }
        (slots, stats)
    }

    /// Approximate heap footprint (Fig. 18 accounting).
    pub fn heap_size_bytes(&self) -> u64 {
        self.index.heap_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::{graph_from, GraphId};

    fn entry(labels: &[u32], edges: &[(u32, u32)]) -> CacheEntry {
        let graph = graph_from(labels, edges);
        let signature = igq_graph::canon::GraphSignature::of(&graph);
        let code = igq_graph::canon::canonical_code(&graph);
        CacheEntry { graph, signature, code, answers: vec![GraphId::new(0)], meta: Default::default() }
    }

    #[test]
    fn finds_subgraphs_among_cache() {
        let entries = vec![
            entry(&[0, 1], &[(0, 1)]),                       // slot 0: 0-1 edge
            entry(&[0, 1, 0], &[(0, 1), (1, 2)]),            // slot 1: 0-1-0 path
            entry(&[7, 7], &[(0, 1)]),                       // slot 2: unrelated
        ];
        let idx = IsuperIndex::build(&entries, PathConfig::default());
        let q = graph_from(&[0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3)]);
        let (slots, stats) = idx.subgraphs_of(&q);
        assert_eq!(slots, vec![0, 1]);
        assert!(stats.tests >= 2);
    }

    #[test]
    fn returns_only_true_subgraphs_formula_2() {
        let entries = vec![entry(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])]; // triangle
        let idx = IsuperIndex::build(&entries, PathConfig::default());
        let q = graph_from(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]); // P4: no triangle
        let (slots, _) = idx.subgraphs_of(&q);
        assert!(slots.is_empty());
    }

    #[test]
    fn occurrence_counting_prunes_before_verification() {
        // Cached graph needs two 0-labels; query has one: Algorithm 2 must
        // prune it without an iso test.
        let entries = vec![entry(&[0, 0], &[(0, 1)])];
        let idx = IsuperIndex::build(&entries, PathConfig::default());
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let (slots, stats) = idx.subgraphs_of(&q);
        assert!(slots.is_empty());
        assert_eq!(stats.tests, 0, "count filter should preempt iso tests");
    }

    #[test]
    fn empty_cache() {
        let idx = IsuperIndex::build(&[], PathConfig::default());
        let (slots, stats) = idx.subgraphs_of(&graph_from(&[0], &[]));
        assert!(slots.is_empty());
        assert_eq!(stats.tests, 0);
    }

    #[test]
    fn exact_same_graph_is_its_own_subgraph() {
        let entries = vec![entry(&[4, 5], &[(0, 1)])];
        let idx = IsuperIndex::build(&entries, PathConfig::default());
        let (slots, _) = idx.subgraphs_of(&graph_from(&[4, 5], &[(0, 1)]));
        assert_eq!(slots, vec![0]);
    }
}
