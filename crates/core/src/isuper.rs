//! `Isuper` — the supergraph component of the iGQ query index
//! (Section 6.2, Algorithms 1 & 2).
//!
//! Given a new query `g`, `Isuper` finds cached queries `G` with `G ⊆ g`
//! (whose stored answers then bound `g`'s answers from above, formula (5)).
//! It implements the paper's occurrence-counting trie directly over the
//! cache's stable slots and verifies each Algorithm-2 candidate with VF2,
//! satisfying formula (2): every returned `G` really is a subgraph of `g`.
//!
//! Like [`crate::isub`], the index is **incrementally maintained**:
//! [`IsuperIndex::insert`]/[`IsuperIndex::remove`] touch only the affected
//! slot's postings, so steady-state window maintenance is O(window delta);
//! the wholesale shadow rebuild of Section 5.2 survives as the
//! [`IsuperIndex::build`] cold-start path and the `ShadowRebuild` ablation
//! mode. Graphs are shared with the cache via `Arc`, not cloned.

use crate::isub::IndexSnapshot;
use igq_features::{enumerate_paths, FeatureTrie, LabelSeq, PathConfig, PathFeatures};
use igq_graph::canon::CanonicalCode;
use igq_graph::fxhash::FxHashMap;
use igq_graph::{Graph, GraphId};
use igq_iso::plan::{matches_with_plan, MatchPlan};
use igq_iso::plan_cache::PlanCache;
use igq_iso::{with_thread_scratch, IsoStats, MatchConfig};
use std::sync::Arc;

/// One indexed cache slot.
#[derive(Debug, Clone)]
struct SlotEntry {
    graph: Arc<Graph>,
    /// Distinct path features inserted for this slot (for removal);
    /// shared with the sibling `IsubIndex` entry when both were fed by
    /// one extraction.
    features: Arc<[LabelSeq]>,
    /// Cumulative distinct-feature counts by feature length
    /// (`nf_by_len[l]` = #distinct features with `edge_len ≤ l`).
    /// `NF[gi]` of Algorithm 1 is the last entry.
    nf_by_len: Vec<u32>,
    /// The cached query's canonical code, when the cache computed one —
    /// the probe's plan-cache key (this graph is the *pattern* of every
    /// probe pair it participates in).
    code: Option<CanonicalCode>,
}

/// Supergraph index over the cached queries, maintained incrementally.
/// `Clone` supports the background maintainer's double-buffered snapshots
/// (a deep copy seeds the fallback shadow buffer).
#[derive(Clone)]
pub struct IsuperIndex {
    path_config: PathConfig,
    trie: FeatureTrie,
    slots: Vec<Option<SlotEntry>>,
}

impl IsuperIndex {
    /// An empty index.
    pub fn new(path_config: PathConfig) -> IsuperIndex {
        IsuperIndex {
            path_config,
            trie: FeatureTrie::new(),
            slots: Vec::new(),
        }
    }

    /// Cold-start build over `(slot, graph)` pairs (engine construction,
    /// import, and the shadow-rebuild ablation path).
    pub fn build(
        entries: impl IntoIterator<Item = (usize, Arc<Graph>)>,
        path_config: PathConfig,
    ) -> IsuperIndex {
        let mut index = IsuperIndex::new(path_config);
        for (slot, graph) in entries {
            index.insert(slot, graph);
        }
        index
    }

    /// Indexes `graph` under `slot` (Algorithm 1 for one member),
    /// returning the number of postings touched. No canonical code is
    /// attached (probe pairs for this slot plan fresh); maintenance paths
    /// use [`IsuperIndex::insert_features`] to carry the cache's code.
    pub fn insert(&mut self, slot: usize, graph: Arc<Graph>) -> u64 {
        let features = enumerate_paths(&graph, &self.path_config);
        let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
        self.insert_features(slot, graph, &features, keys, None)
    }

    /// [`IsuperIndex::insert`] with the path features already extracted —
    /// window maintenance enumerates each admitted graph once and feeds
    /// the same `features`/`keys` to both indexes. `keys` must be the
    /// distinct feature sequences of `features`. `code` is the cached
    /// query's canonical code (the plan-cache key for probe pairs
    /// involving this slot), when the cache holds one.
    pub fn insert_features(
        &mut self,
        slot: usize,
        graph: Arc<Graph>,
        features: &PathFeatures,
        keys: Arc<[LabelSeq]>,
        code: Option<CanonicalCode>,
    ) -> u64 {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, || None);
        }
        debug_assert!(
            self.slots[slot].is_none(),
            "insert into occupied Isuper slot"
        );
        debug_assert_eq!(keys.len(), features.counts.len());
        let id = GraphId::from_index(slot);
        let mut by_len = vec![0u32; self.path_config.max_len + 1];
        for (seq, count) in &features.counts {
            self.trie.insert(seq, id, *count);
            by_len[seq.edge_len()] += 1;
        }
        for l in 1..by_len.len() {
            by_len[l] += by_len[l - 1];
        }
        let touched = keys.len() as u64;
        self.slots[slot] = Some(SlotEntry {
            graph,
            features: keys,
            nf_by_len: by_len,
            code,
        });
        touched
    }

    /// Unindexes `slot`, returning the number of postings touched.
    pub fn remove(&mut self, slot: usize) -> u64 {
        let Some(entry) = self.slots.get_mut(slot).and_then(Option::take) else {
            return 0;
        };
        let id = GraphId::from_index(slot);
        let mut touched = 0u64;
        for seq in entry.features.iter() {
            if self.trie.remove(seq, id) {
                touched += 1;
            }
        }
        touched
    }

    /// Number of indexed cache slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The graph indexed under `slot`, if any. Under background
    /// maintenance the engines compare this (by `Arc` identity) against
    /// the live cache entry to discard hits from slots the cache has since
    /// evicted or reused.
    pub fn slot_graph(&self, slot: usize) -> Option<&Arc<Graph>> {
        self.slots
            .get(slot)
            .and_then(Option::as_ref)
            .map(|e| &e.graph)
    }

    /// Cache slots whose graph is a (verified) subgraph of `q`, plus the
    /// iGQ-internal iso work performed. `qf` is the query's path-feature
    /// set, extracted once by the engine and shared with the other probe
    /// and the base filter.
    pub fn subgraphs_of(&self, q: &Graph, qf: &PathFeatures) -> (Vec<usize>, IsoStats) {
        self.subgraphs_of_with_plans(q, qf, None)
    }

    /// [`IsuperIndex::subgraphs_of`] with the engine's plan cache: cached
    /// patterns recur across probes (every query probes the same resident
    /// set), so each pattern's per-pair plan is cached under *its own*
    /// canonical code and rebuilt only when the rarity statistic — the
    /// probing query's label index — drifts.
    pub fn subgraphs_of_with_plans(
        &self,
        q: &Graph,
        qf: &PathFeatures,
        plans: Option<&PlanCache>,
    ) -> (Vec<usize>, IsoStats) {
        let mut stats = IsoStats::new();
        let mut slots = Vec::new();
        let config = MatchConfig::default();
        // The inverted probe: each cached graph is the pattern, searched
        // inside the fixed query — plans are per pair (ordered by the
        // query's label index, the best statistic since the target is
        // known), the thread scratch is reused throughout.
        with_thread_scratch(|scratch| {
            for slot in self.candidates(qf) {
                let entry = self.slots[slot].as_ref().expect("candidate slot occupied");
                let cached = &entry.graph;
                if cached.vertex_count() > q.vertex_count() || cached.edge_count() > q.edge_count()
                {
                    continue;
                }
                let mut rarity = |l| q.vertices_with_label(l).len() as u64;
                let (verdict, states) = match (plans, entry.code.as_ref()) {
                    (Some(cache), Some(code)) => {
                        let (plan, _) = cache.get_or_build(code, cached, &config, &mut rarity);
                        matches_with_plan(&plan, q, scratch)
                    }
                    _ => {
                        let plan = MatchPlan::build(cached, &config, &mut rarity);
                        matches_with_plan(&plan, q, scratch)
                    }
                };
                stats.record_verdict(verdict, states);
                if verdict.is_found() {
                    slots.push(slot);
                }
            }
        });
        (slots, stats)
    }

    /// Algorithm 2: slots that *may* be subgraphs of a query with feature
    /// counts `qf`. No false negatives.
    fn candidates(&self, qf: &PathFeatures) -> Vec<usize> {
        let ql = qf.complete_len;
        let mut covered: FxHashMap<usize, u32> = FxHashMap::default();
        for (seq, &qcount) in &qf.counts {
            for posting in self.trie.get(seq) {
                // Skip tombstones: a zero count is an absent posting, not a
                // feature the query trivially covers.
                if posting.count > 0 && posting.count <= qcount {
                    *covered.entry(posting.graph.index()).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<usize> = Vec::new();
        for (slot, entry) in self.slots.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let limit = ql.min(entry.nf_by_len.len() - 1);
            let required = entry.nf_by_len[limit];
            if required == 0 {
                // Featureless member (empty graph): vacuous candidate.
                out.push(slot);
            } else if covered.get(&slot).copied().unwrap_or(0) == required {
                out.push(slot);
            }
        }
        out
    }

    /// Approximate heap footprint (Fig. 18 accounting).
    pub fn heap_size_bytes(&self) -> u64 {
        let mut bytes = self.trie.heap_size_bytes();
        bytes += (self.slots.capacity() * std::mem::size_of::<Option<SlotEntry>>()) as u64;
        for entry in self.slots.iter().flatten() {
            // The feature-key list is shared with IsubIndex, which accounts
            // its contents; this side pays only the pointer plus its own
            // cumulative-count table.
            bytes += std::mem::size_of::<Arc<[LabelSeq]>>() as u64;
            bytes += (entry.nf_by_len.capacity() * std::mem::size_of::<u32>()) as u64;
            if let Some(code) = &entry.code {
                bytes += std::mem::size_of_val(code.words()) as u64;
            }
        }
        bytes
    }

    /// Canonical contents summary for `self_check` equivalence diffs (same
    /// shape as [`crate::isub::IsubIndex::snapshot`]).
    pub fn snapshot(&self) -> IndexSnapshot {
        let mut postings: Vec<(LabelSeq, Vec<(usize, u32)>)> = Vec::new();
        self.trie.for_each_feature(|seq, ps| {
            let live: Vec<(usize, u32)> = ps
                .iter()
                .filter(|p| p.count > 0)
                .map(|p| (p.graph.index(), p.count))
                .collect();
            if !live.is_empty() {
                postings.push((seq.clone(), live));
            }
        });
        postings.sort_by(|a, b| a.0.cmp(&b.0));
        let slots = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i)
            .collect();
        IndexSnapshot { slots, postings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    fn probe(idx: &IsuperIndex, q: &Graph) -> (Vec<usize>, IsoStats) {
        let qf = enumerate_paths(q, &PathConfig::default());
        idx.subgraphs_of(q, &qf)
    }

    /// `(labels, edges)` shorthand for building test graphs.
    type GraphSpec<'a> = (&'a [u32], &'a [(u32, u32)]);

    fn slots_of(labels_edges: &[GraphSpec]) -> IsuperIndex {
        IsuperIndex::build(
            labels_edges
                .iter()
                .enumerate()
                .map(|(i, (ls, es))| (i, Arc::new(graph_from(ls, es)))),
            PathConfig::default(),
        )
    }

    #[test]
    fn finds_subgraphs_among_cache() {
        let idx = slots_of(&[
            (&[0, 1], &[(0, 1)]),            // slot 0: 0-1 edge
            (&[0, 1, 0], &[(0, 1), (1, 2)]), // slot 1: 0-1-0 path
            (&[7, 7], &[(0, 1)]),            // slot 2: unrelated
        ]);
        let q = graph_from(&[0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3)]);
        let (slots, stats) = probe(&idx, &q);
        assert_eq!(slots, vec![0, 1]);
        assert!(stats.tests >= 2);
    }

    #[test]
    fn returns_only_true_subgraphs_formula_2() {
        let idx = slots_of(&[(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])]); // triangle
        let q = graph_from(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]); // P4: no triangle
        let (slots, _) = probe(&idx, &q);
        assert!(slots.is_empty());
    }

    #[test]
    fn occurrence_counting_prunes_before_verification() {
        // Cached graph needs two 0-labels; query has one: Algorithm 2 must
        // prune it without an iso test.
        let idx = slots_of(&[(&[0, 0], &[(0, 1)])]);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let (slots, stats) = probe(&idx, &q);
        assert!(slots.is_empty());
        assert_eq!(stats.tests, 0, "count filter should preempt iso tests");
    }

    #[test]
    fn empty_cache() {
        let idx = IsuperIndex::new(PathConfig::default());
        let (slots, stats) = probe(&idx, &graph_from(&[0], &[]));
        assert!(slots.is_empty());
        assert_eq!(stats.tests, 0);
    }

    #[test]
    fn exact_same_graph_is_its_own_subgraph() {
        let idx = slots_of(&[(&[4, 5], &[(0, 1)])]);
        let (slots, _) = probe(&idx, &graph_from(&[4, 5], &[(0, 1)]));
        assert_eq!(slots, vec![0]);
    }

    #[test]
    fn remove_then_reinsert_matches_fresh_build() {
        let mut idx = slots_of(&[(&[0, 1], &[(0, 1)]), (&[0, 1, 0], &[(0, 1), (1, 2)])]);
        idx.remove(0);
        let newcomer = Arc::new(graph_from(&[9], &[]));
        idx.insert(0, Arc::clone(&newcomer));

        let fresh = IsuperIndex::build(
            [
                (0, newcomer),
                (1, Arc::new(graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]))),
            ],
            PathConfig::default(),
        );
        idx.snapshot()
            .diff(&fresh.snapshot())
            .expect("incremental == rebuild");

        // The removed 0-1 edge graph no longer reports as a subgraph...
        let q = graph_from(&[0, 1, 9], &[(0, 1)]);
        let (slots, _) = probe(&idx, &q);
        // ...but the newcomer single-9 graph does.
        assert_eq!(slots, vec![0]);
    }

    #[test]
    fn plan_cached_probe_agrees_with_fresh_probe() {
        use igq_graph::canon::canonical_code;
        let specs: &[GraphSpec] = &[
            (&[0, 1], &[(0, 1)]),
            (&[0, 1, 0], &[(0, 1), (1, 2)]),
            (&[0, 0], &[(0, 1)]),
            (&[7, 7], &[(0, 1)]),
        ];
        let mut idx = IsuperIndex::new(PathConfig::default());
        for (slot, (ls, es)) in specs.iter().enumerate() {
            let g = Arc::new(graph_from(ls, es));
            let features = enumerate_paths(&g, &PathConfig::default());
            let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
            let code = canonical_code(&g);
            idx.insert_features(slot, g, &features, keys, code);
        }
        let cache = PlanCache::new(64);
        for q in [
            graph_from(&[0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3)]),
            graph_from(&[0, 0, 1], &[(0, 1), (1, 2)]),
            graph_from(&[7, 7, 7], &[(0, 1), (1, 2)]),
        ] {
            let qf = enumerate_paths(&q, &PathConfig::default());
            let (fresh, fresh_stats) = idx.subgraphs_of(&q, &qf);
            // Twice with the cache: cold (build) then warm (hit).
            let (cold, _) = idx.subgraphs_of_with_plans(&q, &qf, Some(&cache));
            let (warm, warm_stats) = idx.subgraphs_of_with_plans(&q, &qf, Some(&cache));
            assert_eq!(cold, fresh, "query {q:?}");
            assert_eq!(warm, fresh, "query {q:?}");
            assert_eq!(warm_stats.tests, fresh_stats.tests);
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "repeat probes hit cached pattern plans");
    }

    #[test]
    fn tombstoned_slot_is_not_a_candidate() {
        let mut idx = slots_of(&[(&[3, 4], &[(0, 1)])]);
        idx.remove(0);
        let q = graph_from(&[3, 4, 5], &[(0, 1), (1, 2)]);
        let (slots, stats) = probe(&idx, &q);
        assert!(slots.is_empty());
        assert_eq!(stats.tests, 0);
    }
}
