//! Per-query outcome: answers plus all the accounting the harness needs.

use igq_graph::GraphId;
use std::time::Duration;

/// How a query was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Resolution {
    /// Normal path: filtering, iGQ pruning, verification.
    #[default]
    Verified,
    /// Optimal case 1 (Section 4.3): the query is isomorphic to a cached
    /// query; the stored answer was returned with zero DB iso tests.
    ExactHit,
    /// Optimal case 2: a cached subgraph of the query has an empty answer
    /// set, so the query's answer is provably empty — zero DB iso tests.
    /// (For supergraph queries the roles invert; see Section 4.4.)
    EmptyAnswerShortcut,
}

/// The result of one query through the iGQ engine.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// Final answer set (sorted ids). Exact — Theorems 1 and 2.
    pub answers: Vec<GraphId>,
    /// How the query was resolved.
    pub resolution: Resolution,
    /// Candidates produced by the base method `M` before iGQ pruning.
    pub candidates_before: usize,
    /// Candidates remaining after formulas (3) and (5).
    pub candidates_after: usize,
    /// Candidates removed via the subgraph path (known answers).
    pub pruned_by_isub: usize,
    /// Candidates removed via the supergraph path (known non-answers).
    pub pruned_by_isuper: usize,
    /// Subgraph-isomorphism tests executed against dataset graphs — the
    /// paper's headline metric.
    pub db_iso_tests: u64,
    /// Verifications that hit the engine's state budget and were aborted
    /// undecided. When non-zero, `answers` may be missing those candidates;
    /// such queries are **never admitted to the query cache** (a cached
    /// incomplete answer set would poison formulas (3)–(5) for future
    /// queries). Always zero under the default unlimited budget.
    pub aborted_tests: u64,
    /// Iso tests executed inside the query indexes (query-vs-cached-query);
    /// iGQ overhead, reported separately.
    pub igq_iso_tests: u64,
    /// Wall-clock spent in the base method's filtering stage.
    pub filter_time: Duration,
    /// Wall-clock spent probing/updating iGQ's query indexes.
    pub igq_time: Duration,
    /// Wall-clock spent in verification (DB iso tests).
    pub verify_time: Duration,
    /// End-to-end wall-clock for the query. With parallel probes this is
    /// less than the sum of the per-stage durations.
    pub wall_time: Duration,
    /// Cached queries found to be supergraphs of this query (`Isub` hits).
    pub isub_hits: usize,
    /// Cached queries found to be subgraphs of this query (`Isuper` hits).
    pub isuper_hits: usize,
}

impl QueryOutcome {
    /// Total wall-clock. Prefers the measured end-to-end duration; falls
    /// back to the stage sum when `wall_time` was not set.
    pub fn total_time(&self) -> Duration {
        if self.wall_time.is_zero() {
            self.filter_time + self.igq_time + self.verify_time
        } else {
            self.wall_time
        }
    }

    /// Candidates removed by iGQ overall.
    pub fn pruned_total(&self) -> usize {
        self.candidates_before - self.candidates_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let o = QueryOutcome {
            candidates_before: 10,
            candidates_after: 4,
            filter_time: Duration::from_millis(1),
            igq_time: Duration::from_millis(2),
            verify_time: Duration::from_millis(3),
            ..Default::default()
        };
        assert_eq!(o.pruned_total(), 6);
        assert_eq!(o.total_time(), Duration::from_millis(6));
    }

    #[test]
    fn default_resolution_is_verified() {
        assert_eq!(QueryOutcome::default().resolution, Resolution::Verified);
    }
}
