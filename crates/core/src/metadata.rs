//! Per-cached-query metadata and the utility function (paper Section 5.1).
//!
//! The replacement policy scores each cached query `g` by
//!
//! ```text
//! U(g) = H(g)/M(g) · R(g)/H(g) · C(g)/R(g) = C(g)/M(g)
//! ```
//!
//! where `H` = hits, `M` = queries processed since insertion, `R` = iso
//! tests alleviated, and `C` = estimated cost of the alleviated tests.
//! Although the product telescopes to `C/M`, all four counters are tracked:
//! the factors are reported by the harness (and exercised by the
//! `replacement` ablation bench against LRU/random policies).
//!
//! `C` accumulates astronomically large per-test costs, so it is held as a
//! [`LogValue`] and utilities compare in log space.

use igq_iso::LogValue;

/// Metadata counters for one cached query graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphMeta {
    /// `H(g)`: times this graph was found to be a sub/supergraph of an
    /// incoming query.
    pub hits: u64,
    /// `M(g)`: queries processed since this graph entered the index.
    pub queries_seen: u64,
    /// `R(g)`: candidate-set entries removed thanks to this graph.
    pub removed: u64,
    /// `C(g)`: total estimated cost of the alleviated iso tests (log space).
    pub cost_alleviated: LogValue,
    /// Query-clock value at the most recent hit (for the LRU baseline in
    /// the replacement ablation; the paper's policy ignores it).
    pub last_hit_at: u64,
}

impl GraphMeta {
    /// Fresh metadata for a newly inserted graph.
    pub fn new() -> GraphMeta {
        GraphMeta::default()
    }

    /// Records a hit that pruned `removed` candidates of estimated total
    /// cost `cost` (log space).
    pub fn record_hit(&mut self, removed: u64, cost: LogValue) {
        self.hits += 1;
        self.removed += removed;
        self.cost_alleviated = self.cost_alleviated.add(cost);
        self.last_hit_at = self.queries_seen;
    }

    /// Advances the per-query clock.
    pub fn tick(&mut self) {
        self.queries_seen += 1;
    }

    /// Popularity `P(g) = H(g)/M(g)` (0 when no queries seen).
    pub fn popularity(&self) -> f64 {
        if self.queries_seen == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries_seen as f64
        }
    }

    /// `ln U(g) = ln C(g) − ln M(g)`. Graphs that never pruned anything
    /// have `U = 0` (`ln U = −∞`) and are evicted first; brand-new graphs
    /// (`M = 0`) treat `M` as 1.
    pub fn utility_ln(&self) -> f64 {
        let m = self.queries_seen.max(1) as f64;
        self.cost_alleviated.ln() - m.ln()
    }
}

/// Selects the `k` lowest-utility slots among `metas` (ties broken by slot
/// index for determinism). Returns sorted slot indexes.
pub fn lowest_utility_slots(metas: &[GraphMeta], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..metas.len()).collect();
    order.sort_by(|&a, &b| {
        metas[a]
            .utility_ln()
            .partial_cmp(&metas[b].utility_ln())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut out: Vec<usize> = order.into_iter().take(k).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_meta_has_zero_utility() {
        let m = GraphMeta::new();
        assert_eq!(m.utility_ln(), f64::NEG_INFINITY);
        assert_eq!(m.popularity(), 0.0);
    }

    #[test]
    fn hits_and_cost_raise_utility() {
        let mut a = GraphMeta::new();
        let mut b = GraphMeta::new();
        for _ in 0..10 {
            a.tick();
            b.tick();
        }
        a.record_hit(5, LogValue::from_linear(1e12));
        b.record_hit(5, LogValue::from_linear(1e6));
        assert!(a.utility_ln() > b.utility_ln());
    }

    #[test]
    fn utility_decays_with_age() {
        let mut young = GraphMeta::new();
        young.record_hit(1, LogValue::from_linear(100.0));
        young.tick();
        let mut old = GraphMeta::new();
        old.record_hit(1, LogValue::from_linear(100.0));
        for _ in 0..100 {
            old.tick();
        }
        assert!(young.utility_ln() > old.utility_ln());
    }

    #[test]
    fn popularity_is_hit_rate() {
        let mut m = GraphMeta::new();
        for _ in 0..4 {
            m.tick();
        }
        m.record_hit(1, LogValue::from_linear(1.0));
        assert_eq!(m.popularity(), 0.25);
    }

    #[test]
    fn lowest_utility_selection() {
        let mut metas = vec![GraphMeta::new(), GraphMeta::new(), GraphMeta::new()];
        for m in metas.iter_mut() {
            m.tick();
        }
        metas[0].record_hit(3, LogValue::from_linear(1e9)); // high utility
        metas[2].record_hit(1, LogValue::from_linear(10.0)); // low utility
                                                             // metas[1] never hit: lowest.
        assert_eq!(lowest_utility_slots(&metas, 2), vec![1, 2]);
        assert_eq!(lowest_utility_slots(&metas, 0), Vec::<usize>::new());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let metas = vec![GraphMeta::new(); 4];
        assert_eq!(lowest_utility_slots(&metas, 2), vec![0, 1]);
    }
}
