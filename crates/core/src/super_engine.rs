//! The iGQ supergraph-query engine (paper Section 4.4).
//!
//! For supergraph queries (`Answer(g) = {Gi ∈ D : Gi ⊆ g}`) the iGQ
//! components stay exactly the same — `Isub` and `Isuper` over cached
//! queries — but the answer-set algebra inverts:
//!
//! * a cached **subgraph** `G ⊆ g` contributes *known answers*: every
//!   `a ∈ Answer(G)` satisfies `a ⊆ G ⊆ g` (the union path, mirroring
//!   formula (4));
//! * a cached **supergraph** `G ⊇ g` bounds the candidates: `a ⊆ g` implies
//!   `a ⊆ G`, so candidates outside `Answer(G)` are pruned (the
//!   intersection path, mirroring formula (5));
//! * optimal case 1 (exact repeat) is unchanged; optimal case 2 inverts —
//!   a cached **supergraph** with an empty answer proves the answer empty.
//!
//! "The elegance afforded by the double use of iGQ is unique." — unique
//! enough that since the shared-handle API redesign the supergraph engine
//! *is* the subgraph engine: [`IgqSuperEngine`] is
//! [`crate::Engine`] instantiated in the
//! [`crate::SupergraphQueries`] direction, which
//! contributes only the four inversion points (filter, verify, cost-model
//! argument order, known-path role). The pipeline, locking, caching, and
//! maintenance machinery live once in [`crate::engine`].

use crate::direction::SupergraphQueries;
use crate::engine::Engine;

/// The iGQ engine for supergraph queries, wrapping the trie-based
/// supergraph method of Section 6.2. A [`crate::QueryEngine`] like its
/// subgraph sibling: `Send + Sync`, queried through `&self`, shareable
/// via [`crate::IgqSuperHandle`].
pub type IgqSuperEngine = Engine<SupergraphQueries>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IgqConfig, QueryRequest, Resolution};
    use igq_features::PathConfig;
    use igq_graph::{graph_from, Graph, GraphId, GraphStore};
    use igq_iso::MatchConfig;
    use igq_methods::TrieSupergraphMethod;
    use std::sync::Arc;

    fn store() -> Arc<GraphStore> {
        Arc::new(
            vec![
                graph_from(&[0, 1], &[(0, 1)]),                    // g0
                graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]), // g1
                graph_from(&[0], &[]),                             // g2
                graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),         // g3
            ]
            .into_iter()
            .collect(),
        )
    }

    fn engine() -> IgqSuperEngine {
        let s = store();
        let m = TrieSupergraphMethod::build(&s, PathConfig::default(), MatchConfig::default());
        IgqSuperEngine::new(
            m,
            IgqConfig::builder()
                .cache_capacity(8)
                .window(2)
                .build()
                .expect("valid config"),
        )
        .expect("valid engine")
    }

    fn naive_super(q: &Graph) -> Vec<GraphId> {
        store()
            .iter()
            .filter(|(_, g)| igq_iso::is_subgraph(g, q))
            .map(|(id, _)| id)
            .collect()
    }

    fn ids(raw: &[u32]) -> Vec<GraphId> {
        raw.iter().map(|&r| GraphId::new(r)).collect()
    }

    #[test]
    fn answers_match_brute_force() {
        let e = engine();
        for q in [
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[2, 2, 2, 0], &[(0, 1), (1, 2), (0, 2)]),
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]), // repeat
        ] {
            let out = e.query(&q);
            assert_eq!(out.answers, naive_super(&q), "query {q:?}");
        }
    }

    #[test]
    fn exact_repeat_short_circuits() {
        let e = engine();
        let q = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let first = e.query(&q);
        let _ = e.query(&graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]));
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.db_iso_tests, 0);
        assert_eq!(repeat.answers, first.answers);
    }

    #[test]
    fn known_answers_flow_from_cached_subqueries() {
        let e = engine();
        // Cache a small supergraph query first.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let small_out = e.query(&small);
        assert_eq!(small_out.answers, ids(&[0, 2]));
        let _ = e.query(&graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]));
        // A bigger query containing the cached one: its cached answers are
        // reused without verification.
        let big = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let out = e.query(&big);
        assert!(out.isuper_hits >= 1);
        assert!(out.pruned_by_isuper >= 1);
        assert_eq!(out.answers, naive_super(&big));
    }

    #[test]
    fn inverted_empty_shortcut() {
        let e = engine();
        // Query with labels nothing in D matches... careful: g2 = single 0
        // is contained in anything with a 0 label. Use label 9 only.
        let q9 = graph_from(&[9, 9], &[(0, 1)]);
        let first = e.query(&q9);
        assert!(first.answers.is_empty());
        let _ = e.query(&graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]));
        // A *subgraph* of the cached empty-answer query.
        let sub = graph_from(&[9], &[]);
        let out = e.query(&sub);
        assert_eq!(out.resolution, Resolution::EmptyAnswerShortcut);
        assert!(out.answers.is_empty());
        assert_eq!(out.db_iso_tests, 0);
    }

    #[test]
    fn cache_population() {
        let e = engine();
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert_eq!(e.cached_queries(), 2);
        assert!(e.stats().maintenances >= 1);
    }

    #[test]
    fn unified_engine_surface_works_in_super_direction() {
        // The API-redesign dividend: export/import, self_check, and typed
        // requests — previously subgraph-only — now come with the shared
        // pipeline.
        let warm = engine();
        let q = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let first = warm.query(&q);
        let exported = warm.export_entries();
        assert_eq!(exported.len(), 1);
        let cold = engine();
        assert_eq!(
            cold.import_entries(exported)
                .expect("primary import")
                .admitted,
            1
        );
        let out = cold.query(&q);
        assert_eq!(out.resolution, Resolution::ExactHit);
        assert_eq!(out.answers, first.answers);
        cold.self_check().expect("invariants hold after import");

        let resp =
            cold.execute(&QueryRequest::new(graph_from(&[2, 2], &[(0, 1)])).skip_admission());
        assert_eq!(
            resp.outcome.answers,
            naive_super(&graph_from(&[2, 2], &[(0, 1)]))
        );
    }

    #[test]
    fn background_mode_matches_brute_force_and_publishes() {
        let s = store();
        let m = TrieSupergraphMethod::build(&s, PathConfig::default(), MatchConfig::default());
        let e = IgqSuperEngine::new(
            m,
            IgqConfig {
                cache_capacity: 4,
                window: 1,
                maintenance: crate::MaintenanceMode::Background,
                ..Default::default()
            },
        )
        .expect("valid engine");
        for q in [
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[2, 2, 2, 0], &[(0, 1), (1, 2), (0, 2)]),
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[9, 9], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]), // repeat
        ] {
            let out = e.query(&q);
            assert_eq!(out.answers, naive_super(&q), "query {q:?}");
        }
        e.sync_maintenance();
        let st = e.stats();
        assert!(st.maintenances >= 3);
        assert!(st.snapshot_publishes >= 1);
        assert_eq!(st.full_rebuilds, 0);
    }
}
