//! The iGQ supergraph-query engine (paper Section 4.4).
//!
//! For supergraph queries (`Answer(g) = {Gi ∈ D : Gi ⊆ g}`) the iGQ
//! components stay exactly the same — `Isub` and `Isuper` over cached
//! queries — but the answer-set algebra inverts:
//!
//! * a cached **subgraph** `G ⊆ g` contributes *known answers*: every
//!   `a ∈ Answer(G)` satisfies `a ⊆ G ⊆ g` (the union path, mirroring
//!   formula (4));
//! * a cached **supergraph** `G ⊇ g` bounds the candidates: `a ⊆ g` implies
//!   `a ⊆ G`, so candidates outside `Answer(G)` are pruned (the
//!   intersection path, mirroring formula (5));
//! * optimal case 1 (exact repeat) is unchanged; optimal case 2 inverts —
//!   a cached **supergraph** with an empty answer proves the answer empty.
//!
//! "The elegance afforded by the double use of iGQ is unique."

use crate::background::{retain_current_slots, BackgroundMaintainer};
use crate::cache::{QueryCache, WindowEntry};
use crate::config::IgqConfig;
use crate::isub::IsubIndex;
use crate::isuper::IsuperIndex;
use crate::outcome::{QueryOutcome, Resolution};
use crate::stats::EngineStats;
use igq_features::enumerate_paths;
use igq_graph::canon::{canonical_code, CanonicalCode, GraphSignature};
use igq_graph::stats::DatasetStats;
use igq_graph::{Graph, GraphId};
use igq_iso::{CostModel, IsoStats, LogValue};
use igq_methods::{intersect_sorted, subtract_sorted, TrieSupergraphMethod};
use std::sync::Arc;
use std::time::Instant;

/// The iGQ engine for supergraph queries, wrapping the trie-based
/// supergraph method of Section 6.2.
pub struct IgqSuperEngine {
    method: TrieSupergraphMethod,
    config: IgqConfig,
    cache: QueryCache,
    /// Live indexes for the synchronous maintenance modes; stay empty
    /// under background maintenance (the maintainer owns the masters).
    isub: IsubIndex,
    isuper: IsuperIndex,
    /// `Some` iff `config.maintenance == MaintenanceMode::Background`.
    maintainer: Option<BackgroundMaintainer>,
    window: Vec<WindowEntry>,
    window_signatures: Vec<GraphSignature>,
    cost_model: CostModel,
    stats: EngineStats,
}

impl IgqSuperEngine {
    /// Wraps `method` with an empty iGQ cache.
    pub fn new(method: TrieSupergraphMethod, config: IgqConfig) -> IgqSuperEngine {
        let config = config.normalized();
        let labels = if config.label_universe > 0 {
            config.label_universe
        } else {
            DatasetStats::of(method.store()).vertex_labels.max(1)
        };
        let cache = QueryCache::with_policy(config.cache_capacity, config.policy);
        let isub = IsubIndex::new(config.path_config);
        let isuper = IsuperIndex::new(config.path_config);
        let maintainer = BackgroundMaintainer::for_config(&config);
        IgqSuperEngine {
            method,
            config,
            cache,
            isub,
            isuper,
            maintainer,
            window: Vec::new(),
            window_signatures: Vec::new(),
            cost_model: CostModel::new(labels),
            stats: EngineStats::default(),
        }
    }

    /// Aggregate statistics so far (an owned snapshot; see
    /// [`crate::IgqEngine::stats`] for the background-maintenance
    /// semantics).
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats.clone();
        if let Some(m) = &self.maintainer {
            stats.fold_maintainer(&m.stats());
        }
        stats
    }

    /// Blocks until the background maintainer has caught up with the
    /// cache. No-op in the synchronous modes.
    pub fn sync_maintenance(&self) {
        if let Some(m) = &self.maintainer {
            m.sync();
        }
    }

    /// Number of cached queries.
    pub fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// For supergraph verification the *candidate* is the pattern; cost of
    /// testing candidate `Gi` inside query `g` is `c(Gi, g)`.
    fn cost_of(&mut self, q: &Graph, ids: &[GraphId]) -> LogValue {
        let target = q.vertex_count();
        let mut total = LogValue::ZERO;
        for &id in ids {
            let n = self.method.store().get(id).vertex_count();
            total = total.add(self.cost_model.cost_ln(n, target));
        }
        total
    }

    /// Processes a supergraph query: all dataset graphs contained in `q`.
    pub fn query(&mut self, q: &Graph) -> QueryOutcome {
        let wall_start = Instant::now();
        let mut outcome = QueryOutcome::default();

        // Optimal case 1 fast path (shared with the subgraph engine): a
        // canonical-code lookup resolves exact repeats with no filtering
        // and no index probes. The canonicalization outcome is kept and
        // reused at window admission.
        let code: Option<Option<CanonicalCode>> = if self.config.exact_fastpath {
            Some(canonical_code(q))
        } else {
            None
        };
        {
            if let Some(Some(code)) = &code {
                if let Some(slot) = self.cache.slot_with_code(code) {
                    self.cache.tick_all();
                    let answers = self.cache.entry(slot).answers.clone();
                    let credit = self.cost_of(q, &answers);
                    self.cache
                        .entry_mut(slot)
                        .meta
                        .record_hit(answers.len() as u64, credit);
                    outcome.answers = answers;
                    outcome.resolution = Resolution::ExactHit;
                    outcome.igq_time = wall_start.elapsed();
                    outcome.wall_time = wall_start.elapsed();
                    self.stats.absorb(&outcome);
                    return outcome;
                }
            }
        }

        // Single-pass feature extraction, shared by the supergraph filter
        // and both index probes.
        let extract_start = Instant::now();
        let qf = enumerate_paths(q, &self.config.path_config);
        let extract_time = extract_start.elapsed();
        self.stats.feature_extractions += 1;

        let f_start = Instant::now();
        let cs: Vec<GraphId> = self.method.filter_super_with_features(q, &qf);
        outcome.filter_time = f_start.elapsed();
        outcome.candidates_before = cs.len();

        let igq_start = Instant::now();
        self.cache.tick_all();
        // Probe the engine-owned indexes, or the latest published snapshot
        // under background maintenance (stale hits revalidated below).
        let snap = self.maintainer.as_ref().map(|m| m.snapshot());
        let (isub, isuper) = match &snap {
            Some(pair) => (&pair.isub, &pair.isuper),
            None => (&self.isub, &self.isuper),
        };
        let (mut sub_slots, sub_stats) = isub.supergraphs_of(q, &qf); // g ⊆ G
        let (mut super_slots, super_stats) = isuper.subgraphs_of(q, &qf); // G ⊆ g
        if let Some(pair) = &snap {
            retain_current_slots(&self.cache, &mut sub_slots, |s| pair.isub.slot_graph(s));
            retain_current_slots(&self.cache, &mut super_slots, |s| pair.isuper.slot_graph(s));
        }
        drop(snap);
        let mut igq_stats = IsoStats::new();
        igq_stats.merge(&sub_stats);
        igq_stats.merge(&super_stats);
        outcome.igq_iso_tests = igq_stats.tests;
        outcome.isub_hits = sub_slots.len();
        outcome.isuper_hits = super_slots.len();

        // Optimal case 1: exact repeat.
        let exact_slot = sub_slots
            .iter()
            .chain(super_slots.iter())
            .copied()
            .find(|&s| {
                let g = &self.cache.entry(s).graph;
                g.vertex_count() == q.vertex_count() && g.edge_count() == q.edge_count()
            });
        if let Some(slot) = exact_slot {
            outcome.answers = self.cache.entry(slot).answers.clone();
            outcome.resolution = Resolution::ExactHit;
            outcome.pruned_by_isub = cs.len();
            let credit = self.cost_of(q, &cs);
            self.cache
                .entry_mut(slot)
                .meta
                .record_hit(cs.len() as u64, credit);
            outcome.igq_time = extract_time + igq_start.elapsed();
            outcome.wall_time = wall_start.elapsed();
            self.stats.absorb(&outcome);
            return outcome;
        }

        // Inverted optimal case 2: a cached supergraph of g with an empty
        // answer set proves Answer(g) = ∅.
        if let Some(&slot) = sub_slots
            .iter()
            .find(|&&s| self.cache.entry(s).answers.is_empty())
        {
            outcome.answers = Vec::new();
            outcome.resolution = Resolution::EmptyAnswerShortcut;
            outcome.pruned_by_isub = cs.len();
            let credit = self.cost_of(q, &cs);
            self.cache
                .entry_mut(slot)
                .meta
                .record_hit(cs.len() as u64, credit);
            self.enqueue(q, &[], code.clone());
            self.maybe_maintain();
            outcome.igq_time = extract_time + igq_start.elapsed();
            outcome.wall_time = wall_start.elapsed();
            self.stats.absorb(&outcome);
            return outcome;
        }

        // Union path (inverse of formula (3)): answers of cached subgraphs
        // are known answers of g.
        let mut known_answers: Vec<GraphId> = Vec::new();
        for &s in &super_slots {
            known_answers.extend_from_slice(&self.cache.entry(s).answers);
        }
        known_answers.sort_unstable();
        known_answers.dedup();
        let known_in_cs = intersect_sorted(&cs, &known_answers);
        let mut pruned = subtract_sorted(&cs, &known_answers);
        outcome.pruned_by_isuper = cs.len() - pruned.len();

        // Intersection path (inverse of formula (5)): candidates must lie
        // inside every cached supergraph's answer set.
        let before_sub = pruned.len();
        for &s in &sub_slots {
            pruned = intersect_sorted(&pruned, &self.cache.entry(s).answers);
            if pruned.is_empty() {
                break;
            }
        }
        outcome.pruned_by_isub = before_sub - pruned.len();
        outcome.candidates_after = pruned.len();

        // Metadata credit, with the roles of the two paths swapped.
        for &s in &super_slots {
            let prunes = intersect_sorted(&cs, &self.cache.entry(s).answers);
            let cost = self.cost_of(q, &prunes);
            self.cache
                .entry_mut(s)
                .meta
                .record_hit(prunes.len() as u64, cost);
        }
        for &s in &sub_slots {
            let prunes = subtract_sorted(&cs, &self.cache.entry(s).answers);
            let cost = self.cost_of(q, &prunes);
            self.cache
                .entry_mut(s)
                .meta
                .record_hit(prunes.len() as u64, cost);
        }
        outcome.igq_time = extract_time + igq_start.elapsed();

        // Verification.
        let verify_start = Instant::now();
        let mut answers: Vec<GraphId> = Vec::new();
        for &id in &pruned {
            outcome.db_iso_tests += 1;
            let verdict = self.method.verify_super(q, id);
            if verdict.aborted {
                outcome.aborted_tests += 1;
            }
            if verdict.contains {
                answers.push(id);
            }
        }
        outcome.verify_time = verify_start.elapsed();

        answers.extend_from_slice(&known_in_cs);
        answers.sort_unstable();
        answers.dedup();
        outcome.answers = answers;

        // As in the subgraph engine, budget-aborted queries are never
        // cached: their answer sets may be incomplete.
        let maint_start = Instant::now();
        if outcome.aborted_tests == 0 {
            self.enqueue(q, &outcome.answers, code);
        }
        self.maybe_maintain();
        outcome.igq_time += maint_start.elapsed();
        outcome.wall_time = wall_start.elapsed();
        self.stats.absorb(&outcome);
        outcome
    }

    fn enqueue(&mut self, q: &Graph, answers: &[GraphId], code: Option<Option<CanonicalCode>>) {
        let sig = GraphSignature::of(q);
        let dup = self
            .window_signatures
            .iter()
            .zip(self.window.iter())
            .any(|(s, e)| *s == sig && igq_iso::are_isomorphic(q, &e.graph));
        if dup {
            return;
        }
        self.window.push(WindowEntry {
            graph: Arc::new(q.clone()),
            answers: answers.to_vec(),
            signature: Some(sig),
            code,
        });
        self.window_signatures.push(sig);
    }

    fn maybe_maintain(&mut self) {
        if self.window.len() < self.config.window {
            return;
        }
        self.flush_window();
    }

    /// Forces maintenance regardless of window fill. Applies the window's
    /// eviction/admission delta to the query indexes incrementally,
    /// rebuilds them under `MaintenanceMode::ShadowRebuild`, or queues the
    /// delta to the maintenance thread under `MaintenanceMode::Background`.
    pub fn flush_window(&mut self) {
        if self.window.is_empty() {
            return;
        }
        let incoming = std::mem::take(&mut self.window);
        self.window_signatures.clear();
        let delta = self.cache.apply_window(incoming);
        if delta.is_empty() {
            return;
        }
        crate::maintain::dispatch_delta(
            self.maintainer.as_ref(),
            &self.config,
            &self.cache,
            &delta,
            &mut self.isub,
            &mut self.isuper,
            &mut self.stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_features::PathConfig;
    use igq_graph::{graph_from, GraphStore};
    use igq_iso::MatchConfig;
    use std::sync::Arc;

    fn store() -> Arc<GraphStore> {
        Arc::new(
            vec![
                graph_from(&[0, 1], &[(0, 1)]),                    // g0
                graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]), // g1
                graph_from(&[0], &[]),                             // g2
                graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),         // g3
            ]
            .into_iter()
            .collect(),
        )
    }

    fn engine() -> IgqSuperEngine {
        let s = store();
        let m = TrieSupergraphMethod::build(&s, PathConfig::default(), MatchConfig::default());
        IgqSuperEngine::new(
            m,
            IgqConfig {
                cache_capacity: 8,
                window: 2,
                ..Default::default()
            },
        )
    }

    fn naive_super(q: &Graph) -> Vec<GraphId> {
        store()
            .iter()
            .filter(|(_, g)| igq_iso::is_subgraph(g, q))
            .map(|(id, _)| id)
            .collect()
    }

    fn ids(raw: &[u32]) -> Vec<GraphId> {
        raw.iter().map(|&r| GraphId::new(r)).collect()
    }

    #[test]
    fn answers_match_brute_force() {
        let mut e = engine();
        for q in [
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[2, 2, 2, 0], &[(0, 1), (1, 2), (0, 2)]),
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]), // repeat
        ] {
            let out = e.query(&q);
            assert_eq!(out.answers, naive_super(&q), "query {q:?}");
        }
    }

    #[test]
    fn exact_repeat_short_circuits() {
        let mut e = engine();
        let q = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let first = e.query(&q);
        let _ = e.query(&graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]));
        let repeat = e.query(&q);
        assert_eq!(repeat.resolution, Resolution::ExactHit);
        assert_eq!(repeat.db_iso_tests, 0);
        assert_eq!(repeat.answers, first.answers);
    }

    #[test]
    fn known_answers_flow_from_cached_subqueries() {
        let mut e = engine();
        // Cache a small supergraph query first.
        let small = graph_from(&[0, 1], &[(0, 1)]);
        let small_out = e.query(&small);
        assert_eq!(small_out.answers, ids(&[0, 2]));
        let _ = e.query(&graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]));
        // A bigger query containing the cached one: its cached answers are
        // reused without verification.
        let big = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let out = e.query(&big);
        assert!(out.isuper_hits >= 1);
        assert!(out.pruned_by_isuper >= 1);
        assert_eq!(out.answers, naive_super(&big));
    }

    #[test]
    fn inverted_empty_shortcut() {
        let mut e = engine();
        // Query with labels nothing in D matches... careful: g2 = single 0
        // is contained in anything with a 0 label. Use label 9 only.
        let q9 = graph_from(&[9, 9], &[(0, 1)]);
        let first = e.query(&q9);
        assert!(first.answers.is_empty());
        let _ = e.query(&graph_from(&[2, 2, 2], &[(0, 1), (1, 2), (0, 2)]));
        // A *subgraph* of the cached empty-answer query.
        let sub = graph_from(&[9], &[]);
        let out = e.query(&sub);
        assert_eq!(out.resolution, Resolution::EmptyAnswerShortcut);
        assert!(out.answers.is_empty());
        assert_eq!(out.db_iso_tests, 0);
    }

    #[test]
    fn cache_population() {
        let mut e = engine();
        let _ = e.query(&graph_from(&[0, 1], &[(0, 1)]));
        let _ = e.query(&graph_from(&[2, 2], &[(0, 1)]));
        assert_eq!(e.cached_queries(), 2);
        assert!(e.stats().maintenances >= 1);
    }

    #[test]
    fn background_mode_matches_brute_force_and_publishes() {
        let s = store();
        let m = TrieSupergraphMethod::build(&s, PathConfig::default(), MatchConfig::default());
        let mut e = IgqSuperEngine::new(
            m,
            IgqConfig {
                cache_capacity: 4,
                window: 1,
                maintenance: crate::MaintenanceMode::Background,
                ..Default::default()
            },
        );
        for q in [
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]),
            graph_from(&[2, 2, 2, 0], &[(0, 1), (1, 2), (0, 2)]),
            graph_from(&[0, 1], &[(0, 1)]),
            graph_from(&[9, 9], &[(0, 1)]),
            graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]), // repeat
        ] {
            let out = e.query(&q);
            assert_eq!(out.answers, naive_super(&q), "query {q:?}");
        }
        e.sync_maintenance();
        let st = e.stats();
        assert!(st.maintenances >= 3);
        assert!(st.snapshot_publishes >= 1);
        assert_eq!(st.full_rebuilds, 0);
    }
}
