//! Sharded engine state: deterministic canonical-code routing, the global
//! slot allocator, and the unified window flip that keeps an `N`-shard
//! engine slot-for-slot identical to the unsharded one.
//!
//! # Design
//!
//! With [`IgqConfig::shards`](crate::IgqConfig::shards) `> 1` the engine
//! splits its mutable trio (cache + `Isub`/`Isuper`) into `N` shards, each
//! behind its own lock. Three pieces keep the split *observationally
//! invisible*:
//!
//! * **Routing** ([`ShardRouter`]) is a pure function of the entry's
//!   canonical code (falling back to its WL signature when
//!   canonicalization exceeded its budget), hashed with the in-tree
//!   deterministic Fx scheme — the same query lands on the same shard in
//!   every process, which is what lets recovery re-partition a checkpoint
//!   without persisting ownership.
//! * **Slot allocation** ([`SlotAlloc`]) stays **global**: one slot
//!   namespace, one free stack, one maintenance round. The sharded flip
//!   ([`apply_window_sharded`]) replicates
//!   [`QueryCache::apply_window`]'s mechanics over it — same round
//!   increment, same dense-meta victim ranking over the globally
//!   ascending occupied slots, same LIFO free-stack reuse — so every slot
//!   decision (victims, placements, growth) is *identical* to the
//!   unsharded cache's at every step. Each shard's [`QueryCache`] becomes
//!   a sparse container over the global namespace (its local free list
//!   stays empty).
//! * **Replay** ([`replay_group`]) reconstructs the global allocator from
//!   a WAL flip group without the log recording cross-shard eviction
//!   order. That order never survives a flip: `overflow ≤ incoming_len`
//!   means every victim pushed onto the free stack is popped back by the
//!   same flip's admissions, so the post-flip stack is derivable from the
//!   pre-flip stack plus the admitted-slot set — and anything else in the
//!   log is reported as corruption, never absorbed.
//!
//! What stays engine-global besides the allocator: the admission window,
//! the cost model, the flip sequence number, and the lock-striped plan
//! cache. See `ARCHITECTURE.md` ("Sharded state") for the lock order.

use crate::cache::{CacheEntry, QueryCache, WindowDelta, WindowEntry};
use crate::metadata::GraphMeta;
use crate::persist::WalRecord;
use crate::policy::ReplacementPolicy;
use igq_graph::canon::{CanonicalCode, GraphSignature};
use igq_graph::fxhash::FxHasher;
use std::hash::{Hash, Hasher};

/// Deterministic entry → shard routing by canonical-code hash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardRouter {
    shards: usize,
}

fn fx_of<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

impl ShardRouter {
    /// A router over `shards` partitions (`shards >= 1`, validated by
    /// [`IgqConfig`](crate::IgqConfig)).
    pub(crate) fn new(shards: usize) -> ShardRouter {
        debug_assert!(shards >= 1);
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning entries with this canonical code.
    pub(crate) fn route_code(&self, code: &CanonicalCode) -> usize {
        if self.shards == 1 {
            0
        } else {
            (fx_of(code) % self.shards as u64) as usize
        }
    }

    /// Fallback routing for entries whose canonicalization exceeded its
    /// budget: the WL signature is still deterministic per graph (though
    /// not canonical — two isomorphic over-budget graphs may split, which
    /// only costs the exact-repeat fast path they never had anyway).
    pub(crate) fn route_signature(&self, sig: &GraphSignature) -> usize {
        if self.shards == 1 {
            0
        } else {
            (fx_of(sig) % self.shards as u64) as usize
        }
    }

    /// The shard owning a finalized cache entry.
    pub(crate) fn route(&self, entry: &CacheEntry) -> usize {
        match &entry.code {
            Some(code) => self.route_code(code),
            None => self.route_signature(&entry.signature),
        }
    }
}

/// The global slot allocator: the single slot namespace shared by every
/// shard's sparse cache. Mirrors exactly the fields
/// [`QueryCache`] manages privately in unsharded operation (slot-table
/// size, LIFO free stack, occupied count, maintenance round) — which is
/// the whole point: the sharded flip makes the same slot decisions the
/// unsharded cache would.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotAlloc {
    /// Size of the global slot table; slot ids are `< slot_count`.
    pub slot_count: usize,
    /// Freed slots available for reuse, bottom first (admissions pop the
    /// top — the order is part of the replayable state).
    pub free: Vec<usize>,
    /// Occupied slots across all shards (`slot_count - free.len()`).
    pub len: usize,
    /// Global maintenance round (seeds the pseudo-random policy).
    pub round: u64,
}

/// The unified window flip for `N > 1` shards: replicates
/// [`QueryCache::apply_window`] step for step over the global allocator,
/// scattering evictions/admissions to each slot's owning shard. Returns
/// one [`WindowDelta`] per shard (empty for untouched shards); the
/// concatenation of the deltas is exactly the delta the unsharded cache
/// would have produced, with identical slot ids.
///
/// `slot_owner` (slot → shard) is kept in lockstep for O(1) entry lookup
/// by global slot; entries for freed slots go stale and are overwritten on
/// reuse.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_window_sharded(
    alloc: &mut SlotAlloc,
    slot_owner: &mut Vec<usize>,
    router: &ShardRouter,
    capacity: usize,
    policy: ReplacementPolicy,
    caches: &mut [&mut QueryCache],
    incoming: Vec<WindowEntry>,
) -> Vec<WindowDelta> {
    let mut deltas: Vec<WindowDelta> = caches.iter().map(|_| WindowDelta::default()).collect();
    if incoming.is_empty() || capacity == 0 {
        return deltas;
    }
    alloc.round += 1;
    let incoming_len = incoming.len().min(capacity);
    let overflow = (alloc.len + incoming_len).saturating_sub(capacity);
    if overflow > 0 {
        // Same dense-meta ranking as the unsharded cache: occupied slots
        // in globally ascending order (shard caches are disjoint, so a
        // sort of the concatenation is the ascending merge), mapped back
        // from the policy's dense victim indexes.
        let mut occupied: Vec<(usize, usize)> = Vec::with_capacity(alloc.len);
        for (shard, cache) in caches.iter().enumerate() {
            occupied.extend(cache.iter().map(|(slot, _)| (slot, shard)));
        }
        occupied.sort_unstable();
        let metas: Vec<GraphMeta> = occupied
            .iter()
            .map(|&(slot, shard)| caches[shard].entry(slot).meta)
            .collect();
        let victims = policy.victims(&metas, overflow, alloc.round);
        for dense in victims {
            let (slot, shard) = occupied[dense];
            if let Some(code) = caches[shard].take_at(slot) {
                deltas[shard].evicted_codes.push(code);
            }
            alloc.free.push(slot);
            alloc.len -= 1;
            deltas[shard].evicted.push(slot);
        }
    }
    for entry in incoming.into_iter().take(incoming_len) {
        let entry = CacheEntry::new(entry);
        let shard = router.route(&entry);
        let slot = match alloc.free.pop() {
            Some(slot) => slot,
            None => {
                alloc.slot_count += 1;
                alloc.slot_count - 1
            }
        };
        if slot_owner.len() <= slot {
            slot_owner.resize(slot + 1, 0);
        }
        slot_owner[slot] = shard;
        caches[shard].place_at(slot, entry);
        alloc.len += 1;
        deltas[shard].admitted.push(slot);
    }
    debug_assert!(alloc.len <= capacity);
    deltas
}

/// Reconstructs the sharded state from a checkpoint: partitions `entries`
/// by deterministic routing (the same function live placement used, so
/// every entry lands back on the shard that owned it) and validates the
/// global slot geometry exactly as [`QueryCache::restore`] does for the
/// unsharded cache — occupied slots and the free stack must partition
/// `0..slot_count`. Returns the per-shard caches, the global allocator,
/// and the slot-ownership table.
#[allow(clippy::type_complexity)]
pub(crate) fn restore_sharded(
    capacity: usize,
    policy: ReplacementPolicy,
    round: u64,
    slot_count: usize,
    free: Vec<usize>,
    entries: Vec<(usize, CacheEntry)>,
    router: &ShardRouter,
) -> Result<(Vec<QueryCache>, SlotAlloc, Vec<usize>), String> {
    let shards = router.shard_count();
    if entries.len() > capacity {
        return Err(format!(
            "restored cache holds {} entries, over capacity {capacity}",
            entries.len()
        ));
    }
    if entries.len() + free.len() != slot_count {
        return Err(format!(
            "slot accounting broken: {} occupied + {} free != {slot_count} slots",
            entries.len(),
            free.len()
        ));
    }
    let mut caches: Vec<QueryCache> = (0..shards)
        .map(|_| QueryCache::with_policy(capacity, policy))
        .collect();
    let mut slot_owner = vec![0usize; slot_count];
    let mut occupied = vec![false; slot_count];
    let len = entries.len();
    for (slot, entry) in entries {
        if slot >= slot_count {
            return Err(format!(
                "entry slot {slot} out of range ({slot_count} slots)"
            ));
        }
        if occupied[slot] {
            return Err(format!("slot {slot} restored twice"));
        }
        occupied[slot] = true;
        let shard = router.route(&entry);
        slot_owner[slot] = shard;
        caches[shard].place_at(slot, entry);
    }
    for &slot in &free {
        if slot >= slot_count {
            return Err(format!(
                "free slot {slot} out of range ({slot_count} slots)"
            ));
        }
        if occupied[slot] {
            return Err(format!("slot {slot} listed free but occupied"));
        }
    }
    let mut seen = free.clone();
    seen.sort_unstable();
    seen.dedup();
    if seen.len() != free.len() {
        return Err("free list contains duplicates".into());
    }
    let alloc = SlotAlloc {
        slot_count,
        free,
        len,
        round,
    };
    Ok((caches, alloc, slot_owner))
}

/// Re-applies one recorded flip group (all the equal-`seq` records of one
/// window flip, one per shard) during WAL replay, reconstructing the
/// global allocator without the log having recorded cross-shard eviction
/// order.
///
/// The reconstruction leans on an invariant of the flip mechanics: the
/// overflow never exceeds the admission count, so every victim pushed
/// onto the free stack within a flip is popped back by that same flip.
/// The post-flip stack is therefore the pre-flip stack with the *extra*
/// pops (admissions beyond the victims and beyond table growth) truncated
/// off its top — and the admitted-slot set must equal `victims ∪ top
/// extra of the stack ∪ a contiguous growth range`, or the log disagrees
/// with the mechanics and is reported as corruption.
pub(crate) fn replay_group(
    alloc: &mut SlotAlloc,
    slot_owner: &mut Vec<usize>,
    caches: &mut [&mut QueryCache],
    group: &[WalRecord],
) -> Result<(), String> {
    let shards = caches.len();
    if group.len() != shards {
        return Err(format!(
            "flip {} carries {} shard records, engine has {shards} shards",
            group.first().map_or(0, |r| r.seq),
            group.len()
        ));
    }
    alloc.round += 1;
    let mut victims: Vec<usize> = Vec::new();
    for record in group {
        if record.shard >= shards {
            return Err(format!(
                "flip {} tags shard {} of {shards}",
                record.seq, record.shard
            ));
        }
        for &slot in &record.evicted {
            if caches[record.shard].get(slot).is_none() {
                return Err(format!(
                    "replayed eviction of slot {slot}, not occupied on shard {}",
                    record.shard
                ));
            }
            caches[record.shard].take_at(slot);
            alloc.len -= 1;
            victims.push(slot);
        }
    }
    // Partition the admitted slots into reused (< old table size) and
    // growth; growth must be exactly the next contiguous slot ids.
    let mut admitted_total = 0usize;
    let mut reused: Vec<usize> = Vec::new();
    let mut grown: Vec<usize> = Vec::new();
    for record in group {
        for p in &record.admitted {
            admitted_total += 1;
            if p.slot < alloc.slot_count {
                reused.push(p.slot);
            } else {
                grown.push(p.slot);
            }
        }
    }
    grown.sort_unstable();
    for (k, &slot) in grown.iter().enumerate() {
        if slot != alloc.slot_count + k {
            return Err(format!(
                "admission grew slot {slot}, mechanics grow contiguously from {}",
                alloc.slot_count + k
            ));
        }
    }
    let extra = admitted_total
        .checked_sub(victims.len() + grown.len())
        .ok_or_else(|| {
            format!(
                "flip admits {admitted_total} slots but evicts {} and grows {}",
                victims.len(),
                grown.len()
            )
        })?;
    if extra > alloc.free.len() {
        return Err(format!(
            "flip reuses {extra} free slots, stack holds {}",
            alloc.free.len()
        ));
    }
    // The reused set must be exactly the victims plus the top `extra` of
    // the pre-flip free stack (LIFO pops cannot reach deeper).
    let mut expected: Vec<usize> = victims.clone();
    expected.extend_from_slice(&alloc.free[alloc.free.len() - extra..]);
    expected.sort_unstable();
    reused.sort_unstable();
    if reused != expected {
        return Err(format!(
            "admitted slots {reused:?} do not match free-stack mechanics (expected {expected:?})"
        ));
    }
    let new_count = alloc.slot_count + grown.len();
    alloc.free.truncate(alloc.free.len() - extra);
    alloc.slot_count = new_count;
    alloc.len += admitted_total;
    if slot_owner.len() < new_count {
        slot_owner.resize(new_count, 0);
    }
    for record in group {
        for p in &record.admitted {
            slot_owner[p.slot] = record.shard;
            caches[record.shard].place_at(p.slot, p.entry.clone());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{PersistedEntry, WalRecord};
    use igq_graph::{graph_from, Graph, GraphId};
    use std::sync::Arc;

    fn g(seed: u32) -> Arc<Graph> {
        Arc::new(graph_from(&[seed, seed + 1], &[(0, 1)]))
    }

    fn entry(seed: u32) -> WindowEntry {
        WindowEntry::bare(g(seed), vec![GraphId::new(seed)])
    }

    fn flip(
        alloc: &mut SlotAlloc,
        owner: &mut Vec<usize>,
        router: &ShardRouter,
        capacity: usize,
        caches: &mut [QueryCache],
        window: Vec<WindowEntry>,
    ) -> Vec<WindowDelta> {
        let mut refs: Vec<&mut QueryCache> = caches.iter_mut().collect();
        apply_window_sharded(
            alloc,
            owner,
            router,
            capacity,
            ReplacementPolicy::Utility,
            &mut refs,
            window,
        )
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(4);
        for seed in 0..32u32 {
            let e = CacheEntry::new(entry(seed));
            let shard = router.route(&e);
            assert!(shard < 4);
            assert_eq!(shard, router.route(&e), "same entry, same shard");
            if let Some(code) = &e.code {
                assert_eq!(shard, router.route_code(code));
            }
        }
        let single = ShardRouter::new(1);
        assert_eq!(single.route(&CacheEntry::new(entry(7))), 0);
    }

    /// The headline invariant: an `N`-shard flip sequence makes the exact
    /// same slot decisions as the unsharded cache — victims, placements,
    /// free-stack order, growth — across churny windows.
    #[test]
    fn sharded_flips_match_unsharded_slot_for_slot() {
        for shards in [2usize, 4, 8] {
            let capacity = 4;
            let router = ShardRouter::new(shards);
            let mut mono = QueryCache::new(capacity);
            let mut caches: Vec<QueryCache> =
                (0..shards).map(|_| QueryCache::new(capacity)).collect();
            let mut alloc = SlotAlloc::default();
            let mut owner = Vec::new();
            for round in 0..6u32 {
                let window: Vec<WindowEntry> = (0..3).map(|i| entry(round * 3 + i)).collect();
                let mono_delta = mono.apply_window(window.clone());
                let deltas = flip(
                    &mut alloc,
                    &mut owner,
                    &router,
                    capacity,
                    &mut caches,
                    window,
                );
                let mut evicted: Vec<usize> = deltas
                    .iter()
                    .flat_map(|d| d.evicted.iter().copied())
                    .collect();
                let mut admitted: Vec<usize> = deltas
                    .iter()
                    .flat_map(|d| d.admitted.iter().copied())
                    .collect();
                evicted.sort_unstable();
                admitted.sort_unstable();
                let mut mono_evicted = mono_delta.evicted.clone();
                let mut mono_admitted = mono_delta.admitted.clone();
                mono_evicted.sort_unstable();
                mono_admitted.sort_unstable();
                assert_eq!(evicted, mono_evicted, "shards={shards} round={round}");
                assert_eq!(admitted, mono_admitted, "shards={shards} round={round}");
                assert_eq!(alloc.free, mono.free_slots(), "free stacks diverged");
                assert_eq!(alloc.round, mono.round());
                assert_eq!(alloc.slot_count, mono.slot_count());
                assert_eq!(alloc.len, caches.iter().map(QueryCache::len).sum::<usize>());
                // Same entries at the same global slots.
                for (slot, e) in mono.iter() {
                    let shard = owner[slot];
                    let sharded = caches[shard].entry(slot);
                    assert_eq!(sharded.signature, e.signature, "slot {slot}");
                    assert!(
                        (0..shards).all(|s| s == shard || caches[s].get(slot).is_none()),
                        "slot {slot} owned by exactly one shard"
                    );
                }
            }
        }
    }

    #[test]
    fn restore_partitions_by_routing_and_validates_geometry() {
        let router = ShardRouter::new(4);
        let capacity = 4;
        let mut caches: Vec<QueryCache> = (0..4).map(|_| QueryCache::new(capacity)).collect();
        let mut alloc = SlotAlloc::default();
        let mut owner = Vec::new();
        for round in 0..4u32 {
            let window: Vec<WindowEntry> = (0..2).map(|i| entry(round * 2 + i)).collect();
            flip(
                &mut alloc,
                &mut owner,
                &router,
                capacity,
                &mut caches,
                window,
            );
        }
        let entries: Vec<(usize, CacheEntry)> = caches
            .iter()
            .flat_map(|c| c.iter().map(|(s, e)| (s, e.clone())))
            .collect();
        let (restored, ralloc, rowner) = restore_sharded(
            capacity,
            ReplacementPolicy::Utility,
            alloc.round,
            alloc.slot_count,
            alloc.free.clone(),
            entries.clone(),
            &router,
        )
        .expect("valid geometry restores");
        assert_eq!(ralloc.len, alloc.len);
        assert_eq!(ralloc.free, alloc.free);
        for (slot, e) in caches.iter().flat_map(|c| c.iter()) {
            assert_eq!(rowner[slot], owner[slot], "ownership reroutes identically");
            assert_eq!(restored[rowner[slot]].entry(slot).signature, e.signature);
        }
        // Broken geometry is reported, not absorbed.
        assert!(restore_sharded(
            capacity,
            ReplacementPolicy::Utility,
            1,
            alloc.slot_count + 3,
            alloc.free.clone(),
            entries.clone(),
            &router,
        )
        .is_err());
        let mut overlapping = alloc.free.clone();
        overlapping.push(entries[0].0);
        assert!(restore_sharded(
            capacity,
            ReplacementPolicy::Utility,
            1,
            alloc.slot_count + 1,
            overlapping,
            entries,
            &router,
        )
        .is_err());
    }

    fn group_from(deltas: &[WindowDelta], caches: &[QueryCache], seq: u64) -> Vec<WalRecord> {
        deltas
            .iter()
            .enumerate()
            .map(|(shard, d)| WalRecord {
                seq,
                shard,
                group: deltas.len(),
                evicted: d.evicted.clone(),
                admitted: d
                    .admitted
                    .iter()
                    .map(|&slot| PersistedEntry {
                        slot,
                        entry: caches[shard].entry(slot).clone(),
                        features: None,
                    })
                    .collect(),
                metas: caches[shard].iter().map(|(s, e)| (s, e.meta)).collect(),
            })
            .collect()
    }

    /// Replaying recorded flip groups tracks the live sharded state — the
    /// free stack is reconstructed without the log carrying cross-shard
    /// eviction order.
    #[test]
    fn replay_groups_track_live_flips() {
        let shards = 4;
        let capacity = 3;
        let router = ShardRouter::new(shards);
        let mut live: Vec<QueryCache> = (0..shards).map(|_| QueryCache::new(capacity)).collect();
        let mut live_alloc = SlotAlloc::default();
        let mut live_owner = Vec::new();
        let mut replayed: Vec<QueryCache> =
            (0..shards).map(|_| QueryCache::new(capacity)).collect();
        let mut rep_alloc = SlotAlloc::default();
        let mut rep_owner = Vec::new();
        for round in 0..5u32 {
            let window: Vec<WindowEntry> = (0..2).map(|i| entry(round * 2 + i)).collect();
            let deltas = flip(
                &mut live_alloc,
                &mut live_owner,
                &router,
                capacity,
                &mut live,
                window,
            );
            let group = group_from(&deltas, &live, u64::from(round) + 1);
            let mut refs: Vec<&mut QueryCache> = replayed.iter_mut().collect();
            replay_group(&mut rep_alloc, &mut rep_owner, &mut refs, &group)
                .expect("replay follows the log");
            assert_eq!(rep_alloc.free, live_alloc.free, "round {round}");
            assert_eq!(rep_alloc.slot_count, live_alloc.slot_count);
            assert_eq!(rep_alloc.len, live_alloc.len);
            assert_eq!(rep_alloc.round, live_alloc.round);
            for shard in 0..shards {
                assert_eq!(replayed[shard].len(), live[shard].len(), "shard {shard}");
            }
        }
    }

    #[test]
    fn replay_rejects_divergent_groups() {
        let shards = 2;
        let capacity = 2;
        let router = ShardRouter::new(shards);
        let mut caches: Vec<QueryCache> = (0..shards).map(|_| QueryCache::new(capacity)).collect();
        let mut alloc = SlotAlloc::default();
        let mut owner = Vec::new();
        let deltas = flip(
            &mut alloc,
            &mut owner,
            &router,
            capacity,
            &mut caches,
            vec![entry(0), entry(1)],
        );
        let group = group_from(&deltas, &caches, 1);

        let fresh = || -> (Vec<QueryCache>, SlotAlloc, Vec<usize>) {
            (
                (0..shards).map(|_| QueryCache::new(capacity)).collect(),
                SlotAlloc::default(),
                Vec::new(),
            )
        };
        // Wrong group width.
        let (mut c, mut a, mut o) = fresh();
        let mut refs: Vec<&mut QueryCache> = c.iter_mut().collect();
        assert!(replay_group(&mut a, &mut o, &mut refs, &group[..1]).is_err());
        // Eviction of a slot the shard does not hold.
        let (mut c, mut a, mut o) = fresh();
        let mut bad = group.clone();
        bad[0].evicted.push(9);
        let mut refs: Vec<&mut QueryCache> = c.iter_mut().collect();
        assert!(replay_group(&mut a, &mut o, &mut refs, &bad).is_err());
        // Non-contiguous growth disagrees with the mechanics.
        let (mut c, mut a, mut o) = fresh();
        let mut bad = group.clone();
        for r in bad.iter_mut() {
            for p in r.admitted.iter_mut() {
                p.slot += 5;
            }
        }
        let mut refs: Vec<&mut QueryCache> = c.iter_mut().collect();
        assert!(replay_group(&mut a, &mut o, &mut refs, &bad).is_err());
    }
}
