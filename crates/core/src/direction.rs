//! The sub/super **direction** of the unified query pipeline.
//!
//! The paper's Section 4.4 observation — "the elegance afforded by the
//! double use of iGQ is unique" — is that subgraph and supergraph query
//! processing run the *same* engine with the roles of the two query
//! indexes swapped. [`crate::Engine`] implements the pipeline once,
//! generically over a [`QueryDirection`]:
//!
//! * [`SubgraphQueries<M>`] — `Answer(g) = {Gi : g ⊆ Gi}` over any
//!   [`SubgraphMethod`] `M`. *Known answers* come from cached supergraphs
//!   of `g` (`Isub` hits, formula (3)); cached subgraphs *bound* the
//!   candidates (`Isuper` hits, formula (5)).
//! * [`SupergraphQueries`] — `Answer(g) = {Gi : Gi ⊆ g}` over the
//!   trie-based [`TrieSupergraphMethod`]. The algebra inverts: known
//!   answers flow from cached **subgraphs** (`Isuper` hits), cached
//!   **supergraphs** bound the candidates (`Isub` hits), and the
//!   empty-answer shortcut fires from a cached supergraph with no answers.
//!
//! A direction contributes exactly the four points where the pipelines
//! used to diverge: the filter stage, the verification stage, the
//! iso-test cost-model argument order, and which probe feeds the *known*
//! path. Everything else — fast path, probes, window admission,
//! maintenance dispatch, locking — is shared in [`crate::Engine`].

use igq_features::PathFeatures;
use igq_graph::{Graph, GraphId, GraphStore};
use igq_iso::{CostModel, LogValue};
use igq_methods::{
    Filtered, PlanSource, QueryContext, SubgraphMethod, TrieSupergraphMethod, VerifyBatchStats,
    VerifyOutcome,
};
use std::marker::PhantomData;

/// One direction (sub or super) of the unified [`crate::Engine`] pipeline.
///
/// Implementations are zero-sized type-level markers; all methods are
/// associated functions over the direction's
/// [`Method`](QueryDirection::Method).
pub trait QueryDirection: Send + Sync {
    /// The wrapped filter-then-verify dataset method.
    type Method: Send + Sync;

    /// `true` when the *known answers* path is fed by `Isub` hits (cached
    /// supergraphs of the query) — the subgraph direction. The supergraph
    /// direction inverts the roles, so its known path is `Isuper`.
    /// Controls both the answer algebra and which `pruned_by_*` counter
    /// each path reports into.
    const KNOWN_IS_ISUB: bool;

    /// Human-readable direction name for reports.
    fn direction_name() -> &'static str;

    /// The dataset the method answers queries over.
    fn store(method: &Self::Method) -> &GraphStore;

    /// Filtering stage: a candidate set with no false negatives, reusing
    /// the query's already-extracted path features.
    fn filter(method: &Self::Method, q: &Graph, features: &PathFeatures) -> Filtered;

    /// Verification stage over the pruned candidates, index-aligned, plus
    /// the batch's plan/scratch amortization accounting. `plans` carries
    /// the engine's canonical-code plan cache (and the query's code when
    /// it canonicalized within budget) so a repeated query verifies with a
    /// cached matching plan instead of rebuilding one; directions whose
    /// verification plans per candidate pair ignore it.
    fn verify(
        method: &Self::Method,
        q: &Graph,
        context: &QueryContext,
        candidates: &[GraphId],
        plans: Option<PlanSource<'_>>,
    ) -> (Vec<VerifyOutcome>, VerifyBatchStats);

    /// `ln c(·, ·)` for one candidate test, with the pattern/target roles
    /// ordered for this direction: subgraph queries test the **query**
    /// inside the stored graph, supergraph queries test the **stored
    /// graph** inside the query.
    fn cost_ln(model: &mut CostModel, query_vertices: usize, stored_vertices: usize) -> LogValue;
}

/// Subgraph-query direction over any [`SubgraphMethod`] `M` (paper
/// Sections 4.2–4.3). `crate::IgqEngine<M>` is `Engine<SubgraphQueries<M>>`.
pub struct SubgraphQueries<M>(PhantomData<fn() -> M>);

impl<M: SubgraphMethod> QueryDirection for SubgraphQueries<M> {
    type Method = M;

    const KNOWN_IS_ISUB: bool = true;

    fn direction_name() -> &'static str {
        "subgraph"
    }

    fn store(method: &M) -> &GraphStore {
        method.store()
    }

    fn filter(method: &M, q: &Graph, features: &PathFeatures) -> Filtered {
        method.filter_with_features(q, Some(features))
    }

    fn verify(
        method: &M,
        q: &Graph,
        context: &QueryContext,
        candidates: &[GraphId],
        plans: Option<PlanSource<'_>>,
    ) -> (Vec<VerifyOutcome>, VerifyBatchStats) {
        method.verify_batch_with_plans(q, context, candidates, plans)
    }

    fn cost_ln(model: &mut CostModel, query_vertices: usize, stored_vertices: usize) -> LogValue {
        // The query is the pattern, the stored graph the target.
        model.cost_ln(query_vertices, stored_vertices)
    }
}

/// Supergraph-query direction over the trie-based method of Section 6.2
/// (paper Section 4.4). `crate::IgqSuperEngine` is
/// `Engine<SupergraphQueries>`.
pub struct SupergraphQueries;

impl QueryDirection for SupergraphQueries {
    type Method = TrieSupergraphMethod;

    const KNOWN_IS_ISUB: bool = false;

    fn direction_name() -> &'static str {
        "supergraph"
    }

    fn store(method: &TrieSupergraphMethod) -> &GraphStore {
        method.store()
    }

    fn filter(method: &TrieSupergraphMethod, q: &Graph, features: &PathFeatures) -> Filtered {
        Filtered::new(method.filter_super_with_features(q, features))
    }

    fn verify(
        method: &TrieSupergraphMethod,
        q: &Graph,
        _context: &QueryContext,
        candidates: &[GraphId],
        _plans: Option<PlanSource<'_>>,
    ) -> (Vec<VerifyOutcome>, VerifyBatchStats) {
        // Supergraph verification builds one plan per *candidate* (each
        // stored graph is the pattern), so the query-keyed cache does not
        // apply here.
        method.verify_super_batch(q, candidates)
    }

    fn cost_ln(model: &mut CostModel, query_vertices: usize, stored_vertices: usize) -> LogValue {
        // Inverted: the stored candidate is the pattern searched for
        // inside the query graph.
        model.cost_ln(stored_vertices, query_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_argument_order_inverts_with_direction() {
        // Sub: pattern = 2-vertex query, target = 4-vertex stored graph —
        // a real cost. Super swaps the roles: a 4-vertex candidate cannot
        // embed in a 2-vertex query, so the cost model reports zero.
        let mut m = CostModel::new(2);
        let sub = SubgraphQueries::<igq_methods::NaiveMethod>::cost_ln(&mut m, 2, 4);
        let sup = SupergraphQueries::cost_ln(&mut m, 2, 4);
        assert!(!sub.is_zero());
        assert!(sup.is_zero());
    }

    #[test]
    fn known_path_roles() {
        const {
            assert!(SubgraphQueries::<igq_methods::NaiveMethod>::KNOWN_IS_ISUB);
            assert!(!SupergraphQueries::KNOWN_IS_ISUB);
        }
    }
}
