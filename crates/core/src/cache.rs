//! The query cache: cached query graphs, their answers, and metadata.
//!
//! `Igraphs` in the paper's terminology (Section 5.2): the actual query
//! graphs live here together with their stored answer sets and the
//! replacement-policy metadata; `Isub`/`Isuper` are (re)built over this
//! store during window maintenance.

use crate::metadata::GraphMeta;
use crate::policy::ReplacementPolicy;
use igq_graph::canon::{canonical_code, CanonicalCode, GraphSignature};
use igq_graph::fxhash::FxHashMap;
use igq_graph::{Graph, GraphId};

/// One cached query.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The query graph itself.
    pub graph: Graph,
    /// WL signature for cheap exact-repeat prefiltering.
    pub signature: GraphSignature,
    /// Canonical code when the graph fits the canonicalization budget —
    /// the exact-repeat fast path key.
    pub code: Option<CanonicalCode>,
    /// The stored answer set (sorted dataset graph ids).
    pub answers: Vec<GraphId>,
    /// Replacement-policy counters.
    pub meta: GraphMeta,
}

impl CacheEntry {
    fn new(graph: Graph, mut answers: Vec<GraphId>) -> CacheEntry {
        answers.sort_unstable();
        answers.dedup();
        let signature = GraphSignature::of(&graph);
        let code = canonical_code(&graph);
        CacheEntry { graph, signature, code, answers, meta: GraphMeta::new() }
    }
}

/// Bounded store of cached queries with utility-based replacement.
#[derive(Debug, Clone, Default)]
pub struct QueryCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    policy: ReplacementPolicy,
    maintenance_round: u64,
    /// Canonical code → slot, for O(1) exact-repeat lookups. Rebuilt at
    /// every window maintenance (slots move under `swap_remove`).
    code_index: FxHashMap<CanonicalCode, usize>,
}

impl QueryCache {
    /// An empty cache bounded at `capacity` graphs, using the paper's
    /// utility replacement policy.
    pub fn new(capacity: usize) -> QueryCache {
        Self::with_policy(capacity, ReplacementPolicy::Utility)
    }

    /// An empty cache with an explicit replacement policy (ablations).
    pub fn with_policy(capacity: usize, policy: ReplacementPolicy) -> QueryCache {
        QueryCache {
            entries: Vec::new(),
            capacity,
            policy,
            maintenance_round: 0,
            code_index: FxHashMap::default(),
        }
    }

    /// The active replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity `C`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entry at `slot`.
    pub fn entry(&self, slot: usize) -> &CacheEntry {
        &self.entries[slot]
    }

    /// Mutable entry at `slot`.
    pub fn entry_mut(&mut self, slot: usize) -> &mut CacheEntry {
        &mut self.entries[slot]
    }

    /// All entries, slot-ordered.
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Advances every entry's query clock (`M(g) += 1`).
    pub fn tick_all(&mut self) {
        for e in &mut self.entries {
            e.meta.tick();
        }
    }

    /// Slots whose signature matches `sig` (exact-repeat candidates; the
    /// caller confirms with an isomorphism test).
    pub fn slots_with_signature(&self, sig: &GraphSignature) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.signature == *sig)
            .map(|(i, _)| i)
            .collect()
    }

    /// The slot caching a graph with this exact canonical code, if any —
    /// no confirmation test needed (equal codes ⇔ isomorphic).
    pub fn slot_with_code(&self, code: &CanonicalCode) -> Option<usize> {
        self.code_index.get(code).copied()
    }

    /// Window maintenance (Section 5.2): admit `incoming` `(graph, answers)`
    /// pairs, evicting the lowest-utility residents when over capacity.
    /// Returns `true` when the contents changed (indexes must be rebuilt).
    pub fn apply_window(&mut self, incoming: Vec<(Graph, Vec<GraphId>)>) -> bool {
        if incoming.is_empty() {
            return false;
        }
        self.maintenance_round += 1;
        let incoming_len = incoming.len().min(self.capacity);
        let overflow = (self.entries.len() + incoming_len).saturating_sub(self.capacity);
        if overflow > 0 {
            let metas: Vec<GraphMeta> = self.entries.iter().map(|e| e.meta).collect();
            let victims = self.policy.victims(&metas, overflow, self.maintenance_round);
            // Remove back-to-front so earlier indexes stay valid.
            for &slot in victims.iter().rev() {
                self.entries.swap_remove(slot);
            }
        }
        for (graph, answers) in incoming.into_iter().take(incoming_len) {
            self.entries.push(CacheEntry::new(graph, answers));
        }
        debug_assert!(self.entries.len() <= self.capacity);
        self.code_index = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.code.clone().map(|c| (c, i)))
            .collect();
        true
    }

    /// Approximate heap footprint (the iGQ index-size share of Fig. 18 that
    /// comes from stored query graphs and answers).
    pub fn heap_size_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.graph.heap_size_bytes() + (e.answers.len() * 4) as u64 + 64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;
    use igq_iso::LogValue;

    fn g(seed: u32) -> Graph {
        graph_from(&[seed, seed + 1], &[(0, 1)])
    }

    fn ids(raw: &[u32]) -> Vec<GraphId> {
        raw.iter().map(|&r| GraphId::new(r)).collect()
    }

    #[test]
    fn fills_until_capacity_without_eviction() {
        let mut c = QueryCache::new(3);
        assert!(c.apply_window(vec![(g(0), ids(&[1])), (g(1), ids(&[2]))]));
        assert_eq!(c.len(), 2);
        assert!(c.apply_window(vec![(g(2), ids(&[3]))]));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn evicts_lowest_utility_on_overflow() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![(g(0), ids(&[1])), (g(1), ids(&[2]))]);
        // Give slot 1 (graph g(1)) high utility.
        c.entry_mut(1).meta.tick();
        c.entry_mut(1).meta.record_hit(5, LogValue::from_linear(1e9));
        c.apply_window(vec![(g(2), ids(&[3]))]);
        assert_eq!(c.len(), 2);
        // g(0) (zero utility) must be gone; g(1) survives.
        let sigs: Vec<_> = c.entries().iter().map(|e| e.signature).collect();
        assert!(sigs.contains(&GraphSignature::of(&g(1))));
        assert!(sigs.contains(&GraphSignature::of(&g(2))));
        assert!(!sigs.contains(&GraphSignature::of(&g(0))));
    }

    #[test]
    fn answers_are_sorted_and_deduped() {
        let mut c = QueryCache::new(1);
        c.apply_window(vec![(g(0), ids(&[3, 1, 3, 2]))]);
        assert_eq!(c.entry(0).answers, ids(&[1, 2, 3]));
    }

    #[test]
    fn empty_window_is_a_noop() {
        let mut c = QueryCache::new(2);
        assert!(!c.apply_window(vec![]));
    }

    #[test]
    fn oversized_window_is_truncated_to_capacity() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![
            (g(0), ids(&[1])),
            (g(1), ids(&[2])),
            (g(2), ids(&[3])),
        ]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn signature_lookup() {
        let mut c = QueryCache::new(4);
        c.apply_window(vec![(g(0), ids(&[1])), (g(5), ids(&[2]))]);
        let slots = c.slots_with_signature(&GraphSignature::of(&g(5)));
        assert_eq!(slots.len(), 1);
        assert_eq!(c.entry(slots[0]).answers, ids(&[2]));
    }

    #[test]
    fn tick_all_advances_clocks() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![(g(0), ids(&[1]))]);
        c.tick_all();
        c.tick_all();
        assert_eq!(c.entry(0).meta.queries_seen, 2);
    }

    #[test]
    fn heap_size_positive() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![(g(0), ids(&[1]))]);
        assert!(c.heap_size_bytes() > 0);
    }
}
