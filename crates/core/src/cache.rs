//! The query cache: cached query graphs, their answers, and metadata.
//!
//! `Igraphs` in the paper's terminology (Section 5.2): the actual query
//! graphs live here together with their stored answer sets and the
//! replacement-policy metadata.
//!
//! Slots are **stable**: an entry keeps its slot index for its whole
//! residency, evicted slots go onto a free list, and admissions reuse freed
//! slots before growing the slot table. This is what lets `Isub`/`Isuper`
//! maintain themselves incrementally — their posting lists are keyed by
//! slot, and [`QueryCache::apply_window`] reports exactly which slots were
//! evicted and admitted (the [`WindowDelta`]) instead of forcing a rebuild.
//! Graphs are held behind `Arc` so the query indexes share them with the
//! cache instead of cloning.

use crate::metadata::GraphMeta;
use crate::policy::ReplacementPolicy;
use igq_graph::canon::{canonical_code, CanonicalCode, GraphSignature};
use igq_graph::fxhash::FxHashMap;
use igq_graph::{Graph, GraphId};
use std::sync::Arc;

/// One cached query.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The query graph itself, shared with the query indexes.
    pub graph: Arc<Graph>,
    /// WL signature for cheap exact-repeat prefiltering.
    pub signature: GraphSignature,
    /// Canonical code when the graph fits the canonicalization budget —
    /// the exact-repeat fast path key.
    pub code: Option<CanonicalCode>,
    /// The stored answer set (sorted dataset graph ids).
    pub answers: Vec<GraphId>,
    /// Replacement-policy counters.
    pub meta: GraphMeta,
}

impl CacheEntry {
    /// Finalizes a pending window entry for residency: sorts and dedups
    /// the answers and fills in whatever signature/code the engine did not
    /// precompute. Crate-visible so the sharded flip path
    /// ([`crate::shard`]) admits entries through the exact same
    /// preparation as [`QueryCache::apply_window`].
    pub(crate) fn new(entry: WindowEntry) -> CacheEntry {
        let WindowEntry {
            graph,
            mut answers,
            signature,
            code,
        } = entry;
        answers.sort_unstable();
        answers.dedup();
        // Reuse whatever the engine already computed during query
        // processing; canonicalization in particular is the expensive part
        // of admission, and the exact-repeat fast path computed it anyway.
        let signature = signature.unwrap_or_else(|| GraphSignature::of(&graph));
        let code = match code {
            Some(code) => code,
            None => canonical_code(&graph),
        };
        CacheEntry {
            graph,
            signature,
            code,
            answers,
            meta: GraphMeta::new(),
        }
    }
}

/// One query pending admission (`Itemp` member). `signature`/`code` carry
/// values the engine already computed on the query path so admission does
/// not recompute them; `None` means "not computed yet" (the outer `Option`
/// of `code` — the inner one is [`canonical_code`]'s own budget miss).
#[derive(Debug, Clone)]
pub struct WindowEntry {
    /// The query graph.
    pub graph: Arc<Graph>,
    /// Its answer set (sorted on admission).
    pub answers: Vec<GraphId>,
    /// Precomputed WL signature, if available.
    pub signature: Option<GraphSignature>,
    /// Precomputed canonicalization outcome, if one was attempted.
    pub code: Option<Option<CanonicalCode>>,
}

impl WindowEntry {
    /// An entry with nothing precomputed (import paths, tests).
    pub fn bare(graph: Arc<Graph>, answers: Vec<GraphId>) -> WindowEntry {
        WindowEntry {
            graph,
            answers,
            signature: None,
            code: None,
        }
    }
}

/// The slot-level outcome of one window maintenance: which slots lost
/// their entry and which gained one. A slot may appear in both lists
/// (evicted, then immediately reused for an admission).
#[derive(Debug, Clone, Default)]
pub struct WindowDelta {
    /// Slots whose previous occupant was evicted, in eviction order.
    pub evicted: Vec<usize>,
    /// Slots that received a new entry, in admission order.
    pub admitted: Vec<usize>,
    /// Canonical codes of the evicted entries that had one, in eviction
    /// order — the engine evicts these queries' cached matching plans so
    /// plans die with their windows. A code whose mapping survived (a
    /// still-resident isomorphic duplicate) is not listed.
    pub evicted_codes: Vec<CanonicalCode>,
}

impl WindowDelta {
    /// True when the maintenance changed nothing.
    pub fn is_empty(&self) -> bool {
        self.evicted.is_empty() && self.admitted.is_empty()
    }
}

/// Bounded store of cached queries with utility-based replacement.
#[derive(Debug, Clone, Default)]
pub struct QueryCache {
    /// Slot table; `None` = free slot (also listed in `free`).
    slots: Vec<Option<CacheEntry>>,
    /// Freed slot indexes available for reuse.
    free: Vec<usize>,
    /// Occupied-slot count (`slots.len() - free.len()`).
    len: usize,
    capacity: usize,
    policy: ReplacementPolicy,
    maintenance_round: u64,
    /// Canonical code → slot, for O(1) exact-repeat lookups. Maintained
    /// incrementally: admissions insert, evictions remove.
    code_index: FxHashMap<CanonicalCode, usize>,
}

impl QueryCache {
    /// An empty cache bounded at `capacity` graphs, using the paper's
    /// utility replacement policy.
    pub fn new(capacity: usize) -> QueryCache {
        Self::with_policy(capacity, ReplacementPolicy::Utility)
    }

    /// An empty cache with an explicit replacement policy (ablations).
    pub fn with_policy(capacity: usize, policy: ReplacementPolicy) -> QueryCache {
        QueryCache {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            capacity,
            policy,
            maintenance_round: 0,
            code_index: FxHashMap::default(),
        }
    }

    /// The active replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity `C`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Size of the slot table (occupied + free slots). Slot indexes are
    /// always `< slot_count()`.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Entry at `slot`.
    ///
    /// # Panics
    /// Panics if the slot is free (slots are only published via
    /// [`WindowDelta::admitted`] and [`QueryCache::iter`]).
    pub fn entry(&self, slot: usize) -> &CacheEntry {
        self.slots[slot].as_ref().expect("entry at free slot")
    }

    /// Mutable entry at `slot`.
    pub fn entry_mut(&mut self, slot: usize) -> &mut CacheEntry {
        self.slots[slot].as_mut().expect("entry at free slot")
    }

    /// Entry at `slot`, or `None` when the slot is free.
    pub fn get(&self, slot: usize) -> Option<&CacheEntry> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Iterates `(slot, entry)` over occupied slots, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CacheEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
    }

    /// Advances every entry's query clock (`M(g) += 1`).
    pub fn tick_all(&mut self) {
        for e in self.slots.iter_mut().flatten() {
            e.meta.tick();
        }
    }

    /// Slots whose signature matches `sig` (exact-repeat candidates; the
    /// caller confirms with an isomorphism test).
    pub fn slots_with_signature(&self, sig: &GraphSignature) -> Vec<usize> {
        self.iter()
            .filter(|(_, e)| e.signature == *sig)
            .map(|(i, _)| i)
            .collect()
    }

    /// The slot caching a graph with this exact canonical code, if any —
    /// no confirmation test needed (equal codes ⇔ isomorphic).
    pub fn slot_with_code(&self, code: &CanonicalCode) -> Option<usize> {
        self.code_index.get(code).copied()
    }

    /// Window maintenance (Section 5.2): admit the `incoming` window
    /// entries, evicting the lowest-utility residents when over capacity.
    ///
    /// Returns the [`WindowDelta`] — exactly which slots were evicted and
    /// which admitted — so callers can update the query indexes
    /// incrementally instead of rebuilding them.
    pub fn apply_window(&mut self, incoming: Vec<WindowEntry>) -> WindowDelta {
        let mut delta = WindowDelta::default();
        if incoming.is_empty() || self.capacity == 0 {
            return delta;
        }
        self.maintenance_round += 1;
        let incoming_len = incoming.len().min(self.capacity);
        let overflow = (self.len + incoming_len).saturating_sub(self.capacity);
        if overflow > 0 {
            // The policy ranks a dense meta list; map dense indexes back to
            // their (possibly sparse) slots.
            let occupied: Vec<usize> = self.iter().map(|(i, _)| i).collect();
            let metas: Vec<GraphMeta> = occupied.iter().map(|&s| self.entry(s).meta).collect();
            let victims = self
                .policy
                .victims(&metas, overflow, self.maintenance_round);
            for dense in victims {
                let slot = occupied[dense];
                if let Some(code) = self.evict(slot) {
                    delta.evicted_codes.push(code);
                }
                delta.evicted.push(slot);
            }
        }
        for entry in incoming.into_iter().take(incoming_len) {
            let slot = self.admit(CacheEntry::new(entry));
            delta.admitted.push(slot);
        }
        debug_assert!(self.len <= self.capacity);
        delta
    }

    /// The free-slot stack, bottom first (persistence support: admissions
    /// pop from the top, so the order is part of the cache's replayable
    /// state).
    pub(crate) fn free_slots(&self) -> &[usize] {
        &self.free
    }

    /// The maintenance-round counter (seeds the pseudo-random replacement
    /// policy, so it is part of the cache's replayable state).
    pub(crate) fn round(&self) -> u64 {
        self.maintenance_round
    }

    /// Reconstructs a cache from persisted state: the full slot geometry
    /// (occupied entries, free-slot stack, table size) plus the
    /// maintenance round. Validates that `free` and the occupied slots
    /// partition `0..slot_count` exactly — corrupted geometry is reported,
    /// not absorbed.
    pub(crate) fn restore(
        capacity: usize,
        policy: ReplacementPolicy,
        maintenance_round: u64,
        slot_count: usize,
        free: Vec<usize>,
        entries: Vec<(usize, CacheEntry)>,
    ) -> Result<QueryCache, String> {
        if entries.len() > capacity {
            return Err(format!(
                "restored cache holds {} entries, over capacity {capacity}",
                entries.len()
            ));
        }
        if entries.len() + free.len() != slot_count {
            return Err(format!(
                "slot accounting broken: {} occupied + {} free != {slot_count} slots",
                entries.len(),
                free.len()
            ));
        }
        let mut cache = QueryCache::with_policy(capacity, policy);
        cache.maintenance_round = maintenance_round;
        cache.slots = Vec::new();
        cache.slots.resize_with(slot_count, || None);
        for (slot, entry) in entries {
            let dst = cache
                .slots
                .get_mut(slot)
                .ok_or_else(|| format!("entry slot {slot} out of range ({slot_count} slots)"))?;
            if dst.is_some() {
                return Err(format!("slot {slot} restored twice"));
            }
            if let Some(code) = entry.code.clone() {
                cache.code_index.insert(code, slot);
            }
            *dst = Some(entry);
            cache.len += 1;
        }
        for &slot in &free {
            if slot >= slot_count {
                return Err(format!(
                    "free slot {slot} out of range ({slot_count} slots)"
                ));
            }
            if cache.slots[slot].is_some() {
                return Err(format!("slot {slot} listed free but occupied"));
            }
        }
        let mut seen: Vec<usize> = free.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != free.len() {
            return Err("free list contains duplicates".into());
        }
        cache.free = free;
        Ok(cache)
    }

    /// Re-applies one *recorded* window flip during WAL replay: evicts
    /// exactly the recorded slots (the replacement policy is not re-run)
    /// and admits the recorded entries, verifying that the free-list
    /// mechanics place each admission in its recorded slot — any
    /// disagreement means the log does not match the cache state and is
    /// reported as corruption.
    pub(crate) fn replay_window(
        &mut self,
        evicted: &[usize],
        admitted: Vec<(usize, CacheEntry)>,
    ) -> Result<(), String> {
        self.maintenance_round += 1;
        for &slot in evicted {
            if self.get(slot).is_none() {
                return Err(format!("replayed eviction of free slot {slot}"));
            }
            self.evict(slot);
        }
        for (slot, entry) in admitted {
            let got = self.admit(entry);
            if got != slot {
                return Err(format!(
                    "replayed admission landed in slot {got}, log says {slot}"
                ));
            }
        }
        Ok(())
    }

    /// Returns the evictee's canonical code when its fast-path mapping was
    /// dropped with it (a still-resident isomorphic duplicate keeps the
    /// mapping — and its cached plans — alive).
    fn evict(&mut self, slot: usize) -> Option<CanonicalCode> {
        let entry = self.slots[slot].take().expect("evicting a free slot");
        self.free.push(slot);
        self.len -= 1;
        if let Some(code) = entry.code {
            // Two residents can share a canonical code (imports are not
            // deduplicated); only drop the mapping if it points here, or
            // the surviving duplicate would lose its fast-path entry.
            if self.code_index.get(&code) == Some(&slot) {
                self.code_index.remove(&code);
                return Some(code);
            }
        }
        None
    }

    /// Places `entry` at an externally allocated `slot`, growing the slot
    /// table as needed. The sharded-state admission path: with `N > 1`
    /// shards the *global* slot allocator (not this cache) decides slot
    /// numbers, and each shard's cache is a sparse container over the
    /// global slot namespace. Maintains `len` and the code index exactly
    /// like [`admit`](Self::admit); the local free list is untouched (it
    /// stays empty in sharded operation).
    ///
    /// # Panics
    /// Panics if the slot is already occupied — the allocator never hands
    /// out a live slot, so an occupied target is a logic error.
    pub(crate) fn place_at(&mut self, slot: usize, entry: CacheEntry) {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, || None);
        }
        assert!(
            self.slots[slot].is_none(),
            "placing into an occupied slot {slot}"
        );
        if let Some(code) = entry.code.clone() {
            self.code_index.insert(code, slot);
        }
        self.slots[slot] = Some(entry);
        self.len += 1;
    }

    /// Removes the entry at `slot` without touching the local free list —
    /// the sharded-state eviction path, where the freed slot goes back to
    /// the *global* allocator instead. Returns the evictee's canonical
    /// code when its fast-path mapping died with it, with the same
    /// duplicate-preserving rule as [`evict`](Self::evict).
    ///
    /// # Panics
    /// Panics if the slot is free (the flip only evicts occupied slots).
    pub(crate) fn take_at(&mut self, slot: usize) -> Option<CanonicalCode> {
        let entry = self.slots[slot].take().expect("taking a free slot");
        self.len -= 1;
        if let Some(code) = entry.code {
            if self.code_index.get(&code) == Some(&slot) {
                self.code_index.remove(&code);
                return Some(code);
            }
        }
        None
    }

    fn admit(&mut self, entry: CacheEntry) -> usize {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        if let Some(code) = entry.code.clone() {
            self.code_index.insert(code, slot);
        }
        debug_assert!(
            self.slots[slot].is_none(),
            "admitting into an occupied slot"
        );
        self.slots[slot] = Some(entry);
        self.len += 1;
        slot
    }

    /// Approximate heap footprint (the iGQ index-size share of Fig. 18 that
    /// comes from stored query graphs and answers).
    ///
    /// Accounts the slot table and code index by *capacity* and each entry
    /// by its real constituents (graph heap, answer-vector capacity, the
    /// canonical code's words) instead of the flat per-entry constant this
    /// method originally used.
    pub fn heap_size_bytes(&self) -> u64 {
        let mut bytes = (self.slots.capacity() * std::mem::size_of::<Option<CacheEntry>>()) as u64;
        bytes += (self.free.capacity() * std::mem::size_of::<usize>()) as u64;
        for (_, e) in self.iter() {
            bytes += e.graph.heap_size_bytes();
            bytes += (e.answers.capacity() * std::mem::size_of::<GraphId>()) as u64;
            if let Some(code) = &e.code {
                bytes += std::mem::size_of_val(code.words()) as u64;
            }
        }
        // Code index: SwissTable buckets of (key, slot) pairs plus one
        // control byte each, at the 7/8 load factor.
        let entry =
            (std::mem::size_of::<CanonicalCode>() + std::mem::size_of::<usize>() + 1) as u64;
        bytes += (self.code_index.capacity() as u64) * 8 / 7 * entry;
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;
    use igq_iso::LogValue;

    fn g(seed: u32) -> Arc<Graph> {
        Arc::new(graph_from(&[seed, seed + 1], &[(0, 1)]))
    }

    fn ids(raw: &[u32]) -> Vec<GraphId> {
        raw.iter().map(|&r| GraphId::new(r)).collect()
    }

    #[test]
    fn fills_until_capacity_without_eviction() {
        let mut c = QueryCache::new(3);
        let d = c.apply_window(vec![
            WindowEntry::bare(g(0), ids(&[1])),
            WindowEntry::bare(g(1), ids(&[2])),
        ]);
        assert_eq!(d.admitted, vec![0, 1]);
        assert!(d.evicted.is_empty());
        assert_eq!(c.len(), 2);
        let d = c.apply_window(vec![WindowEntry::bare(g(2), ids(&[3]))]);
        assert_eq!(d.admitted, vec![2]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn evicts_lowest_utility_on_overflow_and_reuses_slot() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![
            WindowEntry::bare(g(0), ids(&[1])),
            WindowEntry::bare(g(1), ids(&[2])),
        ]);
        // Give slot 1 (graph g(1)) high utility.
        c.entry_mut(1).meta.tick();
        c.entry_mut(1)
            .meta
            .record_hit(5, LogValue::from_linear(1e9));
        let d = c.apply_window(vec![WindowEntry::bare(g(2), ids(&[3]))]);
        // g(0) (zero utility) is evicted from slot 0, which is then reused.
        assert_eq!(d.evicted, vec![0]);
        assert_eq!(d.admitted, vec![0]);
        assert_eq!(c.len(), 2);
        let sigs: Vec<_> = c.iter().map(|(_, e)| e.signature).collect();
        assert!(sigs.contains(&GraphSignature::of(&g(1))));
        assert!(sigs.contains(&GraphSignature::of(&g(2))));
        assert!(!sigs.contains(&GraphSignature::of(&g(0))));
        // Surviving slot 1 kept its entry untouched.
        assert_eq!(c.entry(1).signature, GraphSignature::of(&g(1)));
    }

    #[test]
    fn answers_are_sorted_and_deduped() {
        let mut c = QueryCache::new(1);
        c.apply_window(vec![WindowEntry::bare(g(0), ids(&[3, 1, 3, 2]))]);
        assert_eq!(c.entry(0).answers, ids(&[1, 2, 3]));
    }

    #[test]
    fn empty_window_is_a_noop() {
        let mut c = QueryCache::new(2);
        assert!(c.apply_window(vec![]).is_empty());
    }

    #[test]
    fn oversized_window_is_truncated_to_capacity() {
        let mut c = QueryCache::new(2);
        let d = c.apply_window(vec![
            WindowEntry::bare(g(0), ids(&[1])),
            WindowEntry::bare(g(1), ids(&[2])),
            WindowEntry::bare(g(2), ids(&[3])),
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(d.admitted.len(), 2);
    }

    #[test]
    fn signature_lookup() {
        let mut c = QueryCache::new(4);
        c.apply_window(vec![
            WindowEntry::bare(g(0), ids(&[1])),
            WindowEntry::bare(g(5), ids(&[2])),
        ]);
        let slots = c.slots_with_signature(&GraphSignature::of(&g(5)));
        assert_eq!(slots.len(), 1);
        assert_eq!(c.entry(slots[0]).answers, ids(&[2]));
    }

    #[test]
    fn code_index_follows_evictions() {
        let mut c = QueryCache::new(1);
        c.apply_window(vec![WindowEntry::bare(g(0), ids(&[1]))]);
        let code0 = canonical_code(&g(0)).expect("small graph canonicalizes");
        assert_eq!(c.slot_with_code(&code0), Some(0));
        let d = c.apply_window(vec![WindowEntry::bare(g(5), ids(&[2]))]);
        assert_eq!(c.slot_with_code(&code0), None, "evicted code unindexed");
        assert_eq!(
            d.evicted_codes,
            vec![code0],
            "delta reports the dead code for plan-cache eviction"
        );
        let code5 = canonical_code(&g(5)).expect("small graph canonicalizes");
        assert_eq!(c.slot_with_code(&code5), Some(0), "reused slot indexed");
    }

    #[test]
    fn duplicate_codes_survive_partial_eviction() {
        // Imports are not deduplicated, so two residents can share one
        // canonical code. Evicting one must not strip the survivor's
        // fast-path mapping.
        let mut c = QueryCache::new(3);
        c.apply_window(vec![
            WindowEntry::bare(g(0), ids(&[1])), // slot 0
            WindowEntry::bare(g(0), ids(&[2])), // slot 1: isomorphic duplicate
            WindowEntry::bare(g(7), ids(&[3])), // slot 2
        ]);
        let code = canonical_code(&g(0)).expect("small graph canonicalizes");
        // The duplicate's admission left the mapping at slot 1.
        assert_eq!(c.slot_with_code(&code), Some(1));
        // Protect slots 1 and 2; churn out slot 0 (the non-mapped twin).
        for keep in [1, 2] {
            c.entry_mut(keep).meta.tick();
            c.entry_mut(keep)
                .meta
                .record_hit(9, LogValue::from_linear(1e9));
        }
        let d = c.apply_window(vec![WindowEntry::bare(g(8), ids(&[4]))]);
        assert_eq!(d.evicted, vec![0]);
        assert_eq!(
            c.slot_with_code(&code),
            Some(1),
            "survivor keeps its exact-repeat mapping"
        );
        assert!(
            d.evicted_codes.is_empty(),
            "shared code stays alive with the duplicate, plans survive"
        );
    }

    #[test]
    fn tick_all_advances_clocks() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![WindowEntry::bare(g(0), ids(&[1]))]);
        c.tick_all();
        c.tick_all();
        assert_eq!(c.entry(0).meta.queries_seen, 2);
    }

    #[test]
    fn heap_size_positive_and_capacity_aware() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![WindowEntry::bare(g(0), ids(&[1]))]);
        let one = c.heap_size_bytes();
        assert!(one > 0);
        c.apply_window(vec![WindowEntry::bare(g(1), ids(&[1, 2, 3, 4]))]);
        assert!(c.heap_size_bytes() > one);
    }

    /// Clones a cache through the persistence surface: restore from its
    /// exported geometry, as `Engine::open` does from a checkpoint.
    fn restore_copy(c: &QueryCache) -> QueryCache {
        QueryCache::restore(
            c.capacity(),
            c.policy(),
            c.round(),
            c.slot_count(),
            c.free_slots().to_vec(),
            c.iter().map(|(s, e)| (s, e.clone())).collect(),
        )
        .expect("valid geometry restores")
    }

    #[test]
    fn restore_then_replay_tracks_the_live_cache() {
        let mut live = QueryCache::new(2);
        live.apply_window(vec![
            WindowEntry::bare(g(0), ids(&[1])),
            WindowEntry::bare(g(1), ids(&[2])),
        ]);
        // Protect slot 1 so the next window evicts slot 0 deterministically.
        live.entry_mut(1).meta.tick();
        live.entry_mut(1)
            .meta
            .record_hit(5, LogValue::from_linear(1e9));
        let mut restored = restore_copy(&live);
        assert_eq!(restored.len(), live.len());
        assert_eq!(restored.round(), live.round());

        // The live cache flips a window; the restored one replays the
        // recorded delta — both must land in identical states.
        let d = live.apply_window(vec![WindowEntry::bare(g(7), ids(&[3]))]);
        let admitted: Vec<(usize, CacheEntry)> = d
            .admitted
            .iter()
            .map(|&s| (s, live.entry(s).clone()))
            .collect();
        restored
            .replay_window(&d.evicted, admitted)
            .expect("replay follows the log");
        assert_eq!(restored.round(), live.round());
        assert_eq!(restored.free_slots(), live.free_slots());
        let sig = |c: &QueryCache| -> Vec<(usize, GraphSignature)> {
            c.iter().map(|(s, e)| (s, e.signature)).collect()
        };
        assert_eq!(sig(&restored), sig(&live));
        let code7 = canonical_code(&g(7)).expect("small graph canonicalizes");
        assert_eq!(restored.slot_with_code(&code7), live.slot_with_code(&code7));
    }

    #[test]
    fn restore_rejects_broken_geometry() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![WindowEntry::bare(g(0), ids(&[1]))]);
        let entries: Vec<(usize, CacheEntry)> = c.iter().map(|(s, e)| (s, e.clone())).collect();
        // Free list overlaps an occupied slot.
        assert!(QueryCache::restore(
            2,
            ReplacementPolicy::Utility,
            1,
            1,
            vec![0],
            entries.clone()
        )
        .is_err());
        // Slot accounting does not cover the table.
        assert!(
            QueryCache::restore(2, ReplacementPolicy::Utility, 1, 5, vec![], entries.clone())
                .is_err()
        );
        // Over capacity.
        assert!(QueryCache::restore(0, ReplacementPolicy::Utility, 1, 1, vec![], entries).is_err());
    }

    #[test]
    fn replay_rejects_divergent_slots() {
        let mut c = QueryCache::new(2);
        c.apply_window(vec![WindowEntry::bare(g(0), ids(&[1]))]);
        let entry = c.entry(0).clone();
        // Log claims the admission went to slot 7; mechanics put it at 1.
        assert!(c.replay_window(&[], vec![(7, entry)]).is_err());
        // Evicting a free slot is equally corrupt.
        assert!(c.replay_window(&[5], vec![]).is_err());
    }

    #[test]
    fn stable_slots_under_churn() {
        let mut c = QueryCache::new(3);
        c.apply_window(vec![
            WindowEntry::bare(g(0), ids(&[1])),
            WindowEntry::bare(g(1), ids(&[2])),
            WindowEntry::bare(g(2), ids(&[3])),
        ]);
        // Pin slot 2 with utility; churn the rest repeatedly.
        c.entry_mut(2).meta.tick();
        c.entry_mut(2)
            .meta
            .record_hit(9, LogValue::from_linear(1e12));
        let pinned = c.entry(2).signature;
        for round in 3..10u32 {
            c.entry_mut(2).meta.tick();
            c.entry_mut(2)
                .meta
                .record_hit(9, LogValue::from_linear(1e12));
            let d = c.apply_window(vec![WindowEntry::bare(g(round), ids(&[round]))]);
            assert_eq!(d.evicted.len(), 1);
            assert_eq!(d.admitted.len(), 1);
            assert!(!d.evicted.contains(&2), "high-utility slot survives");
            assert_eq!(c.entry(2).signature, pinned, "slot 2 never moves");
            assert!(c.slot_count() <= 3, "free slots are reused, not grown");
        }
    }
}
