//! `Isub` — the subgraph component of the iGQ query index (Section 6.1).
//!
//! Given a new query `g`, `Isub` finds cached queries `G` with `g ⊆ G`
//! (whose stored answers are then *known answers* of `g`, formula (4)).
//! This is "a microcosm of our original problem": a GGSX-style path trie
//! over the cached query graphs filters candidates, and VF2 verifies them,
//! which trivially satisfies formula (1): every returned `G` really is a
//! supergraph of `g`.
//!
//! The index is **incrementally maintained**: posting lists are keyed by
//! the cache's stable slot indexes, [`IsubIndex::insert`] adds one cached
//! query's paths and [`IsubIndex::remove`] tombstones them again, so window
//! maintenance costs O(window delta) postings instead of re-enumerating
//! every cached graph ("shadow indexing", the paper's Section 5.2 approach,
//! remains available as [`MaintenanceMode::ShadowRebuild`] for ablation —
//! and [`IsubIndex::build`] is exactly that cold-start path). Graphs are
//! shared with the cache via `Arc`, not cloned.
//!
//! [`MaintenanceMode::ShadowRebuild`]: crate::config::MaintenanceMode::ShadowRebuild

use igq_features::{enumerate_paths, FeatureTrie, LabelSeq, PathConfig, PathFeatures};
use igq_graph::{Graph, GraphId};
use igq_iso::plan::{matches_with_plan, MatchPlan};
use igq_iso::{with_thread_scratch, IsoStats, MatchConfig};
use std::sync::Arc;

/// One indexed cache slot.
#[derive(Debug, Clone)]
struct SlotEntry {
    graph: Arc<Graph>,
    /// The distinct path features inserted for this slot — kept so
    /// `remove(slot)` can find its postings without re-enumeration.
    /// Shared (`Arc`) with the sibling `IsuperIndex` entry for the same
    /// slot when both were fed by one extraction.
    features: Arc<[LabelSeq]>,
    /// Deepest exhaustively enumerated path length for this graph.
    complete_len: u8,
}

/// Subgraph index over the cached queries, maintained incrementally.
/// `Clone` supports the background maintainer's double-buffered snapshots
/// (a deep copy seeds the fallback shadow buffer).
#[derive(Clone)]
pub struct IsubIndex {
    path_config: PathConfig,
    trie: FeatureTrie,
    slots: Vec<Option<SlotEntry>>,
}

impl IsubIndex {
    /// An empty index.
    pub fn new(path_config: PathConfig) -> IsubIndex {
        IsubIndex {
            path_config,
            trie: FeatureTrie::new(),
            slots: Vec::new(),
        }
    }

    /// Cold-start build over `(slot, graph)` pairs — a sequence of
    /// [`IsubIndex::insert`]s, used at engine construction, import, and as
    /// the shadow-rebuild ablation path.
    pub fn build(
        entries: impl IntoIterator<Item = (usize, Arc<Graph>)>,
        path_config: PathConfig,
    ) -> IsubIndex {
        let mut index = IsubIndex::new(path_config);
        for (slot, graph) in entries {
            index.insert(slot, graph);
        }
        index
    }

    /// Indexes `graph` under `slot`, returning the number of postings
    /// touched. The slot must be empty (freshly admitted or removed).
    pub fn insert(&mut self, slot: usize, graph: Arc<Graph>) -> u64 {
        let features = enumerate_paths(&graph, &self.path_config);
        let keys: Arc<[LabelSeq]> = features.counts.keys().cloned().collect();
        self.insert_features(slot, graph, &features, keys)
    }

    /// [`IsubIndex::insert`] with the path features already extracted —
    /// window maintenance enumerates each admitted graph once and feeds
    /// the same `features`/`keys` to both indexes. `keys` must be the
    /// distinct feature sequences of `features`.
    pub fn insert_features(
        &mut self,
        slot: usize,
        graph: Arc<Graph>,
        features: &PathFeatures,
        keys: Arc<[LabelSeq]>,
    ) -> u64 {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, || None);
        }
        debug_assert!(self.slots[slot].is_none(), "insert into occupied Isub slot");
        debug_assert_eq!(keys.len(), features.counts.len());
        let id = GraphId::from_index(slot);
        for (seq, count) in &features.counts {
            self.trie.insert(seq, id, *count);
        }
        let touched = keys.len() as u64;
        self.slots[slot] = Some(SlotEntry {
            graph,
            features: keys,
            complete_len: features.complete_len as u8,
        });
        touched
    }

    /// Unindexes `slot`, returning the number of postings touched.
    pub fn remove(&mut self, slot: usize) -> u64 {
        let Some(entry) = self.slots.get_mut(slot).and_then(Option::take) else {
            return 0;
        };
        let id = GraphId::from_index(slot);
        let mut touched = 0u64;
        for seq in entry.features.iter() {
            if self.trie.remove(seq, id) {
                touched += 1;
            }
        }
        touched
    }

    /// Number of indexed cache slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The graph indexed under `slot`, if any. Under background
    /// maintenance the engines compare this (by `Arc` identity) against
    /// the live cache entry to discard hits from slots the cache has since
    /// evicted or reused.
    pub fn slot_graph(&self, slot: usize) -> Option<&Arc<Graph>> {
        self.slots
            .get(slot)
            .and_then(Option::as_ref)
            .map(|e| &e.graph)
    }

    /// The distinct feature sequences indexed for `slot` with their live
    /// occurrence counts, plus the slot's exhaustively enumerated depth —
    /// the normalized per-slot index state the persistence layer
    /// checkpoints (so recovery can re-insert without re-enumerating the
    /// graph). `None` when the slot is not indexed. Both indexes hold the
    /// same feature multiset per slot, so reading one side suffices.
    pub fn slot_features(&self, slot: usize) -> Option<(Vec<(LabelSeq, u32)>, usize)> {
        let entry = self.slots.get(slot).and_then(Option::as_ref)?;
        let id = GraphId::from_index(slot);
        let counts = entry
            .features
            .iter()
            .map(|seq| (seq.clone(), self.trie.count_in(seq, id)))
            .collect();
        Some((counts, entry.complete_len as usize))
    }

    /// Cache slots whose graph is a (verified) supergraph of `q`, plus the
    /// iGQ-internal iso work performed. `qf` is the query's path-feature
    /// set, extracted once by the engine and shared across the base filter
    /// and both index probes.
    ///
    /// The probe's pattern is the query and every target is a (small)
    /// cached query graph, so one [`MatchPlan`] built per probe — ordered
    /// by the query's own label histogram, a fine seed ranking at cached
    /// queries' sizes — is shared across all filtered slots, with the
    /// thread's scratch: the probe performs no per-candidate allocations.
    pub fn supergraphs_of(&self, q: &Graph, qf: &PathFeatures) -> (Vec<usize>, IsoStats) {
        self.supergraphs_of_with_plans(q, qf, None)
    }

    /// [`IsubIndex::supergraphs_of`] with the engine's plan cache: a
    /// repeated query reuses its probe plan under its canonical code
    /// (`plans` is the cache plus the query's code) instead of rebuilding
    /// it.
    pub fn supergraphs_of_with_plans(
        &self,
        q: &Graph,
        qf: &PathFeatures,
        plans: Option<(
            &igq_iso::plan_cache::PlanCache,
            &igq_graph::canon::CanonicalCode,
        )>,
    ) -> (Vec<usize>, IsoStats) {
        let mut stats = IsoStats::new();
        let mut slots = Vec::new();
        let filtered = self.filter(q, qf);
        if filtered.is_empty() {
            return (slots, stats);
        }
        let config = MatchConfig::default();
        let mut rarity = |l| q.vertices_with_label(l).len() as u64;
        let plan = match plans {
            Some((cache, code)) => cache.get_or_build(code, q, &config, &mut rarity).0,
            None => std::sync::Arc::new(MatchPlan::build(q, &config, &mut rarity)),
        };
        with_thread_scratch(|scratch| {
            for slot in filtered {
                let cached = &self.slots[slot]
                    .as_ref()
                    .expect("filtered slot occupied")
                    .graph;
                let (verdict, states) = matches_with_plan(&plan, cached, scratch);
                stats.record_verdict(verdict, states);
                if verdict.is_found() {
                    slots.push(slot);
                }
            }
        });
        (slots, stats)
    }

    /// GGSX-style candidate filtering over the cached queries: a slot
    /// survives only if it contains every query path feature at least as
    /// often as the query does (restricted to lengths both sides
    /// enumerated exhaustively, so budget truncation weakens filtering
    /// instead of corrupting it).
    fn filter(&self, q: &Graph, qf: &PathFeatures) -> Vec<usize> {
        let max_len = self.path_config.max_len;
        let query_features: Vec<(&LabelSeq, u32)> = qf
            .counts
            .iter()
            .filter(|(seq, _)| seq.edge_len() <= max_len.min(qf.complete_len))
            .map(|(seq, &c)| (seq, c))
            .collect();

        let size_ok = |slot: usize| {
            let g = &self.slots[slot].as_ref().expect("occupied").graph;
            g.vertex_count() >= q.vertex_count() && g.edge_count() >= q.edge_count()
        };

        if query_features.is_empty() {
            return (0..self.slots.len())
                .filter(|&s| self.slots[s].is_some() && size_ok(s))
                .collect();
        }

        // Fully-indexed slots: posting-list intersection, most selective
        // feature first.
        let mut order: Vec<usize> = (0..query_features.len()).collect();
        order.sort_by_key(|&i| self.trie.get(query_features[i].0).len());
        let mut full: Option<Vec<usize>> = None;
        for &i in &order {
            let (seq, count) = query_features[i];
            let qualifying: Vec<usize> = self
                .trie
                .get(seq)
                .iter()
                .filter(|p| {
                    p.count >= count
                        && self.slots[p.graph.index()]
                            .as_ref()
                            .is_some_and(|e| e.complete_len as usize == max_len)
                })
                .map(|p| p.graph.index())
                .collect();
            full = Some(match full {
                None => qualifying,
                Some(acc) => intersect_sorted_usize(&acc, &qualifying),
            });
            if full.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        let mut candidates = full.unwrap_or_default();

        // Budget-truncated slots: only features within each graph's
        // exhaustive depth may exclude it.
        for (slot, entry) in self.slots.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let depth = entry.complete_len as usize;
            if depth == max_len {
                continue; // handled by the intersection above
            }
            let id = GraphId::from_index(slot);
            let ok = query_features
                .iter()
                .filter(|(seq, _)| seq.edge_len() <= depth)
                .all(|(seq, count)| self.trie.count_in(seq, id) >= *count);
            if ok {
                candidates.push(slot);
            }
        }
        candidates.sort_unstable();
        candidates.retain(|&s| size_ok(s));
        candidates
    }

    /// Approximate heap footprint (Fig. 18 accounting).
    pub fn heap_size_bytes(&self) -> u64 {
        let mut bytes = self.trie.heap_size_bytes();
        bytes += (self.slots.capacity() * std::mem::size_of::<Option<SlotEntry>>()) as u64;
        for entry in self.slots.iter().flatten() {
            // The graph itself is owned by (accounted to) the query cache;
            // the index pays for its feature key list (shared with the
            // sibling IsuperIndex, which counts only the pointer).
            bytes += (entry.features.len() * std::mem::size_of::<LabelSeq>()) as u64;
            bytes += entry
                .features
                .iter()
                .map(LabelSeq::heap_size_bytes)
                .sum::<u64>();
        }
        bytes
    }

    /// A canonical summary of the index contents — occupied slots and the
    /// live postings of every feature — used by `self_check` to diff an
    /// incrementally maintained index against a fresh shadow rebuild.
    pub fn snapshot(&self) -> IndexSnapshot {
        let mut postings: Vec<(LabelSeq, Vec<(usize, u32)>)> = Vec::new();
        self.trie.for_each_feature(|seq, ps| {
            let live: Vec<(usize, u32)> = ps
                .iter()
                .filter(|p| p.count > 0)
                .map(|p| (p.graph.index(), p.count))
                .collect();
            if !live.is_empty() {
                postings.push((seq.clone(), live));
            }
        });
        postings.sort_by(|a, b| a.0.cmp(&b.0));
        let slots = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i)
            .collect();
        IndexSnapshot { slots, postings }
    }
}

/// Canonical index contents for equivalence checks (see
/// [`IsubIndex::snapshot`]; `IsuperIndex` produces the same shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSnapshot {
    /// Occupied slot indexes, ascending.
    pub slots: Vec<usize>,
    /// Per-feature live postings `(slot, count)`, feature-sorted.
    pub postings: Vec<(LabelSeq, Vec<(usize, u32)>)>,
}

impl IndexSnapshot {
    /// Diffs two snapshots, reporting the first discrepancy.
    pub fn diff(&self, other: &IndexSnapshot) -> Result<(), String> {
        if self.slots != other.slots {
            return Err(format!(
                "slot sets differ: {:?} vs {:?}",
                self.slots, other.slots
            ));
        }
        if self.postings.len() != other.postings.len() {
            return Err(format!(
                "feature counts differ: {} vs {}",
                self.postings.len(),
                other.postings.len()
            ));
        }
        for ((seq_a, ps_a), (seq_b, ps_b)) in self.postings.iter().zip(&other.postings) {
            if seq_a != seq_b {
                return Err(format!("feature sets differ at {seq_a:?} vs {seq_b:?}"));
            }
            if ps_a != ps_b {
                return Err(format!(
                    "postings differ for {seq_a:?}: {ps_a:?} vs {ps_b:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Sorted intersection of two ascending slot lists.
fn intersect_sorted_usize(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::graph_from;

    fn probe(idx: &IsubIndex, q: &Graph) -> (Vec<usize>, IsoStats) {
        let qf = enumerate_paths(q, &PathConfig::default());
        idx.supergraphs_of(q, &qf)
    }

    /// `(labels, edges)` shorthand for building test graphs.
    type GraphSpec<'a> = (&'a [u32], &'a [(u32, u32)]);

    fn slots_of(labels_edges: &[GraphSpec]) -> IsubIndex {
        IsubIndex::build(
            labels_edges
                .iter()
                .enumerate()
                .map(|(i, (ls, es))| (i, Arc::new(graph_from(ls, es)))),
            PathConfig::default(),
        )
    }

    #[test]
    fn finds_supergraphs_among_cache() {
        let idx = slots_of(&[
            (&[0, 1, 0], &[(0, 1), (1, 2)]),            // slot 0: 0-1-0 path
            (&[2, 2], &[(0, 1)]),                       // slot 1: 2-2 edge
            (&[0, 1, 0, 3], &[(0, 1), (1, 2), (2, 3)]), // slot 2: longer path
        ]);
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let (slots, stats) = probe(&idx, &q);
        assert_eq!(slots, vec![0, 2]);
        assert!(stats.tests >= 2);
    }

    #[test]
    fn returns_only_true_supergraphs_formula_1() {
        let idx = slots_of(&[
            (&[0, 0], &[(0, 1)]),
            (&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
        ]);
        // C4 query: neither cached entry contains it.
        let q = graph_from(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (slots, _) = probe(&idx, &q);
        assert!(slots.is_empty());
    }

    #[test]
    fn empty_cache() {
        let idx = IsubIndex::new(PathConfig::default());
        let q = graph_from(&[0], &[]);
        let (slots, stats) = probe(&idx, &q);
        assert!(slots.is_empty());
        assert_eq!(stats.tests, 0);
    }

    #[test]
    fn exact_same_graph_is_its_own_supergraph() {
        let idx = slots_of(&[(&[4, 5], &[(0, 1)])]);
        let q = graph_from(&[4, 5], &[(0, 1)]);
        let (slots, _) = probe(&idx, &q);
        assert_eq!(slots, vec![0]);
    }

    #[test]
    fn remove_then_reinsert_matches_fresh_build() {
        let mut idx = slots_of(&[
            (&[0, 1], &[(0, 1)]),
            (&[0, 1, 0], &[(0, 1), (1, 2)]),
            (&[2, 2], &[(0, 1)]),
        ]);
        // Evict slot 1, admit a different graph into it.
        let removed = idx.remove(1);
        assert!(removed > 0);
        assert_eq!(idx.remove(1), 0, "second remove is a no-op");
        let newcomer = Arc::new(graph_from(&[7, 8], &[(0, 1)]));
        idx.insert(1, Arc::clone(&newcomer));

        let fresh = IsubIndex::build(
            [
                (0, Arc::new(graph_from(&[0, 1], &[(0, 1)]))),
                (1, newcomer),
                (2, Arc::new(graph_from(&[2, 2], &[(0, 1)]))),
            ],
            PathConfig::default(),
        );
        idx.snapshot()
            .diff(&fresh.snapshot())
            .expect("incremental == rebuild");

        let q = graph_from(&[7, 8], &[(0, 1)]);
        let (slots, _) = probe(&idx, &q);
        assert_eq!(slots, vec![1]);
        let gone = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let (slots, _) = probe(&idx, &gone);
        assert!(slots.is_empty(), "removed slot no longer probes");
    }

    #[test]
    fn sparse_slots_are_handled() {
        let mut idx = IsubIndex::new(PathConfig::default());
        idx.insert(5, Arc::new(graph_from(&[1, 2], &[(0, 1)])));
        let q = graph_from(&[1, 2], &[(0, 1)]);
        let (slots, _) = probe(&idx, &q);
        assert_eq!(slots, vec![5]);
        assert_eq!(idx.len(), 1);
    }
}
