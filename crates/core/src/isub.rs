//! `Isub` — the subgraph component of the iGQ query index (Section 6.1).
//!
//! Given a new query `g`, `Isub` finds cached queries `G` with `g ⊆ G`
//! (whose stored answers are then *known answers* of `g`, formula (4)).
//! This is "a microcosm of our original problem": any subgraph query
//! processing method over the cached query graphs works. As the paper
//! suggests, we reuse the method family itself — a GGSX path-trie over the
//! cache — and verify candidates with VF2, which trivially satisfies
//! formula (1): every returned `G` really is a supergraph of `g`.
//!
//! The index is immutable; window maintenance rebuilds it ("shadow
//! indexing", Section 5.2) via [`IsubIndex::build`].

use crate::cache::CacheEntry;
use igq_features::PathConfig;
use igq_graph::{Graph, GraphStore};
use igq_iso::{vf2, IsoStats, MatchConfig};
use igq_methods::{Ggsx, GgsxConfig, SubgraphMethod};
use std::sync::Arc;

/// Subgraph index over the cached queries.
pub struct IsubIndex {
    ggsx: Ggsx,
}

impl IsubIndex {
    /// Builds the index over the cache's current entries (slot order is
    /// preserved: member `i` of the index is cache slot `i`).
    pub fn build(entries: &[CacheEntry], path_config: PathConfig) -> IsubIndex {
        let store: Arc<GraphStore> =
            Arc::new(entries.iter().map(|e| e.graph.clone()).collect());
        let config = GgsxConfig {
            max_path_len: path_config.max_len,
            path_budget: path_config.budget,
            match_config: MatchConfig::default(),
        };
        IsubIndex { ggsx: Ggsx::build(&store, config) }
    }

    /// Cache slots whose graph is a (verified) supergraph of `q`, plus the
    /// iGQ-internal iso work performed.
    pub fn supergraphs_of(&self, q: &Graph) -> (Vec<usize>, IsoStats) {
        let mut stats = IsoStats::new();
        let filtered = self.ggsx.filter(q);
        let mut slots = Vec::new();
        for &id in &filtered.candidates {
            let r = vf2::find_one(q, self.ggsx.store().get(id), &MatchConfig::default());
            stats.record(&r);
            if r.outcome.is_found() {
                slots.push(id.index());
            }
        }
        (slots, stats)
    }

    /// Approximate heap footprint (Fig. 18 accounting).
    pub fn heap_size_bytes(&self) -> u64 {
        self.ggsx.index_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::{graph_from, GraphId};

    fn entry(labels: &[u32], edges: &[(u32, u32)]) -> CacheEntry {
        let graph = graph_from(labels, edges);
        let signature = igq_graph::canon::GraphSignature::of(&graph);
        let code = igq_graph::canon::canonical_code(&graph);
        CacheEntry { graph, signature, code, answers: vec![GraphId::new(0)], meta: Default::default() }
    }

    #[test]
    fn finds_supergraphs_among_cache() {
        let entries = vec![
            entry(&[0, 1, 0], &[(0, 1), (1, 2)]),          // slot 0: 0-1-0 path
            entry(&[2, 2], &[(0, 1)]),                     // slot 1: 2-2 edge
            entry(&[0, 1, 0, 3], &[(0, 1), (1, 2), (2, 3)]), // slot 2: longer path
        ];
        let idx = IsubIndex::build(&entries, PathConfig::default());
        let q = graph_from(&[0, 1], &[(0, 1)]);
        let (slots, stats) = idx.supergraphs_of(&q);
        assert_eq!(slots, vec![0, 2]);
        assert!(stats.tests >= 2);
    }

    #[test]
    fn returns_only_true_supergraphs_formula_1() {
        let entries = vec![
            entry(&[0, 0], &[(0, 1)]),
            entry(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
        ];
        let idx = IsubIndex::build(&entries, PathConfig::default());
        // C4 query: neither cached entry contains it.
        let q = graph_from(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (slots, _) = idx.supergraphs_of(&q);
        assert!(slots.is_empty());
    }

    #[test]
    fn empty_cache() {
        let idx = IsubIndex::build(&[], PathConfig::default());
        let q = graph_from(&[0], &[]);
        let (slots, stats) = idx.supergraphs_of(&q);
        assert!(slots.is_empty());
        assert_eq!(stats.tests, 0);
    }

    #[test]
    fn exact_same_graph_is_its_own_supergraph() {
        let entries = vec![entry(&[4, 5], &[(0, 1)])];
        let idx = IsubIndex::build(&entries, PathConfig::default());
        let q = graph_from(&[4, 5], &[(0, 1)]);
        let (slots, _) = idx.supergraphs_of(&q);
        assert_eq!(slots, vec![0]);
    }
}
