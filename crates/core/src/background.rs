//! Off-thread window maintenance with atomically published index
//! snapshots ([`MaintenanceMode::Background`]).
//!
//! # Why
//!
//! Incremental maintenance (PR 1) made each window flip cost O(window
//! delta) instead of O(cache), but that delta application still ran on the
//! query thread: the unlucky query that fills the window pays for path
//! re-enumeration of every admitted graph before its caller gets an
//! answer. This module moves the index work onto a dedicated maintenance
//! thread so the query-thread share of a window flip shrinks to cache
//! eviction/admission plus one channel send.
//!
//! # How: double-buffered snapshots
//!
//! The maintainer owns two full copies of the `Isub`/`Isuper` pair in a
//! classic double-buffer arrangement:
//!
//! * the **published** buffer lives behind an [`arc_swap::ArcSwap`]; query
//!   threads grab an `Arc` of it ([`BackgroundMaintainer::snapshot`]) and
//!   probe it immutably, entirely lock-free with respect to maintenance;
//! * the **shadow** buffer is private to the maintenance thread, which
//!   applies incoming [`MaintenanceJob`]s to it and then publishes it with
//!   one atomic swap.
//!
//! The buffer retired by a publish is recycled into the next writable
//! buffer **one batch later**: by then the short-lived probe readers have
//! dropped their snapshot `Arc`s, the buffer is uniquely owned again, and
//! the backlog of deltas it missed is replayed onto it (O(delta)). Only a
//! reader that pins a snapshot for longer than a whole window forces the
//! fallback deep copy, and even that O(cache) cost lands on the
//! maintenance thread, never on a query. The maintainer *polls* its delta
//! channel rather than blocking in `recv` — see `POLL_FLOOR` in this
//! module's source for why that keeps the window-flipping query's `send`
//! a pure enqueue.
//!
//! # Staleness bound and backpressure
//!
//! [`BackgroundMaintainer::submit`] gates on the *actual* number of
//! submitted-but-unapplied window deltas: while it is at least
//! [`IgqConfig::max_lag_windows`](crate::IgqConfig::max_lag_windows), the
//! window-flipping query waits before enqueueing, so the published
//! snapshot never trails the cache by more than `max_lag_windows`
//! windows — exactly, for every `K ≥ 1` (with `K = 1`, every flip waits
//! for full catch-up: maximum freshness, synchronous-like flip latency).
//! The queue itself is unbounded; the gate, not channel capacity, is the
//! backpressure. Staleness never corrupts answers: the engines revalidate
//! every probe hit against the live cache (slot occupied and graph
//! `Arc`-identical to the one indexed), so a stale hit degrades to a
//! missed pruning opportunity, not a wrong result.
//!
//! # Shutdown
//!
//! Dropping the maintainer closes the channel; the worker drains every
//! queued job (the channel guarantees messages sent before disconnection
//! are delivered), publishes the final state, and exits; the drop then
//! joins the thread. No delta is ever lost — see
//! `drop_joins_and_loses_no_deltas` in this module's tests.
//!
//! [`MaintenanceMode::Background`]: crate::config::MaintenanceMode::Background

use crate::isub::IsubIndex;
use crate::isuper::IsuperIndex;
use crate::maintain::{apply_job, MaintenanceJob};
use arc_swap::ArcSwap;
use crossbeam::channel::{self, Receiver, Sender};
use igq_features::PathConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The immutable `Isub`/`Isuper` pair queries probe under
/// [`MaintenanceMode::Background`](crate::MaintenanceMode::Background).
#[derive(Clone)]
pub struct IndexPair {
    /// Subgraph side of the query index (cached supergraphs of a query).
    pub isub: IsubIndex,
    /// Supergraph side of the query index (cached subgraphs of a query).
    pub isuper: IsuperIndex,
}

impl IndexPair {
    /// An empty pair configured like the engine's indexes.
    pub fn empty(path_config: PathConfig) -> IndexPair {
        IndexPair {
            isub: IsubIndex::new(path_config),
            isuper: IsuperIndex::new(path_config),
        }
    }
}

/// Counters the maintenance thread publishes for
/// [`EngineStats`](crate::EngineStats) folding.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintainerStats {
    /// Jobs applied (== windows maintained off-thread so far).
    pub applied: u64,
    /// Peak observed lag, in unapplied windows.
    pub peak_lag_windows: u64,
    /// Snapshot publications (atomic swaps of the probe buffer).
    pub snapshot_publishes: u64,
    /// Postings inserted/removed while applying job deltas.
    pub postings_touched: u64,
    /// Wall-clock the maintenance thread spent applying and publishing.
    pub maintenance_time: Duration,
}

/// Shared state between the engine (submitter/reader) and the worker.
struct Shared {
    published: ArcSwap<IndexPair>,
    submitted: AtomicU64,
    applied: AtomicU64,
    peak_lag: AtomicU64,
    publishes: AtomicU64,
    postings: AtomicU64,
    nanos: AtomicU64,
}

#[derive(Debug)]
enum Msg {
    Apply(MaintenanceJob),
    /// Barrier: acked only after everything submitted earlier has been
    /// applied *and* published.
    Sync(Sender<()>),
    /// Test-only hard stop: the worker exits immediately, abandoning any
    /// jobs still queued behind this message.
    Exit,
}

/// Handle to the dedicated maintenance thread: submit window deltas, read
/// the latest published snapshot, and synchronize or shut down (on drop).
///
/// A dead worker (panicked, or killed by
/// [`kill_for_test`](Self::kill_for_test)) degrades rather than poisons:
/// [`submit`](Self::submit) drops the job and [`sync`](Self::sync)
/// returns immediately, so the published snapshot simply goes stale.
/// Probe revalidation keeps answers exact either way — only pruning
/// quality decays.
pub struct BackgroundMaintainer {
    tx: Option<Sender<Msg>>,
    handle: parking_lot::Mutex<Option<JoinHandle<()>>>,
    shared: Arc<Shared>,
    max_lag_windows: u64,
}

impl BackgroundMaintainer {
    /// Spawns a maintainer iff `config` selects
    /// [`MaintenanceMode::Background`](crate::MaintenanceMode::Background)
    /// — the engines' shared construction path.
    pub fn for_config(config: &crate::IgqConfig) -> Option<BackgroundMaintainer> {
        match config.maintenance {
            crate::MaintenanceMode::Background => Some(BackgroundMaintainer::spawn(
                config.path_config,
                config.max_lag_windows,
            )),
            _ => None,
        }
    }

    /// Spawns the maintenance thread with an empty published snapshot.
    /// `max_lag_windows` (≥ 1) bounds how many submitted-but-unapplied
    /// window deltas [`submit`](Self::submit) tolerates before blocking.
    pub fn spawn(path_config: PathConfig, max_lag_windows: usize) -> BackgroundMaintainer {
        Self::spawn_seeded(path_config, max_lag_windows, IndexPair::empty(path_config))
    }

    /// [`spawn`](Self::spawn) with a pre-built index pair as the starting
    /// state — the warm-restart path: `Engine::open` reconstitutes the
    /// indexes from a checkpoint and hands them straight to the
    /// maintainer, which publishes them immediately (probes see the warm
    /// state before any job is applied) and seeds its writable buffer
    /// with a copy, exactly as the double-buffer scheme requires.
    pub fn spawn_seeded(
        path_config: PathConfig,
        max_lag_windows: usize,
        initial: IndexPair,
    ) -> BackgroundMaintainer {
        let shared = Arc::new(Shared {
            published: ArcSwap::from_pointee(initial.clone()),
            submitted: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            peak_lag: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            postings: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        });
        // The queue is unbounded; the lag gate in `submit` (not channel
        // capacity) enforces the staleness bound, so the bound stays
        // exact regardless of how many queued jobs the worker coalesces
        // into one batch.
        let (tx, rx) = channel::unbounded();
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("igq-maintainer".into())
            .spawn(move || worker(rx, worker_shared, path_config, initial))
            .expect("spawn igq maintenance thread");
        BackgroundMaintainer {
            tx: Some(tx),
            handle: parking_lot::Mutex::new(Some(handle)),
            shared,
            max_lag_windows: max_lag_windows.max(1) as u64,
        }
    }

    /// Whether the maintenance thread is gone (panicked or killed).
    fn worker_dead(&self) -> bool {
        self.handle
            .lock()
            .as_ref()
            .is_none_or(JoinHandle::is_finished)
    }

    /// Queues one window delta. Blocks while `max_lag_windows` deltas are
    /// already unapplied (the bounded-lag backpressure policy), so the
    /// observed lag never exceeds the bound. A dead worker degrades: the
    /// job is dropped (the snapshot goes stale, answers stay exact).
    pub fn submit(&self, job: MaintenanceJob) {
        if job.is_empty() {
            return;
        }
        // The gate: wait until fewer than K windows are unapplied. A dead
        // worker (panicked or killed) can never catch up — bail out.
        while self.lag_windows() >= self.max_lag_windows {
            if self.worker_dead() {
                return;
            }
            std::thread::sleep(SUBMIT_GATE_TICK);
        }
        let Some(tx) = self.tx.as_ref() else { return };
        if tx.send(Msg::Apply(job)).is_err() {
            // Receiver gone: the worker died between the gate and here.
            return;
        }
        let submitted = self.shared.submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let applied = self.shared.applied.load(Ordering::Relaxed);
        self.shared
            .peak_lag
            .fetch_max(submitted.saturating_sub(applied), Ordering::Relaxed);
    }

    /// The latest published index snapshot. Probe it immutably; it may
    /// trail the cache by up to the configured lag bound.
    pub fn snapshot(&self) -> Arc<IndexPair> {
        self.shared.published.load_full()
    }

    /// Blocks until every previously submitted job has been applied and
    /// published, so the next [`snapshot`](Self::snapshot) reflects them
    /// all. A dead worker degrades: returns immediately (the snapshot
    /// stays as stale as the worker left it).
    pub fn sync(&self) {
        let Some(tx) = self.tx.as_ref() else { return };
        let (ack_tx, ack_rx) = channel::bounded(1);
        if tx.send(Msg::Sync(ack_tx)).is_err() {
            return;
        }
        // The ack sender is dropped unanswered if the worker exits (or
        // panics) with the barrier still queued; recv then errors instead
        // of hanging.
        let _ = ack_rx.recv();
    }

    /// Test-only hard kill: stops the maintenance thread in place,
    /// abandoning queued jobs, without consuming the maintainer. The
    /// published snapshot freezes; later [`submit`](Self::submit)s drop
    /// their jobs and [`sync`](Self::sync)s return immediately. Models a
    /// crashed maintainer for failure-injection tests.
    #[doc(hidden)]
    pub fn kill_for_test(&self) {
        if let Some(tx) = self.tx.as_ref() {
            let _ = tx.send(Msg::Exit);
        }
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }

    /// Windows currently submitted but not yet applied.
    pub fn lag_windows(&self) -> u64 {
        self.shared
            .submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.shared.applied.load(Ordering::Relaxed))
    }

    /// A snapshot of the maintenance thread's counters.
    pub fn stats(&self) -> MaintainerStats {
        MaintainerStats {
            applied: self.shared.applied.load(Ordering::Relaxed),
            peak_lag_windows: self.shared.peak_lag.load(Ordering::Relaxed),
            snapshot_publishes: self.shared.publishes.load(Ordering::Relaxed),
            postings_touched: self.shared.postings.load(Ordering::Relaxed),
            maintenance_time: Duration::from_nanos(self.shared.nanos.load(Ordering::Relaxed)),
        }
    }
}

impl Drop for BackgroundMaintainer {
    /// Drain-and-join shutdown: closing the channel lets the worker
    /// consume every queued job before it observes disconnection, so no
    /// delta is lost; the join makes the drain visible to the dropper.
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Drops probe hits whose slot the cache no longer backs with the graph
/// the snapshot verified: the slot must be occupied and its graph must be
/// the *same allocation* (`Arc::ptr_eq`) the snapshot indexed. The
/// snapshot keeps its graph `Arc`s alive, so pointer identity cannot alias
/// a recycled allocation. Stale hits thus degrade to missed pruning, never
/// to answers read from the wrong entry.
pub(crate) fn retain_current_slots<'a>(
    cache: &crate::cache::QueryCache,
    slots: &mut Vec<usize>,
    slot_graph: impl Fn(usize) -> Option<&'a Arc<igq_graph::Graph>>,
) {
    slots.retain(|&slot| {
        cache
            .get(slot)
            .is_some_and(|e| slot_graph(slot).is_some_and(|g| Arc::ptr_eq(g, &e.graph)))
    });
}

/// How long the worker sleeps between queue polls while idle, from the
/// eager floor (fresh work likely) to the drowsy ceiling. Polling — rather
/// than blocking in `recv` — is deliberate: a blocking receiver is woken
/// *by the sender's own `send`*, and on a machine where both threads share
/// a core the kernel's wake-preemption then runs the maintainer on the
/// query thread's timeslice, handing the window-flip stall right back to
/// the query that queued the delta. With polling, `send` is a pure
/// enqueue; the maintainer picks the job up on its next tick (bounded by
/// `POLL_CEILING`, far below any realistic window cadence) and the
/// flipping query returns immediately.
const POLL_FLOOR: Duration = Duration::from_micros(50);
/// See [`POLL_FLOOR`]. Caps both the idle wake-up rate (~500/s) and the
/// extra pickup latency a just-submitted job can see.
const POLL_CEILING: Duration = Duration::from_millis(2);
/// How often a lag-gated [`BackgroundMaintainer::submit`] rechecks the
/// unapplied-window count while waiting for the maintainer to catch up.
const SUBMIT_GATE_TICK: Duration = Duration::from_micros(20);

/// The maintenance thread: poll for queued jobs, apply them to a writable
/// buffer, publish it atomically, and recycle the previously published
/// buffer one batch later (by which time the short-lived probe readers
/// have released it).
fn worker(rx: Receiver<Msg>, shared: Arc<Shared>, path_config: PathConfig, seed: IndexPair) {
    // The writable buffer for the very first batch (a copy of whatever
    // was published at spawn — empty normally, the recovered indexes on a
    // warm restart); after the first publish the writable buffer is
    // always reclaimed from `retired`.
    let mut initial = Some(seed);
    // The buffer retired by the last publish. Deliberately NOT recycled
    // right away: a probe that loaded it microseconds before the swap is
    // usually still running, and recycling now would hit the clone
    // fallback almost every window. By the next batch — a full window of
    // queries later — it is all but guaranteed to be unpinned.
    let mut retired: Option<Arc<IndexPair>> = None;
    // Jobs applied to the published lineage that `retired` has not seen.
    let mut backlog: Vec<MaintenanceJob> = Vec::new();
    let mut idle = POLL_FLOOR;
    loop {
        let first = match rx.try_recv() {
            Ok(msg) => {
                idle = POLL_FLOOR;
                msg
            }
            Err(channel::TryRecvError::Disconnected) => break,
            Err(channel::TryRecvError::Empty) => {
                std::thread::sleep(idle);
                idle = (idle * 2).min(POLL_CEILING);
                continue;
            }
        };
        // Coalesce whatever else is already queued into one publish, but
        // stop at a Sync barrier so its ack stays ordered after exactly
        // the jobs submitted before it (and at Exit, which ends the
        // thread).
        let mut batch = vec![first];
        while !matches!(batch.last(), Some(Msg::Sync(_) | Msg::Exit)) {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        let start = Instant::now();
        let mut jobs: Vec<MaintenanceJob> = Vec::new();
        let mut acks: Vec<Sender<()>> = Vec::new();
        for msg in batch {
            match msg {
                Msg::Apply(job) => jobs.push(job),
                Msg::Sync(ack) => acks.push(ack),
                // Hard kill: exit without applying this batch or acking
                // queued barriers (their senders drop, unblocking any
                // waiting `sync`).
                Msg::Exit => return,
            }
        }
        let mut reclaim_wait = Duration::ZERO;
        if !jobs.is_empty() {
            let mut buf = match initial.take() {
                Some(b) => b,
                None => reclaim(
                    retired.take().expect("retired buffer after first publish"),
                    &mut backlog,
                    &shared,
                    path_config,
                    &mut reclaim_wait,
                ),
            };
            let applied = jobs.len() as u64;
            for job in jobs {
                let outcome = apply_job(path_config, &job, &mut buf.isub, &mut buf.isuper);
                shared
                    .postings
                    .fetch_add(outcome.postings_touched, Ordering::Relaxed);
                backlog.push(job);
            }
            retired = Some(shared.published.swap(Arc::new(buf)));
            shared.publishes.fetch_add(1, Ordering::Relaxed);
            shared.applied.fetch_add(applied, Ordering::Relaxed);
        }
        // `maintenance_time` counts work (apply, replay, publish), not the
        // time spent waiting for a straggling reader to release a buffer.
        let worked = start.elapsed().saturating_sub(reclaim_wait);
        shared
            .nanos
            .fetch_add(worked.as_nanos() as u64, Ordering::Relaxed);
        // Acks go out only after the batch's jobs are applied *and*
        // published (channel FIFO covers earlier batches).
        for ack in acks {
            let _ = ack.send(());
        }
    }
}

/// Turns the retired buffer back into a writable, fully caught-up one:
/// waits briefly for straggling readers to release it (the wait — not
/// work — is accumulated into `waited` so it can be excluded from
/// `maintenance_time`), replays the backlog of deltas it missed
/// (O(backlog)), and only as a last resort deep-copies the currently
/// published buffer (O(cache), still off the query thread).
fn reclaim(
    retired: Arc<IndexPair>,
    backlog: &mut Vec<MaintenanceJob>,
    shared: &Shared,
    path_config: PathConfig,
    waited: &mut Duration,
) -> IndexPair {
    let mut arc = retired;
    for attempt in 0..RECLAIM_ATTEMPTS {
        match Arc::try_unwrap(arc) {
            Ok(mut pair) => {
                for job in backlog.drain(..) {
                    apply_job(path_config, &job, &mut pair.isub, &mut pair.isuper);
                }
                return pair;
            }
            Err(still_shared) => {
                arc = still_shared;
                // Readers hold snapshots for one probe; yield first, then
                // back off a little harder.
                let wait_start = Instant::now();
                if attempt < RECLAIM_ATTEMPTS / 2 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(20));
                }
                *waited += wait_start.elapsed();
            }
        }
    }
    // A reader pinned this buffer for an entire window-and-a-half; give
    // it up and copy the published state instead.
    backlog.clear();
    (*shared.published.load_full()).clone()
}

/// How many release checks `reclaim` makes before falling back to a deep
/// copy (half cheap yields, half 20 µs sleeps ≈ 1 ms of patience).
const RECLAIM_ATTEMPTS: usize = 100;

#[cfg(test)]
mod tests {
    use super::*;
    use igq_graph::{graph_from, Graph};

    fn job(evicted: Vec<usize>, admitted: Vec<(usize, Graph)>) -> MaintenanceJob {
        MaintenanceJob {
            evicted,
            admitted: admitted
                .into_iter()
                .map(|(s, g)| (s, Arc::new(g), None))
                .collect(),
        }
    }

    fn graphs(n: usize) -> Vec<(usize, Graph)> {
        (0..n)
            .map(|i| {
                let l = i as u32;
                (i, graph_from(&[l, l + 1, l], &[(0, 1), (1, 2)]))
            })
            .collect()
    }

    #[test]
    fn snapshot_converges_after_sync() {
        let m = BackgroundMaintainer::spawn(PathConfig::default(), 2);
        assert!(m.snapshot().isub.is_empty());
        let admitted = graphs(5);
        m.submit(job(vec![], admitted.clone()));
        m.sync();
        let snap = m.snapshot();
        assert_eq!(snap.isub.len(), 5);
        assert_eq!(snap.isuper.len(), 5);
        // Equivalent to a fresh build over the same slots.
        let fresh = IsubIndex::build(
            admitted.iter().map(|(s, g)| (*s, Arc::new(g.clone()))),
            PathConfig::default(),
        );
        snap.isub
            .snapshot()
            .diff(&fresh.snapshot())
            .expect("published == rebuild");
        assert_eq!(m.lag_windows(), 0);
        assert!(m.stats().snapshot_publishes >= 1);
        assert!(m.stats().postings_touched > 0);
    }

    #[test]
    fn eviction_jobs_unindex_slots() {
        let m = BackgroundMaintainer::spawn(PathConfig::default(), 2);
        m.submit(job(vec![], graphs(3)));
        m.submit(job(vec![1], vec![]));
        m.sync();
        let snap = m.snapshot();
        assert_eq!(snap.isub.len(), 2);
        assert_eq!(snap.isuper.len(), 2);
    }

    #[test]
    fn drop_joins_and_loses_no_deltas() {
        // Submit a burst of windows and drop immediately: the worker must
        // drain and apply every one of them before the join returns.
        let m = BackgroundMaintainer::spawn(PathConfig::default(), 8);
        let total = 6u64;
        for i in 0..total as usize {
            m.submit(job(vec![], vec![(i, graph_from(&[i as u32], &[]))]));
        }
        let shared = Arc::clone(&m.shared);
        drop(m);
        assert_eq!(
            shared.applied.load(Ordering::Relaxed),
            total,
            "every submitted delta applied before shutdown"
        );
        assert_eq!(shared.published.load_full().isub.len(), total as usize);
    }

    #[test]
    fn reader_pinning_a_snapshot_does_not_block_progress() {
        let m = BackgroundMaintainer::spawn(PathConfig::default(), 4);
        m.submit(job(vec![], graphs(2)));
        m.sync();
        let pinned = m.snapshot(); // force the clone fallback on recycle
        m.submit(job(vec![0], vec![]));
        m.sync();
        assert_eq!(pinned.isub.len(), 2, "old snapshot immutable");
        assert_eq!(m.snapshot().isub.len(), 1, "new snapshot advanced");
    }

    #[test]
    fn seeded_spawn_publishes_warm_state_immediately_and_extends_it() {
        let mut pair = IndexPair::empty(PathConfig::default());
        let g0 = Arc::new(graph_from(&[1, 2], &[(0, 1)]));
        pair.isub.insert(0, Arc::clone(&g0));
        pair.isuper.insert(0, g0);
        let m = BackgroundMaintainer::spawn_seeded(PathConfig::default(), 2, pair);
        // Warm state visible before any job was applied.
        assert_eq!(m.snapshot().isub.len(), 1);
        assert_eq!(m.snapshot().isuper.len(), 1);
        // The first applied batch must build on the seed, not an empty
        // buffer.
        m.submit(job(vec![], vec![(1, graph_from(&[3, 4], &[(0, 1)]))]));
        m.sync();
        assert_eq!(m.snapshot().isub.len(), 2);
        assert_eq!(m.snapshot().isuper.len(), 2);
    }

    #[test]
    fn empty_jobs_are_not_submitted() {
        let m = BackgroundMaintainer::spawn(PathConfig::default(), 1);
        m.submit(job(vec![], vec![]));
        assert_eq!(m.lag_windows(), 0);
        assert_eq!(m.stats().applied, 0);
    }
}
